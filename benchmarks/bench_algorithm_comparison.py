"""Head-to-head: the paper's two PTIME algorithms for conjunctive queries.

After Theorem 4.7 the paper remarks that the path-decomposition approach
(Corollary 4.4: linear in |D| but with a constant of order 2^|Phi|) and
the bounded-width search (Theorem 4.7: O(|D|^{k+1} |Phi|)) trade off in
an unclear way: "it is not immediately clear which algorithm will be more
efficient in practice".  These benchmarks answer that empirically:

* sweeping the **query** (whose path count grows exponentially with its
  width) at fixed database — path decomposition degrades, the Theorem 4.7
  search does not;
* sweeping the **database** at fixed small query — both are polynomial
  and path decomposition's smaller per-path constant tends to win;
* SEQ as the specialized baseline where the query is sequential.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.conjunctive import (
    bounded_width_entails_dag,
    paths_entails_dag,
)
from repro.algorithms.seq import seq_entails
from repro.core.atoms import Rel
from repro.core.database import LabeledDag
from repro.core.ordergraph import OrderGraph
from repro.workloads.generators import random_flexiword, random_observer_dag


def wide_query_dag(columns: int) -> LabeledDag:
    """A two-row ladder query: its path count is 2^columns (cf. Fig 7)."""
    graph = OrderGraph()
    labels = {}
    for j in range(columns):
        for row, pred in (("a", "P"), ("b", "Q")):
            name = f"{row}{j}"
            graph.add_vertex(name)
            labels[name] = frozenset({pred})
    for j in range(columns - 1):
        for r1 in ("a", "b"):
            for r2 in ("a", "b"):
                graph.add_edge(f"{r1}{j}", f"{r2}{j + 1}", Rel.LT)
    return LabeledDag(graph, labels)


def observer(seed: int, k: int, length: int) -> LabeledDag:
    return random_observer_dag(
        random.Random(seed), k, length, preds=("P", "Q")
    )


@pytest.mark.parametrize("columns", [2, 4, 6, 8])
def test_paths_vs_query_width(benchmark, columns):
    """Path decomposition: cost explodes with the query's 2^m paths.

    The database is the query's own labelled graph (its canonical
    database), so entailment holds and every one of the 2^m paths must be
    checked — no early exit.
    """
    dag = wide_query_dag(columns)
    qdag = wide_query_dag(columns)
    result = benchmark(lambda: paths_entails_dag(dag, qdag))
    assert result is True


@pytest.mark.parametrize("columns", [2, 4, 6, 8])
def test_theorem47_vs_query_width(benchmark, columns):
    """Theorem 4.7: polynomial in the same query parameter."""
    dag = wide_query_dag(columns)
    qdag = wide_query_dag(columns)
    result = benchmark(lambda: bounded_width_entails_dag(dag, qdag))
    assert result is True


@pytest.mark.parametrize("size", [20, 60, 180])
def test_paths_vs_db_size(benchmark, size):
    """Path decomposition: linear in |D| at a fixed small query."""
    dag = observer(seed=62, k=2, length=size // 2)
    qdag = wide_query_dag(3)
    benchmark(lambda: paths_entails_dag(dag, qdag))


@pytest.mark.parametrize("size", [20, 60, 180])
def test_theorem47_vs_db_size(benchmark, size):
    """Theorem 4.7 on the same instances."""
    dag = observer(seed=62, k=2, length=size // 2)
    qdag = wide_query_dag(3)
    benchmark(lambda: bounded_width_entails_dag(dag, qdag))


@pytest.mark.parametrize("size", [60, 180])
def test_seq_baseline(benchmark, size):
    """SEQ on sequential queries: the specialized fast path."""
    dag = observer(seed=63, k=2, length=size // 2)
    p = random_flexiword(random.Random(64), 6, preds=("P", "Q"),
                         empty_ok=False)
    benchmark(lambda: seq_entails(dag, p))
