"""Ablations for Theorems 4.7 and 5.3 and Propositions 5.4/5.5.

* Theorem 4.7: the bounded-width conjunctive search costs
  ``O(|D|^{k+1} |Phi|)`` — swept over the width ``k`` at fixed |D| and
  over |D| at fixed ``k``;
* Theorem 5.3: the disjunctive search costs
  ``O(|D|^{2k} |Pred| prod |Phi_i|)`` — swept over ``k`` and over the
  number of disjuncts (the paper proves the exponential dependence on
  both parameters is unavoidable: Theorem 4.6, Propositions 5.4/5.5);
* the countermodel enumerator: total time vs number of models produced
  (polynomial delay).
"""

from __future__ import annotations

import random

import pytest

from conftest import dag_query, observer_db, seq_query
from repro.algorithms.conjunctive import bounded_width_entails
from repro.algorithms.disjunctive import iter_countermodels, theorem53_entails
from repro.core.query import DisjunctiveQuery
from repro.workloads.generators import random_disjunctive_monadic_query


@pytest.mark.parametrize("width", [1, 2, 3, 4])
def test_theorem47_width_sweep(benchmark, width):
    """Theorem 4.7 cost vs database width at (roughly) constant |D|."""
    dag = observer_db(seed=31, observers=width, chain_length=24 // width)
    query = dag_query(seed=32, n_vars=5)
    benchmark(lambda: bounded_width_entails(dag, query))


@pytest.mark.parametrize("size", [8, 16, 32])
def test_theorem47_size_sweep(benchmark, size):
    """Theorem 4.7 cost vs |D| at fixed width two."""
    dag = observer_db(seed=33, observers=2, chain_length=size // 2)
    query = dag_query(seed=34, n_vars=4)
    benchmark(lambda: bounded_width_entails(dag, query))


@pytest.mark.parametrize("width", [1, 2, 3])
def test_theorem53_width_sweep(benchmark, width):
    """Theorem 5.3 cost vs database width (O(|D|^{2k}) dependence)."""
    dag = observer_db(seed=35, observers=width, chain_length=6 // width)
    rng = random.Random(36)
    query = random_disjunctive_monadic_query(rng, 2, 2)
    benchmark(lambda: theorem53_entails(dag, query))


@pytest.mark.parametrize("disjuncts", [1, 2, 3, 4])
def test_theorem53_disjunct_sweep(benchmark, disjuncts):
    """Proposition 5.4's parameter: cost vs number of disjuncts."""
    dag = observer_db(seed=37, observers=2, chain_length=3)
    rng = random.Random(38)
    query = random_disjunctive_monadic_query(rng, disjuncts, 2)
    benchmark(lambda: theorem53_entails(dag, query))


@pytest.mark.parametrize("chain", [2, 3, 4])
def test_countermodel_enumeration(benchmark, chain):
    """Enumerate all violating schedules (polynomial-delay claim)."""
    dag = observer_db(seed=39, observers=2, chain_length=chain)
    query = seq_query(seed=40, length=3)

    def run():
        return sum(1 for _ in iter_countermodels(dag, query))

    count = benchmark(run)
    # sanity: enumeration agrees with the decision procedure
    assert (count == 0) == theorem53_entails(dag, query)
