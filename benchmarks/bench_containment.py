"""Proposition 2.10: query containment via indefinite-order entailment.

Benchmarks the containment decision (including the freeze + entailment
pipeline) on optimizer-style instances, the counterexample extraction,
and the sound homomorphism pre-test — the cheap filter an optimizer would
try before paying for the full Pi2p decision.
"""

from __future__ import annotations

import pytest

from repro.containment.containment import (
    contained,
    counterexample,
    homomorphism_contained,
)
from repro.containment.relational import RelationalQuery
from repro.core.atoms import ProperAtom, le, lt
from repro.core.sorts import objvar, ordvar


def _queries(n_atoms: int) -> tuple[RelationalQuery, RelationalQuery]:
    """A containment pair with an n-atom chain body."""
    d = objvar("d")
    xs = [ordvar(f"x{i}") for i in range(n_atoms)]
    atoms1 = [ProperAtom("Emp", (x, d)) for x in xs]
    atoms1 += [lt(a, b) for a, b in zip(xs, xs[1:])]
    q1 = RelationalQuery((d,), tuple(atoms1))
    # q2 relaxes the last comparison to '<='
    atoms2 = [ProperAtom("Emp", (x, d)) for x in xs]
    atoms2 += [lt(a, b) for a, b in zip(xs[:-1], xs[1:-1])]
    if n_atoms >= 2:
        atoms2.append(le(xs[-2], xs[-1]))
    q2 = RelationalQuery((d,), tuple(atoms2))
    return q1, q2


@pytest.mark.parametrize("n_atoms", [2, 3, 4])
def test_containment_decision(benchmark, n_atoms):
    q1, q2 = _queries(n_atoms)
    result = benchmark(lambda: contained(q1, q2))
    assert result is True  # strict chain implies relaxed chain


@pytest.mark.parametrize("n_atoms", [2, 3])
def test_containment_counterexample(benchmark, n_atoms):
    q1, q2 = _queries(n_atoms)
    witness = benchmark(lambda: counterexample(q2, q1))
    assert witness is not None  # the relaxed query is not contained back


@pytest.mark.parametrize("n_atoms", [2, 3, 4])
def test_homomorphism_pretest(benchmark, n_atoms):
    """The sound Chandra-Merlin filter is far cheaper than containment."""
    q1, q2 = _queries(n_atoms)
    result = benchmark(lambda: homomorphism_contained(q1, q2))
    assert result is True
