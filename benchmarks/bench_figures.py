"""Figures 1-8: every figure's construction regenerated and measured.

* Figure 1 — the models of Example 1.1 (the espionage database);
* Figure 2 — sequence alignment feasibility (Example 1.2);
* Figures 3/4 — the ternary disjunction gadget and its width-two layout;
* Figure 5 — the example query dag and its path decomposition;
* Figure 6 — the SEQ algorithm's O(|D| |p| |Pred|) scaling;
* Figures 7/8 — the tautology ladder and per-disjunct components.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.seq import seq_entails
from repro.core.atoms import ProperAtom, le, lt
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.entailment import entails
from repro.core.models import count_minimal_models, iter_minimal_models
from repro.core.query import ConjunctiveQuery
from repro.core.semantics import Semantics
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.flexiwords.flexiword import FlexiWord
from repro.reductions import monotone3sat, tautology
from repro.reductions.monotone3sat import MonotoneSatInstance
from repro.workloads.generators import gene_sequences, random_flexiword


def _espionage_db() -> IndefiniteDatabase:
    z = [ordc(f"z{i}") for i in range(1, 5)]
    u = [ordc(f"u{i}") for i in range(1, 5)]
    a, b = obj("A"), obj("B")
    return IndefiniteDatabase.of(
        ProperAtom("IC", (z[0], z[1], a)),
        ProperAtom("IC", (z[2], z[3], b)),
        lt(z[0], z[1]), lt(z[1], z[2]), lt(z[2], z[3]),
        ProperAtom("IC", (u[0], u[2], a)),
        ProperAtom("IC", (u[1], u[3], b)),
        lt(u[0], u[1]), lt(u[1], u[2]), lt(u[2], u[3]),
    )


def test_fig1_models(benchmark):
    """Figure 1: enumerate the minimal models of the Example 1.1 data.

    Two strict 4-chains interleave in Delannoy(4,4) = 321 ways; the
    figure shows four of them.
    """
    db = _espionage_db()
    count = benchmark(lambda: sum(1 for _ in iter_minimal_models(db)))
    assert count == 321
    print(f"\nFigure 1: Example 1.1 database has {count} minimal models")


def test_fig1_queries(benchmark):
    """The deduction of Example 1.1 under the dense-time semantics."""
    db = _espionage_db()
    x = objvar("x")
    t = [ordvar(f"t{i}") for i in range(1, 5)]
    w = ordvar("w")
    common = [
        ProperAtom("IC", (t[0], t[1], x)),
        ProperAtom("IC", (t[2], t[3], x)),
        lt(t[0], w), lt(w, t[1]), lt(t[2], w), lt(w, t[3]),
    ]
    from repro.core.query import DisjunctiveQuery

    psi = DisjunctiveQuery.of(
        ConjunctiveQuery.from_atoms(common + [lt(t[0], t[2])]),
        ConjunctiveQuery.from_atoms(common + [lt(t[1], t[3])]),
    )
    twice = ConjunctiveQuery.of(
        ProperAtom("IC", (t[0], t[1], x)),
        ProperAtom("IC", (t[2], t[3], x)),
        lt(t[0], t[2]),
    )
    query = psi.or_(twice)

    result = benchmark(lambda: entails(db, query, semantics=Semantics.Q))
    assert result is True


@pytest.mark.parametrize("length", [3, 5, 7])
def test_fig2_alignment(benchmark, length):
    """Figure 2: alignment feasibility for two random sequences."""
    rng = random.Random(23 + length)
    s1, s2 = gene_sequences(rng, 2, length)
    chains = [FlexiWord.word([c] for c in s) for s in (s1, s2)]
    dag = LabeledDag.from_chains(chains)
    db = dag.to_database()
    t = ordvar("t")
    # disallow aligning an A with a G (the paper's example constraint)
    violation = ConjunctiveQuery.of(
        ProperAtom("A", (t,)), ProperAtom("G", (t,))
    )
    result = benchmark(lambda: entails(db, violation))
    # A constraint-respecting alignment always exists (never align them):
    assert result is False


def test_fig3_gadget_properties():
    """Figure 3: the disjunction gadget satisfies D1 and D2."""
    gadget_atoms = monotone3sat._gadget("a", "b", "c", "u", "v", "w", "t")
    db = IndefiniteDatabase.from_atoms(gadget_atoms)
    x = objvar("x")
    t1, t2, t3 = ordvar("t1"), ordvar("t2"), ordvar("t3")

    def phi(const):
        return ConjunctiveQuery.of(
            ProperAtom("P", (t1, const)),
            ProperAtom("P", (t2, const)),
            ProperAtom("P", (t3, const)),
            lt(t1, t2), lt(t2, t3),
        )

    from repro.core.query import DisjunctiveQuery

    # D1: in every model phi(a) v phi(b) v phi(c).
    assert entails(
        db, DisjunctiveQuery.of(phi(obj("a")), phi(obj("b")), phi(obj("c")))
    )
    # D2: none of them individually.
    for name in ("a", "b", "c"):
        assert not entails(db, phi(obj(name)))
    print("\nFigure 3 gadget: D1 and D2 verified")


def test_fig4_width_two_layout(benchmark):
    """Figure 4: the serialized layout has width exactly two."""
    instance = MonotoneSatInstance(
        positive=(("p", "q", "r"), ("q", "r", "r")),
        negative=(("p", "p", "q"),),
    )
    db = monotone3sat.build_database(instance, bounded_width=True)
    width = benchmark(db.width)
    assert width == 2


def test_fig5_paths(benchmark):
    """Figure 5: the example query dag decomposes into its two paths."""
    t1, t2, t3, t4 = (ordvar(f"t{i}") for i in range(1, 5))
    q = ConjunctiveQuery.of(
        ProperAtom("P", (t1,)), ProperAtom("Q", (t1,)),
        ProperAtom("P", (t2,)), ProperAtom("R", (t3,)),
        ProperAtom("S", (t4,)),
        lt(t1, t2), lt(t2, t3), le(t2, t4),
    )
    paths = benchmark(q.paths)
    assert {str(p) for p in paths} == {
        "{P,Q} < {P} < {R}", "{P,Q} < {P} <= {S}"
    }


@pytest.mark.parametrize("db_size", [30, 90, 270])
def test_fig6_seq_scaling(benchmark, db_size):
    """Figure 6: SEQ runs in O(|D| * |p| * |Pred|) — linear sweep in |D|."""
    rng = random.Random(29)
    chains = [
        random_flexiword(rng, db_size // 3, empty_ok=False) for _ in range(3)
    ]
    dag = LabeledDag.from_chains(chains)
    p = random_flexiword(rng, 5, empty_ok=False)
    benchmark(lambda: seq_entails(dag, p))


def test_fig7_query_ladder():
    """Figure 7: Phi(alpha)'s paths are exactly the 2^m valuations."""
    qdag = tautology.build_query_dag(4)
    paths = {p.letters for p in qdag.iter_paths()}
    assert len(paths) == 16
    assert qdag.width() == 2
    print("\nFigure 7 ladder: 16 paths for m=4, width 2")


def test_fig8_component_language(benchmark):
    """Figure 8: a disjunct's component accepts exactly its valuations."""
    disjunct = {"p0": True, "p2": False, "p3": True}  # p1 free

    def build_and_paths():
        dag = tautology.build_database_dag([disjunct], 4)
        return {p.letters for p in dag.iter_paths()}

    words = benchmark(build_and_paths)
    t, f = frozenset({"T"}), frozenset({"F"})
    assert words == {(t, t, f, t), (t, f, f, t)}
