"""Section 7: the cost of inequality.

* Theorem 7.1 part 1: the fixed three-point database answering growing
  coloring queries (NP-hard expression complexity — runtime grows with
  the graph);
* Theorem 7.1 part 2: the fixed four-point query over growing
  '!='-databases (co-NP-hard data complexity);
* the expansion blowup: entailment via 2^m database expansions vs the
  native '!='-aware model enumeration.
"""

from __future__ import annotations

import random

import pytest

from repro.core.entailment import entails
from repro.inequality.neq import entails_with_neq, expand_database_neq
from repro.reductions import coloring
from repro.workloads.generators import random_graph


@pytest.mark.parametrize("n_vertices", [3, 4, 5])
def test_theorem71_part1(benchmark, n_vertices):
    """Coloring queries against the fixed chain database."""
    rng = random.Random(53 + n_vertices)
    graph = random_graph(rng, n_vertices, 0.5)
    db, query, expected = coloring.part1_claim(graph)
    result = benchmark(lambda: entails(db, query))
    assert result == expected


@pytest.mark.parametrize("n_vertices", [4, 5])
def test_theorem71_part2(benchmark, n_vertices):
    """The fixed sequential query against growing '!='-databases."""
    rng = random.Random(59 + n_vertices)
    graph = random_graph(rng, n_vertices, 0.6)
    db, query, expected = coloring.part2_claim(graph)
    result = benchmark(lambda: entails(db, query))
    assert result == expected


@pytest.mark.parametrize("n_neq", [1, 2, 3])
def test_expansion_blowup(benchmark, n_neq):
    """Database '!=' expansion: 2^m cases, each on the monadic fast path."""
    from repro.core.atoms import ProperAtom, ne
    from repro.core.database import IndefiniteDatabase
    from repro.core.query import ConjunctiveQuery
    from repro.core.sorts import ordc, ordvar

    names = [ordc(f"u{i}") for i in range(n_neq + 1)]
    atoms = [ProperAtom("P", (c,)) for c in names]
    atoms += [ne(a, b) for a, b in zip(names, names[1:])]
    db = IndefiniteDatabase.from_atoms(atoms)
    t1, t2 = ordvar("t1"), ordvar("t2")
    from repro.core.atoms import lt

    query = ConjunctiveQuery.of(
        ProperAtom("P", (t1,)), ProperAtom("P", (t2,)), lt(t1, t2)
    )
    expansions = expand_database_neq(db)
    assert len(expansions) <= 2 ** n_neq
    result = benchmark(lambda: entails_with_neq(db, query))
    assert result == entails(db, query)
