"""Section 2: cost of the semantics reductions (Prop 2.3, Cor 2.6).

Both transformations are polynomial-time preprocessing steps; these
benchmarks show the padded-database (Z) and tightened-query (Q) pipelines
cost only marginally more than the finite-model pipeline on the same
instances, as the reductions promise.
"""

from __future__ import annotations

import random

import pytest

from repro.core.database import LabeledDag
from repro.core.entailment import entails
from repro.core.query import ConjunctiveQuery
from repro.core.semantics import Semantics, pad_for_integers, tighten_for_rationals
from repro.flexiwords.flexiword import FlexiWord
from repro.workloads.generators import (
    random_conjunctive_monadic_query,
    random_flexiword,
)


def _instance(size: int):
    rng = random.Random(41)
    chains = [
        random_flexiword(rng, size // 2, empty_ok=False) for _ in range(2)
    ]
    dag = LabeledDag.from_chains(chains)
    # a nontight query: middle variable in no proper atom
    from repro.core.atoms import ProperAtom, lt
    from repro.core.sorts import ordvar

    t1, t2, t3 = ordvar("t1"), ordvar("t2"), ordvar("t3")
    query = ConjunctiveQuery.of(
        ProperAtom("P", (t1,)), lt(t1, t2), lt(t2, t3), ProperAtom("Q", (t3,))
    )
    return dag.to_database(), query


@pytest.mark.parametrize("semantics", [Semantics.FIN, Semantics.Z, Semantics.Q])
def test_semantics_pipelines(benchmark, semantics):
    """End-to-end entailment under each semantics on the same instance."""
    db, query = _instance(20)
    benchmark(lambda: entails(db, query, semantics=semantics))


@pytest.mark.parametrize("size", [20, 60, 180])
def test_padding_transform_cost(benchmark, size):
    """Proposition 2.3's D -> D' construction alone."""
    db, query = _instance(size)
    padded = benchmark(lambda: pad_for_integers(db, query))
    assert padded.size() > db.size()


@pytest.mark.parametrize("n_vars", [3, 6, 12])
def test_tightening_transform_cost(benchmark, n_vars):
    """Lemma 2.5's phi -> phi' construction alone."""
    rng = random.Random(43)
    query = random_conjunctive_monadic_query(rng, n_vars, empty_ok=True)
    tightened = benchmark(lambda: tighten_for_rationals(query))
    from repro.core.semantics import is_tight

    assert is_tight(tightened)
