"""Table 1: complexity of query problems, n-ary vs monadic predicates.

Paper's claims (each cell a completeness result):

=========  ==================  ===============  ===================
arity      data                expression       combined
=========  ==================  ===============  ===================
n-ary      co-NP complete      NP complete      Pi2p complete
monadic    PTIME               PTIME            co-NP complete
=========  ==================  ===============  ===================

Reproduced shape: the three hard n-ary cells run the generic algorithm on
reduction-generated instances and exhibit super-polynomial growth in the
swept parameter, with every answer cross-checked against the reference
propositional solver; the two monadic PTIME cells sweep the *database*
(data complexity) / the *query* (expression complexity) and stay
polynomial; the monadic combined cell runs the Theorem 4.6 gadget.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.modelcheck import word_satisfies_dag
from repro.core.database import LabeledDag
from repro.core.entailment import entails, explain
from repro.flexiwords.flexiword import FlexiWord
from repro.reductions import expression, monotone3sat, pi2, tautology
from repro.reductions.monotone3sat import MonotoneSatInstance
from repro.reductions.pi2 import Pi2Instance
from repro.workloads.generators import random_dnf, random_flexiword

# ---------------------------------------------------------------- n-ary row


@pytest.mark.parametrize("n_clauses", [1, 2, 3])
def test_table1_data_nary(benchmark, n_clauses):
    """Row 1 col 1 (co-NP-complete data complexity): fixed Theorem 3.2
    query, database grows with the monotone-3SAT instance."""
    rng = random.Random(7 + n_clauses)
    letters = [f"p{i}" for i in range(2)]
    pos = tuple(
        tuple(rng.choice(letters) for _ in range(3)) for _ in range(n_clauses)
    )
    neg = (tuple(rng.choice(letters) for _ in range(3)),)
    instance = MonotoneSatInstance(positive=pos, negative=neg)
    db, query, expected = monotone3sat.reduction_claim(
        instance, bounded_width=True
    )

    result = benchmark.pedantic(
        lambda: entails(db, query), rounds=1, iterations=1
    )
    assert result == expected


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_table1_expression_nary(benchmark, depth):
    """Row 1 col 2 (NP-complete expression complexity): fixed truth-table
    database, query encodes a growing formula (Theorem 3.4)."""
    formula = ("var", "x0")
    for i in range(1, depth):
        formula = ("and", ("or", formula, ("var", f"x{i}")),
                   ("not", ("var", f"x{i - 1}")))
    db, query, expected = expression.reduction_claim(formula)

    result = benchmark(lambda: entails(db, query))
    assert result == expected


@pytest.mark.parametrize("universals", [1, 2])
def test_table1_combined_nary(benchmark, universals):
    """Row 1 col 3 (Pi2p-complete combined complexity): Theorem 3.3."""
    names = [f"p{i}" for i in range(universals)]
    # forall p . exists q . (p1 or ... or pn) or q  — always true
    formula = ("var", "q")
    for name in names:
        formula = ("or", formula, ("var", name))
    inst = Pi2Instance(tuple(names), ("q",), formula)
    db, query, expected = inst.reduction()

    result = benchmark.pedantic(
        lambda: entails(db, query), rounds=1, iterations=1
    )
    assert result == expected


# ---------------------------------------------------------------- monadic row


@pytest.mark.parametrize("db_size", [20, 60, 180])
def test_table1_data_monadic(benchmark, db_size):
    """Row 2 col 1 (PTIME data complexity): a fixed conjunctive monadic
    query against growing 2-observer databases (Corollary 4.4)."""
    rng = random.Random(11)
    chains = [
        random_flexiword(rng, db_size // 2, empty_ok=False) for _ in range(2)
    ]
    dag = LabeledDag.from_chains(chains)
    db = dag.to_database()
    from conftest import dag_query

    query = dag_query(3, 3)

    benchmark(lambda: entails(db, query, method="paths"))


@pytest.mark.parametrize("query_size", [10, 30, 90])
def test_table1_expression_monadic(benchmark, query_size):
    """Row 2 col 2 (PTIME expression complexity): growing disjunctive
    monadic queries evaluated in a fixed finite model (Corollary 5.1:
    O(|M| |Phi| |Pred|))."""
    rng = random.Random(13)
    model = tuple(
        random_flexiword(rng, 1, empty_ok=False).letters[0]
        for _ in range(12)
    )
    qdags = [
        LabeledDag.from_flexiword(
            random_flexiword(rng, 3, empty_ok=False), prefix=f"q{i}_"
        )
        for i in range(query_size // 3)
    ]

    def check():
        return sum(1 for q in qdags if word_satisfies_dag(model, q))

    benchmark(check)


@pytest.mark.parametrize("n_letters", [2, 3, 4])
def test_table1_combined_monadic(benchmark, n_letters):
    """Row 2 col 3 (co-NP-complete combined complexity): the Theorem 4.6
    tautology gadget — database and query grow together."""
    rng = random.Random(17)
    disjuncts = random_dnf(rng, n_letters, n_letters + 1, 2)
    dag, query, expected = tautology.reduction_claim(disjuncts, n_letters)
    db = dag.to_database()

    result = benchmark(lambda: entails(db, query))
    assert result == expected
