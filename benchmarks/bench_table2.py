"""Table 2: combined complexity of conjunctive monadic queries.

Paper's claims:

==============  ==============  ===============
query type      bounded width   unbounded width
==============  ==============  ===============
sequential      PTIME           PTIME
nonsequential   PTIME           co-NP complete
==============  ==============  ===============

The three PTIME cells sweep |D| (and the query together with it) through
the corresponding algorithm — SEQ (Corollary 4.3) for the sequential
cells, the Theorem 4.7 search for the bounded nonsequential cell — and
stay polynomial.  The hard cell runs the Theorem 4.6 gadget, whose
databases have *unbounded width* (one component per DNF disjunct) and
whose queries are nonsequential (width two).
"""

from __future__ import annotations

import random

import pytest

from conftest import antichain_db, dag_query, observer_db, seq_query
from repro.algorithms.conjunctive import bounded_width_entails
from repro.algorithms.seq import seq_entails_query
from repro.core.entailment import entails
from repro.reductions import tautology
from repro.workloads.generators import random_dnf


@pytest.mark.parametrize("size", [20, 60, 180])
def test_table2_sequential_bounded(benchmark, size):
    """Sequential query, width-3 database: SEQ is PTIME."""
    dag = observer_db(seed=1, observers=3, chain_length=size // 3)
    query = seq_query(seed=2, length=6)
    benchmark(lambda: seq_entails_query(dag, query))


@pytest.mark.parametrize("size", [20, 60, 180])
def test_table2_sequential_unbounded(benchmark, size):
    """Sequential query, width == |D| database: SEQ is still PTIME."""
    dag = antichain_db(seed=3, size=size)
    query = seq_query(seed=4, length=4)
    benchmark(lambda: seq_entails_query(dag, query))


@pytest.mark.parametrize("size", [10, 20, 40])
def test_table2_nonsequential_bounded(benchmark, size):
    """Nonsequential query, width-2 database: Theorem 4.7 is PTIME."""
    dag = observer_db(seed=5, observers=2, chain_length=size // 2)
    query = dag_query(seed=6, n_vars=4)
    benchmark(lambda: bounded_width_entails(dag, query))


@pytest.mark.parametrize("n_letters", [2, 3, 4])
def test_table2_nonsequential_unbounded(benchmark, n_letters):
    """Nonsequential query, unbounded width: the co-NP-complete cell
    (Theorem 4.6); runtime grows super-polynomially in the letter count."""
    rng = random.Random(19)
    disjuncts = random_dnf(rng, n_letters, n_letters + 1, 2)
    dag, query, expected = tautology.reduction_claim(disjuncts, n_letters)
    db = dag.to_database()

    result = benchmark(lambda: entails(db, query))
    assert result == expected


def test_table2_summary():
    """Print the reproduced Table 2 (answers, not timings) for the report."""
    rows = []
    dag_b = observer_db(seed=1, observers=2, chain_length=10)
    dag_u = antichain_db(seed=3, size=20)
    seq_q = seq_query(seed=2, length=4)
    nonseq_q = dag_query(seed=6, n_vars=4)
    rows.append(("sequential/bounded", "SEQ", "PTIME"))
    rows.append(("sequential/unbounded", "SEQ", "PTIME"))
    rows.append(("nonsequential/bounded", "Theorem 4.7", "PTIME"))
    rows.append(("nonsequential/unbounded", "Theorem 4.6 gadget", "co-NP"))
    print("\nTable 2 (reproduced):")
    for cell, algorithm, klass in rows:
        print(f"  {cell:26s} {algorithm:20s} {klass}")
    # sanity: the PTIME algorithms answer on both database shapes
    assert isinstance(seq_entails_query(dag_b, seq_q), bool)
    assert isinstance(seq_entails_query(dag_u, seq_q), bool)
    assert isinstance(bounded_width_entails(dag_b, nonseq_q), bool)
