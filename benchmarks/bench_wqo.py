"""Section 6: the wqo basis — expensive to build, linear to use.

Theorem 6.5 promises linear-time data complexity for fixed disjunctive
monadic queries, once a finite basis of the entailing-database ideal is
known.  The constructive word-database basis implemented in
:mod:`repro.flexiwords.wqo` makes the trade measurable:

* basis construction cost grows quickly with the query (the "very large
  constants" the paper warns about);
* evaluation against a basis is a handful of linear subword scans —
  swept over word length to exhibit the linear data step.
"""

from __future__ import annotations

import random

import pytest

from repro.flexiwords.flexiword import FlexiWord
from repro.flexiwords.wqo import (
    conjunctive_basis,
    dominates,
    entails_via_basis,
    word_basis,
    word_entails_via_basis,
)
from repro.workloads.generators import (
    random_conjunctive_monadic_query,
    random_disjunctive_monadic_query,
    random_flexiword,
    random_labeled_dag,
)


@pytest.mark.parametrize("query_vars", [2, 3, 4])
def test_word_basis_construction(benchmark, query_vars):
    """Cost of computing the finite basis (the compile step)."""
    rng = random.Random(47)
    query = random_disjunctive_monadic_query(
        rng, 2, query_vars, preds=("A", "B")
    )
    basis = benchmark(lambda: word_basis(query))
    assert isinstance(basis, set)


@pytest.mark.parametrize("word_length", [50, 150, 450])
def test_basis_evaluation_is_linear(benchmark, word_length):
    """The data step: subword scans against a precomputed basis."""
    rng = random.Random(48)
    query = random_disjunctive_monadic_query(rng, 2, 3, preds=("A", "B"))
    basis = word_basis(query)
    word = tuple(
        random_flexiword(rng, 1, preds=("A", "B")).letters[0]
        for _ in range(word_length)
    )
    benchmark(lambda: word_entails_via_basis(word, basis))


@pytest.mark.parametrize("db_size", [4, 8, 16])
def test_conjunctive_basis_evaluation(benchmark, db_size):
    """The conjunctive case: D |= Phi iff D_Phi <= D (end of Section 6)."""
    rng = random.Random(49)
    dag = random_labeled_dag(rng, db_size, edge_prob=0.5)
    query = random_conjunctive_monadic_query(rng, 3, empty_ok=False)
    if query.normalized() is None:
        pytest.skip("degenerate random query")
    benchmark(lambda: entails_via_basis(dag, query))


@pytest.mark.parametrize("size", [4, 8])
def test_dominance_check(benchmark, size):
    """The Lemma 6.4 order itself (path-set dominance)."""
    rng = random.Random(50)
    d1 = random_labeled_dag(rng, size, edge_prob=0.6, prefix="a")
    d2 = random_labeled_dag(rng, size, edge_prob=0.6, prefix="b")
    benchmark(lambda: dominates(d1, d2))
