"""Shared workload builders for the benchmark suite.

Every benchmark regenerates a row/series of the paper's evaluation
artifacts (Tables 1-2 and Figures 1-8); see DESIGN.md section 5 for the
experiment index and EXPERIMENTS.md for recorded results.  Correctness is
asserted inside each benchmark body, so the timing numbers are produced by
runs that provably computed the right answers.
"""

from __future__ import annotations

import random

import pytest

from repro.core.database import LabeledDag
from repro.flexiwords.flexiword import FlexiWord
from repro.workloads.generators import (
    random_conjunctive_monadic_query,
    random_flexiword,
    random_observer_dag,
    random_sequential_query,
)


def observer_db(seed: int, observers: int, chain_length: int) -> LabeledDag:
    """A deterministic k-observer database."""
    return random_observer_dag(
        random.Random(seed), observers, chain_length
    )


def antichain_db(seed: int, size: int) -> LabeledDag:
    """A width-`size` database: one labelled point per observer."""
    rng = random.Random(seed)
    chains = [random_flexiword(rng, 1, empty_ok=False) for _ in range(size)]
    return LabeledDag.from_chains(chains)


def seq_query(seed: int, length: int):
    """A deterministic sequential query."""
    return random_sequential_query(
        random.Random(seed), length, empty_ok=False
    )


def dag_query(seed: int, n_vars: int):
    """A deterministic conjunctive monadic (dag) query."""
    return random_conjunctive_monadic_query(
        random.Random(seed), n_vars, edge_prob=0.5, empty_ok=False
    )
