#!/usr/bin/env python3
"""Non-pytest benchmark runner for the entailment pipeline.

Times the hot paths of the reproduction — ``OrderGraph.reduced()``, the
closure computations, the Theorem 5.3 disjunctive search, the Theorem 4.7
bounded-width search, SEQ path decomposition and minimal-model counting —
on the synthetic workloads from ``repro.workloads.generators`` across graph
sizes and widths.  Every benchmark runs twice:

* **naive** — under ``repro.substrate.reference.naive_mode()``, which
  routes all reachability queries through the retained seed algorithms and
  disables every cache (the "before" column);
* **optimized** — on the bitset/cached substrate (the "after" column).

Results (including the speedup ratio and a result-equality check) are
written as JSON to ``BENCH_core.json`` at the repository root, establishing
the perf trajectory for future PRs.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full run
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_benchmarks.py --check    # fail on
        result mismatch or on speedup below --min-speedup
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.algorithms.conjunctive import (  # noqa: E402
    bounded_width_entails_dag,
    paths_entails_dag,
)
from repro.algorithms.disjunctive import theorem53  # noqa: E402
from itertools import product as iter_product  # noqa: E402

from repro.algorithms.bruteforce import entails_bruteforce  # noqa: E402
from repro.api import Session  # noqa: E402
from repro.api.plan import prune_candidates_by_models  # noqa: E402
from repro.core.entailment import entails, explain  # noqa: E402
from repro.core.query import DisjunctiveQuery, as_dnf  # noqa: E402
from repro.core.sorts import obj, objvar  # noqa: E402
from repro.core.models import (  # noqa: E402
    count_minimal_models,
    iter_block_sequences,
)
from repro.substrate import reference  # noqa: E402
from repro.workloads.generators import (  # noqa: E402
    random_certain_answers_workload,
    random_conjunctive_monadic_query,
    random_disjunctive_monadic_query,
    random_labeled_dag,
    random_nary_database,
    random_nary_query,
    random_observer_dag,
)


def _best_time(fn, repeats: int) -> tuple[float, object]:
    """Best-of-N wall time and the (last) result of ``fn``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _run_pair(name, params, fn, repeats):
    with reference.naive_mode():
        naive_s, naive_result = _best_time(fn, repeats)
    optimized_s, optimized_result = _best_time(fn, repeats)
    return {
        "name": name,
        "mode": "substrate",
        "params": params,
        "naive_s": round(naive_s, 6),
        "optimized_s": round(optimized_s, 6),
        "speedup": round(naive_s / optimized_s, 2) if optimized_s else None,
        "results_match": naive_result == optimized_result,
    }


def _run_api_pair(name, params, one_shot_fn, prepared_fn, repeats):
    """Time the stateless one-shot API against the session/prepared API.

    Both sides run on the optimized substrate — this measures the API
    redesign (plan + cache reuse), not the PR 1 bitset substrate.
    """
    one_shot_s, one_shot_result = _best_time(one_shot_fn, repeats)
    prepared_s, prepared_result = _best_time(prepared_fn, repeats)
    return {
        "name": name,
        "mode": "api",
        "params": params,
        "one_shot_s": round(one_shot_s, 6),
        "prepared_s": round(prepared_s, 6),
        "speedup": round(one_shot_s / prepared_s, 2) if prepared_s else None,
        "results_match": one_shot_result == prepared_result,
    }


def _run_overhead_pair(name, params, baseline_fn, guarded_fn, repeats):
    """Time a bare loop against the same loop under a durability guard.

    Unlike the other row shapes, *lower* is better for the ratio: the
    ``overhead`` column is ``guarded_s / baseline_s`` and ``--check``
    gates it from above (the guard must cost < ``--max-overhead`` x).
    """
    baseline_s, baseline_result = _best_time(baseline_fn, repeats)
    guarded_s, guarded_result = _best_time(guarded_fn, repeats)
    return {
        "name": name,
        "mode": "overhead",
        "params": params,
        "baseline_s": round(baseline_s, 6),
        "guarded_s": round(guarded_s, 6),
        "overhead": round(guarded_s / baseline_s, 2) if baseline_s else None,
        "results_match": baseline_result == guarded_result,
    }


def _run_serve_pair(name, params, serial_fn, concurrent_fn, latencies, repeats):
    """Time CLI-style serial connections against multiplexed clients.

    Both sides drive the same live :class:`~repro.server.ReproServer`
    with an identical request mix.  ``results_match`` compares the two
    reply streams byte-for-byte (connection-local ``id`` and global
    ``seq`` stamps stripped, order normalized): multiplexing N clients
    must not change a single reply payload.  ``latencies`` is filled by
    the concurrent side with per-request send-to-reply times.
    """
    serial_s, serial_result = _best_time(serial_fn, repeats)
    concurrent_s, concurrent_result = _best_time(concurrent_fn, repeats)
    lat = sorted(latencies)
    n = params["requests"]
    return {
        "name": name,
        "mode": "serve",
        "params": params,
        "serial_s": round(serial_s, 6),
        "concurrent_s": round(concurrent_s, 6),
        "speedup": round(serial_s / concurrent_s, 2) if concurrent_s else None,
        "serial_rps": round(n / serial_s) if serial_s else None,
        "concurrent_rps": round(n / concurrent_s) if concurrent_s else None,
        "p50_ms": round(lat[len(lat) // 2] * 1000, 3) if lat else None,
        "p99_ms": round(lat[int(len(lat) * 0.99)] * 1000, 3) if lat else None,
        "results_match": serial_result == concurrent_result,
    }


def build_serve_benchmarks(quick: bool, seed: int):
    """Yield ``(name, params, serial_fn, concurrent_fn, latencies, repeats)``.

    Throughput of the serving tier.  The serial side is the
    ``--connect`` CLI's unit of work — a fresh connection per request,
    requests served strictly one at a time.  The concurrent side is the
    tier's reason to exist: a handful of long-lived clients pipelining
    ``max_inflight``-deep windows onto one shared engine loop, whose
    reader drains bursts into batched ``execute_many`` calls.  The
    server (one per yielded row) is torn down when the generator
    resumes after the row is consumed.
    """
    import threading

    from repro.server import ReproClient, ServerThread
    from repro.substrate.parser import parse_database

    db_text = (
        "On(p1, lamp); On(p2, heater); Off(p3, lamp); Off(p4, fan);"
        " p1 < p3; p1 < p2; p2 < p4"
    )
    requests = 160 if quick else 400
    clients = 4
    depth = 8
    queries = [
        (
            "execute",
            {
                "query": "On(s, lamp) & Off(t, lamp) & s < t",
                "semantics": "fin",
                "method": "auto",
            },
        ),
        (
            "answers",
            {
                "query": "On(s, X) & Off(t, X) & s < t",
                "free_vars": ["X"],
                "semantics": "fin",
            },
        ),
        (
            "execute",
            {
                "query": "On(s, heater) & Off(t, fan) & s < t",
                "semantics": "fin",
                "method": "auto",
            },
        ),
    ]

    def strip(reply):
        # id is connection-local and seq depends on interleaving; all
        # other bytes of the reply must be identical across the two runs
        return json.dumps(
            {k: v for k, v in reply.items() if k not in ("id", "seq")},
            sort_keys=True,
        )

    thread = ServerThread(Session(parse_database(db_text)))
    host, port = thread.start()
    try:
        with ReproClient(host, port) as client:
            for op, fields in queries:  # warm the plan cache for both sides
                client.call(op, **fields)

        def serial(n=requests):
            out = []
            for i in range(n):
                op, fields = queries[i % len(queries)]
                with ReproClient(host, port) as client:
                    out.append(strip(client.call(op, **fields)))
            return sorted(out)

        latencies: list[float] = []

        def concurrent(n=requests):
            out: list[list[str]] = [[] for _ in range(clients)]
            lat: list[float] = []

            def worker(tid):
                with ReproClient(host, port) as client:
                    pending = []

                    def reap():
                        t0, rid = pending.pop(0)
                        reply = client.wait(rid)
                        lat.append(time.perf_counter() - t0)
                        out[tid].append(strip(reply))

                    for i in range(tid, n, clients):
                        op, fields = queries[i % len(queries)]
                        pending.append(
                            (time.perf_counter(), client.send(op, **fields))
                        )
                        if len(pending) >= depth:
                            reap()
                    while pending:
                        reap()

            workers = [
                threading.Thread(target=worker, args=(tid,))
                for tid in range(clients)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            latencies[:] = lat
            return sorted(x for part in out for x in part)

        yield (
            "serve/throughput",
            {"requests": requests, "clients": clients, "depth": depth},
            serial,
            concurrent,
            latencies,
            3,  # best-of-3: socket timings are the noisiest in the file
        )
    finally:
        thread.shutdown()


def build_replica_benchmarks(quick: bool, seed: int):
    """Yield serve-pair rows for read scale-out over replica processes.

    One ``repro serve`` primary (WAL-attached) versus the same primary
    plus two ``--replica-of`` replicas sharing the read load through a
    :class:`~repro.server.ReplicaRouter`.  Real subprocesses, not
    in-process ``ServerThread``\\ s: three servers inside one interpreter
    would share a GIL and the row would measure contention, not
    scale-out.  Both sides run the identical read-only request mix
    through a router (``read_primary=True``), so the only variable is
    how many engine processes answer; ``results_match`` holds the reply
    streams byte-for-byte equal (``applied_seq`` stripped along with
    ``id``/``seq``).  Skipped in ``--quick`` and below 4 CPUs — the
    primary, two replicas and the client need real cores for the 2x
    ``--check`` gate to be physically reachable.
    """
    if quick or (os.cpu_count() or 1) < 4:
        return
    import shutil
    import subprocess
    import tempfile
    import threading

    from repro.server import ReplicaRouter, ReproClient

    tmpdir = tempfile.mkdtemp(prefix="repro-replica-bench-")
    db_file = os.path.join(tmpdir, "db.txt")
    wal_file = os.path.join(tmpdir, "bench.wal")
    # a chain long enough that each read costs real engine time: the
    # row must be dominated by server-side work, not client JSON
    points = 28
    atoms = []
    for i in range(points):
        atoms.append(f"{'On' if i % 2 == 0 else 'Off'}(p{i}, dev{i % 7})")
    order = [f"p{i} < p{i + 1}" for i in range(points - 1)]
    with open(db_file, "w") as fh:
        fh.write("; ".join(atoms + order) + "\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")

    def spawn(*argv):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *argv,
             "--port", "0", "--json"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        addr = json.loads(proc.stdout.readline())["listening"]
        return proc, (addr["host"], addr["port"])

    requests = 240
    clients = 8
    queries = [
        (
            "execute",
            {
                "query": "On(s, dev0) & Off(t, dev0) & s < t",
                "semantics": "fin",
                "method": "auto",
            },
        ),
        (
            "answers",
            {
                "query": "On(s, X) & Off(t, X) & s < t",
                "free_vars": ["X"],
                "semantics": "fin",
            },
        ),
        (
            "answers",
            {
                "query": "On(s, X) & Off(t, X) & Off(u, X) & s < t & t < u",
                "free_vars": ["X"],
                "semantics": "fin",
            },
        ),
    ]

    def strip(reply):
        # applied_seq is replica routing metadata, id/seq are stamps;
        # every other reply byte must be identical on both sides
        return json.dumps(
            {
                k: v
                for k, v in reply.items()
                if k not in ("id", "seq", "applied_seq")
            },
            sort_keys=True,
        )

    procs = []
    try:
        primary, p_addr = spawn(db_file, "--wal", wal_file, "--sync", "flush")
        procs.append(primary)
        r_addrs = []
        for _ in range(2):
            proc, addr = spawn(
                "-", "--replica-of", wal_file, "--poll-interval", "0.005"
            )
            procs.append(proc)
            r_addrs.append(addr)
        for addr in [p_addr] + r_addrs:  # warm every server's plan cache
            with ReproClient(*addr) as client:
                for op, fields in queries:
                    client.call(op, **fields)

        def drive(replicas):
            """Run the mix through a router over the given replica set."""

            def run(n=requests):
                out: list[list[str]] = [[] for _ in range(clients)]

                def worker(tid):
                    with ReplicaRouter(
                        p_addr,
                        replicas,
                        read_primary=True,
                        wait_timeout=10.0,
                    ) as router:
                        for i in range(tid, n, clients):
                            op, fields = queries[i % len(queries)]
                            if op == "execute":
                                reply = router.execute(**fields)
                            else:
                                reply = router.answers(**fields)
                            out[tid].append(strip(reply))

                workers = [
                    threading.Thread(target=worker, args=(tid,))
                    for tid in range(clients)
                ]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
                return sorted(x for part in out for x in part)

            return run

        yield (
            "serve/replica_scaleout",
            {"requests": requests, "clients": clients, "replicas": 2},
            drive([]),  # every read on the one primary process
            drive(r_addrs),  # reads spread over three processes
            [],
            2,
        )
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
        shutil.rmtree(tmpdir, ignore_errors=True)


def build_wal_benchmarks(quick: bool, seed: int):
    """Yield ``(name, params, baseline_fn, guarded_fn, repeats)`` tuples.

    The steady-state mutator path with and without a
    :class:`~repro.engine.wal.WriteAheadLog` attached, once per sync
    policy: ``sync="flush"`` (page-cache durability — record encoding +
    buffered write, no fsync latency) and ``sync="group"`` (process- and
    power-failure durability, fsyncs amortized across group-commit
    windows).  The result pair is the
    final session state *and* what :func:`repro.engine.wal.recover`
    rebuilds from the log, so the row doubles as an end-to-end
    durability check.
    """
    import tempfile

    from repro.engine.wal import WriteAheadLog, recover, snap_path
    from repro.workloads.generators import mutation_class_stream

    rounds = 80 if quick else 200
    rng_seed = seed + 53
    tmpdir = tempfile.mkdtemp(prefix="repro-wal-bench-")
    wal_file = os.path.join(tmpdir, "bench.wal")
    recover_checked = []

    def state_of(session):
        return (
            frozenset(session._proper),
            frozenset(session._order),
            session._gens(),
        )

    def baseline(rounds=rounds):
        db, ops = mutation_class_stream(random.Random(rng_seed), rounds)
        session = Session(db)
        for op in ops:
            op.apply(session)
        return state_of(session)

    def with_wal_at(path, sync):
        def with_wal(rounds=rounds, path=path, sync=sync):
            for stale in (path, snap_path(path)):
                if os.path.exists(stale):
                    os.remove(stale)
            db, ops = mutation_class_stream(random.Random(rng_seed), rounds)
            session = Session(db)
            with WriteAheadLog(path, sync=sync) as wal:
                wal.attach(session)
                for op in ops:
                    op.apply(session)
            if sync not in recover_checked:
                # end-to-end durability check, once per policy: best-of-N
                # timing takes the later (recover-free, steady-state) calls
                recover_checked.append(sync)
                if state_of(recover(path)) != state_of(session):
                    raise RuntimeError(
                        "WAL recovery diverged from the live session"
                    )
            return state_of(session)

        return with_wal

    yield (
        "wal/write_overhead",
        {"rounds": rounds, "mutations": rounds * 8, "sync": "flush"},
        baseline,
        with_wal_at(wal_file, "flush"),
        3,  # best-of-3 like the other gated rows: noise must not gate CI
    )

    # sync="group" pays real fsyncs (one per group-commit window, not one
    # per record) — the row asserts that full durability stays inside the
    # same <= --max-overhead envelope as the page-cache flush policy
    yield (
        "wal/write_overhead",
        {"rounds": rounds, "mutations": rounds * 8, "sync": "group"},
        baseline,
        with_wal_at(os.path.join(tmpdir, "bench-group.wal"), "group"),
        3,
    )


def build_benchmarks(quick: bool, seed: int):
    """Yield ``(name, params, fn, repeats)`` tuples."""
    repeats = 1 if quick else 3
    # The reduced/ and theorem53/ benches gate CI via --check: always take
    # best-of-3 so a single GC pause on a noisy runner can't fail the build.
    gated_repeats = 3
    scale = 1 if quick else 2

    def reduced_edges(g):
        return sorted((u, v, rel.name) for u, v, rel in g.reduced().edges())

    # -- reduced() on full closures of width-k observer databases ----------
    for width, chain in ((2, 5 * scale), (4, 5 * scale), (6, 4 * scale)):
        rng = random.Random(seed + width)
        dag = random_observer_dag(rng, width, chain)
        full = dag.graph.full()
        yield (
            "reduced/observer",
            {"width": width, "chain": chain, "edges": len(full._edges)},
            lambda full=full: reduced_edges(full),
            gated_repeats,
        )

    # -- reduced() on dense random dags ------------------------------------
    for n in (12 * scale, 20 * scale):
        rng = random.Random(seed + n)
        g = random_labeled_dag(rng, n, edge_prob=0.4).graph.full()
        yield (
            "reduced/random",
            {"vertices": n, "edges": len(g._edges)},
            lambda g=g: reduced_edges(g),
            gated_repeats,
        )

    # -- one-shot closure (reachability + strict) on fresh graphs ----------
    for n in (30 * scale, 60 * scale):
        rng = random.Random(seed + 7 * n)
        g = random_labeled_dag(rng, n, edge_prob=0.2).graph

        def closure(g=g):
            h = g.copy()  # fresh generation: forces a cold recompute
            return (h.reachability(), h.strict_reachability())

        yield ("closure/random", {"vertices": n}, closure, repeats)

    # -- Theorem 5.3 disjunctive search at width >= 4 ----------------------
    t53_cases = (
        (4, 3, 2, 3),
        (4, 4, 2, 3),
        (5, 3, 2, 3),
    )
    if quick:
        t53_cases = ((4, 3, 2, 3), (4, 4, 2, 3))
    for width, chain, nd, nv in t53_cases:
        rng = random.Random(seed + width * 100 + chain)
        dag = random_observer_dag(rng, width, chain)
        query = random_disjunctive_monadic_query(rng, nd, nv)

        def t53(dag=dag, query=query):
            r = theorem53(dag, query)
            return (r.holds, r.countermodel)

        yield (
            "theorem53/observer",
            {"width": width, "chain": chain, "disjuncts": nd, "qvars": nv},
            t53,
            gated_repeats,
        )

    # -- Theorem 4.7 bounded-width conjunctive search ----------------------
    for width, chain in ((4, 4), (4, 6 if not quick else 4)):
        rng = random.Random(seed + width * 31 + chain)
        dag = random_observer_dag(rng, width, chain)
        qdag = random_conjunctive_monadic_query(rng, 4).monadic_dag()
        yield (
            "bounded_width/observer",
            {"width": width, "chain": chain},
            lambda dag=dag, qdag=qdag: bounded_width_entails_dag(dag, qdag),
            repeats,
        )

    # -- SEQ over the path decomposition -----------------------------------
    rng = random.Random(seed + 1)
    dag = random_observer_dag(rng, 4, 4 if quick else 6)
    qdag = random_conjunctive_monadic_query(rng, 5, edge_prob=0.5).monadic_dag()
    yield (
        "seq_paths/observer",
        {"width": 4, "qvars": 5},
        lambda dag=dag, qdag=qdag: paths_entails_dag(dag, qdag),
        repeats,
    )

    # -- minimal-model counting and enumeration ----------------------------
    rng = random.Random(seed + 2)
    dag = random_observer_dag(rng, 3, 3 if quick else 4)
    graph = dag.graph.normalize().graph
    yield (
        "count_models/observer",
        {"width": 3},
        lambda graph=graph: count_minimal_models(graph),
        repeats,
    )
    rng = random.Random(seed + 2)
    dag = random_observer_dag(rng, 3 if quick else 3, 2 if quick else 3)
    graph = dag.graph.normalize().graph
    yield (
        "enumerate_models/observer",
        {"width": 3},
        lambda graph=graph: sum(1 for _ in iter_block_sequences(graph)),
        1,
    )

    # -- the bitset minimal-model engine (region-DAG DP) -------------------
    # enumeration: valid blocks generated per region (downset walk, memoized
    # on the region bitmask) instead of filtering all minor subsets
    rng = random.Random(seed + 41)
    dag = random_observer_dag(rng, 3, 3 if quick else 4)
    graph = dag.graph.normalize().graph
    yield (
        "models/enumeration",
        {"width": 3, "vertices": len(graph)},
        lambda graph=graph: sum(1 for _ in iter_block_sequences(graph)),
        1,
    )

    # bruteforce entailment over an n-ary database: DP over region states
    # vs enumerate-every-model-and-recheck (gated >= 2x in CI --check)
    rng = random.Random(seed + 43)
    nary_db = random_nary_database(
        rng,
        n_order=7 if quick else 8,
        n_objects=3,
        n_facts=8 if quick else 10,
        preds=(("B", 2), ("C", 3)),
        edge_prob=0.35,
        neq_prob=0.1,
    )
    nary_query = DisjunctiveQuery(
        tuple(
            random_nary_query(
                rng, 2, 2, 1, preds=(("B", 2), ("C", 3)), neq_prob=0.2
            )
            for _ in range(2)
        )
    )

    def nary_bruteforce(db=nary_db, query=nary_query):
        r = entails_bruteforce(db, query)
        return (r.holds, r.countermodel)

    yield (
        "models/bruteforce",
        {
            "order_consts": 7 if quick else 8,
            "facts": 8 if quick else 10,
            "disjuncts": 2,
        },
        nary_bruteforce,
        gated_repeats,
    )

    # the batched model sweep: many substituted candidate queries decided
    # against one shared set of minimal-model tables
    rng = random.Random(seed + 47)
    sweep_db = random_nary_database(
        rng,
        n_order=6 if quick else 7,
        n_objects=6 if quick else 8,
        n_facts=10 if quick else 12,
        preds=(("B", 2),),
        edge_prob=0.35,
    )
    sweep_base = as_dnf(
        random_nary_query(rng, 2, 2, 1, preds=(("B", 2),))
    )
    sweep_x = objvar("x0")
    sweep_candidates = {}
    for name in sorted(sweep_db.object_constants):
        substituted = sweep_base.substitute({sweep_x: obj(name)})
        sweep_candidates.setdefault(substituted, []).append(name)

    yield (
        "models/batched_sweep",
        {
            "order_consts": 6 if quick else 7,
            "candidates": len(sweep_candidates),
        },
        lambda db=sweep_db, cands=sweep_candidates: frozenset(
            prune_candidates_by_models(db, cands)
        ),
        repeats,
    )


def build_api_benchmarks(quick: bool, seed: int):
    """Yield ``(name, params, one_shot_fn, prepared_fn, repeats)`` tuples.

    The one-shot side is the stateless per-call/per-tuple loop the
    pre-session API forced on callers (``certain_answers`` itself is now
    prepared-plan backed, so the loop is spelled out here).  The
    prepared side builds its :class:`Session` inside the timed function,
    so plan compilation and cache warm-up are paid inside the
    measurement — the speedup comes purely from doing the work once per
    plan instead of once per call/tuple.
    """
    repeats = 1 if quick else 3

    def per_tuple_answers(db, query, free):
        """The pre-session certain-answers loop: one full pipeline per
        candidate tuple."""
        dnf = as_dnf(query)
        domain = sorted(db.object_constants)
        return frozenset(
            combo
            for combo in iter_product(domain, repeat=len(free))
            if entails(
                db, dnf.substitute(dict(zip(free, map(obj, combo))))
            )
        )

    # -- certain answers: one prepared plan over all candidate tuples ------
    rng = random.Random(seed + 11)
    n_objects = 8 if quick else 10
    db, query, free = random_certain_answers_workload(
        rng,
        width=4,
        chain_length=3 if quick else 4,
        n_objects=n_objects,
        n_disjuncts=2,
        n_free=2,
    )
    yield (
        "session/certain_answers",
        {
            "width": 4,
            "chain": 3 if quick else 4,
            "objects": n_objects,
            "free_vars": 2,
            "candidates": n_objects ** 2,
        },
        lambda db=db, query=query, free=free: per_tuple_answers(
            db, query, free
        ),
        lambda db=db, query=query, free=free: frozenset(
            Session(db).certain_answers(query, free)
        ),
        repeats,
    )

    # -- a batch of closed queries sharing one warm closure state ----------
    rng = random.Random(seed + 13)
    dag = random_observer_dag(rng, 4, 4 if quick else 5)
    db = dag.to_database()
    queries = [
        random_disjunctive_monadic_query(rng, 2, 3)
        for _ in range(6 if quick else 12)
    ]
    yield (
        "session/entails_many",
        {"width": 4, "queries": len(queries)},
        lambda db=db, queries=queries: [
            explain(db, q).holds for q in queries
        ],
        lambda db=db, queries=queries: Session(db).entails_many(queries),
        repeats,
    )

    # -- an evolving database: object-fact churn between queries -----------
    rng = random.Random(seed + 17)
    db, query, free = random_certain_answers_workload(
        rng,
        width=3,
        chain_length=3,
        n_objects=6 if quick else 8,
        n_disjuncts=2,
        n_free=1,
    )
    from repro.core.atoms import ProperAtom
    from repro.core.database import IndefiniteDatabase

    toggles = [
        ProperAtom("Tag", (obj(f"churn{i}"),)) for i in range(4)
    ]

    def one_shot_evolving(db=db, query=query, free=free, toggles=toggles):
        answers = []
        current = db
        for fact in toggles:
            current = current.union(IndefiniteDatabase.of(fact))
            answers.append(per_tuple_answers(current, query, free))
        return answers

    def prepared_evolving(db=db, query=query, free=free, toggles=toggles):
        session = Session(db)
        plan = session.prepare(query, free_vars=free)
        answers = []
        for fact in toggles:
            session.assert_facts(fact)
            answers.append(frozenset(plan.execute().answers))
        return answers

    yield (
        "session/evolving_db",
        {"width": 3, "chain": 3, "objects": 6 if quick else 8,
         "mutations": len(toggles)},
        one_shot_evolving,
        prepared_evolving,
        repeats,
    )


def build_engine_benchmarks(quick: bool, seed: int):
    """Yield ``(name, params, one_shot_fn, engine_fn, repeats)`` tuples.

    The one-shot side is the per-request loop a sessionless service
    would run: every request pays the full pipeline (and every open
    request its own per-tuple/model sweep).  The engine side feeds the
    same request stream to :mod:`repro.engine` — plan grouping, combined
    model sweeps, materialized views — with all setup (session, view,
    pool construction) paid inside the measurement.
    """
    from repro.engine.batch import QueryRequest, execute_many
    from repro.engine.views import MaterializedView
    from repro.core.entailment import certain_answers
    from repro.core.atoms import ProperAtom
    from repro.workloads.generators import random_request_stream

    repeats = 1 if quick else 3

    def run_one_shot(db, requests):
        out = []
        for r in requests:
            if r.free_vars is None:
                out.append(explain(db, r.query, semantics=r.semantics,
                                   method=r.method).holds)
            else:
                out.append(frozenset(certain_answers(
                    db, r.query, r.free_vars, semantics=r.semantics
                )))
        return out

    def run_engine(db, requests):
        results = execute_many(Session(db), requests)
        return [
            r.holds if req.free_vars is None else frozenset(r.answers)
            for req, r in zip(requests, results)
        ]

    # -- a read burst with repeated plan groups ----------------------------
    rng = random.Random(seed + 23)
    db, ops = random_request_stream(
        rng,
        width=3,
        chain_length=3,
        n_objects=6 if quick else 8,
        n_queries=4,
        n_ops=16 if quick else 32,
        write_prob=0.0,
    )
    requests = [op for op in ops if isinstance(op, QueryRequest)]
    yield (
        "engine/batch",
        {"requests": len(requests),
         "plan_groups": len({r.plan_key for r in requests})},
        lambda db=db, requests=requests: run_one_shot(db, requests),
        lambda db=db, requests=requests: run_engine(db, requests),
        repeats,
    )

    # -- a materialized view over object-fact churn ------------------------
    rng = random.Random(seed + 29)
    db, query, free = random_certain_answers_workload(
        rng,
        width=3,
        chain_length=3,
        n_objects=6 if quick else 8,
        n_disjuncts=2,
        n_free=1,
    )
    toggles = [ProperAtom("Tag", (obj(f"churn{i}"),)) for i in range(6)]

    def view_one_shot(db=db, query=query, free=free, toggles=toggles):
        from repro.core.database import IndefiniteDatabase

        answers, current = [], db
        for fact in toggles:
            current = current.union(IndefiniteDatabase.of(fact))
            answers.append(frozenset(certain_answers(current, query, free)))
        return answers

    def view_engine(db=db, query=query, free=free, toggles=toggles):
        session = Session(db)
        view = MaterializedView(session, query, free)
        answers = []
        for fact in toggles:
            session.assert_facts(fact)
            answers.append(view.answers())
        return answers

    yield (
        "engine/views",
        {"width": 3, "objects": 6 if quick else 8,
         "mutations": len(toggles)},
        view_one_shot,
        view_engine,
        repeats,
    )

    # -- snapshot-parallel pool (skipped in --quick: CI stays fork-free;
    # -- skipped on 1-CPU hosts, where processes can only time-share) ------
    if not quick and (os.cpu_count() or 1) >= 2:
        from repro.engine.pool import execute_parallel

        rng = random.Random(seed + 31)
        db, ops = random_request_stream(
            rng,
            width=4,
            chain_length=5,
            n_objects=10,
            n_queries=12,
            n_ops=48,
            write_prob=0.0,
        )
        requests = [op for op in ops if isinstance(op, QueryRequest)]

        def pool_sequential(db=db, requests=requests):
            return run_engine(db, requests)

        def pool_parallel(db=db, requests=requests):
            results = execute_parallel(Session(db), requests, workers=2)
            return [
                r.holds if req.free_vars is None else frozenset(r.answers)
                for req, r in zip(requests, results)
            ]

        yield (
            "engine/pool",
            {"requests": len(requests), "workers": 2},
            pool_sequential,
            pool_parallel,
            1,
        )

    # -- persistent daemon pool: incremental resync vs fork-per-batch ------
    # (same multi-core / non-quick conditions as engine/pool above)
    if not quick and (os.cpu_count() or 1) >= 2:
        from repro.engine.batch import execute_stream
        from repro.engine.pool import DaemonPool, WorkerPool

        rng = random.Random(seed + 37)
        db, ops = random_request_stream(
            rng,
            width=4,
            chain_length=4,
            n_objects=8,
            n_queries=10,
            n_ops=20,
            write_prob=0.0,
        )
        requests = [op for op in ops if isinstance(op, QueryRequest)]
        toggles = [ProperAtom("Tag", (obj(f"dp{i}"),)) for i in range(4)]

        def pool_per_batch(db=db, requests=requests, toggles=toggles):
            session = Session(db)
            out = []
            for fact in toggles:
                session.assert_facts(fact)
                with WorkerPool(session, workers=2) as pool:
                    out.append(pool.execute_many(requests))
            return out

        def daemon_pool(db=db, requests=requests, toggles=toggles):
            session = Session(db)
            out = []
            with DaemonPool(session, workers=2) as pool:
                for fact in toggles:
                    session.assert_facts(fact)
                    pool.resnapshot(session)
                    out.append(pool.execute_many(requests))
            return out

        yield (
            "engine/daemon_pool",
            {"requests": len(requests), "batches": len(toggles),
             "workers": 2},
            pool_per_batch,
            daemon_pool,
            1,
        )

        # -- pipelined mixed streams: write-boundary epochs on the pool ----
        # (gated >= 2x in --check on multi-core hosts: the stream is
        # read-dominated, so sharding each epoch's plan groups across the
        # workers while the main process applies the next epoch's writes
        # must beat the in-process sequential loop; results are compared
        # for exact — Result-level — equality)
        rng = random.Random(seed + 41)
        db, ops = random_request_stream(
            rng,
            width=4,
            chain_length=5,
            n_objects=10,
            n_queries=12,
            n_ops=60,
            write_prob=0.12,
        )
        stream_workers = max(2, min(4, os.cpu_count() or 1))

        def stream_sequential(db=db, ops=ops):
            return execute_stream(Session(db), list(ops))

        def stream_pipelined(db=db, ops=ops, workers=stream_workers):
            return execute_stream(Session(db), list(ops), workers=workers)

        yield (
            "engine/stream_parallel",
            {"ops": len(ops), "workers": stream_workers,
             "write_prob": 0.12},
            stream_sequential,
            stream_pipelined,
            1,
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes, 1 repeat (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero on result mismatch or speedup below --min-speedup",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="--check threshold on the reduced/, theorem53/, "
             "models/bruteforce, session/certain_answers, engine/batch, "
             "engine/stream_parallel and serve/throughput benches",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=2.0,
        help="--check ceiling on the wal/write_overhead ratio (WAL-on "
             "steady-state writes vs the memory-only mutator path)",
    )
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument(
        "--out",
        default=os.path.join(ROOT, "BENCH_core.json"),
        help="output JSON path (default: BENCH_core.json at the repo root)",
    )
    args = parser.parse_args(argv)

    rows = []
    for name, params, fn, repeats in build_benchmarks(args.quick, args.seed):
        row = _run_pair(name, params, fn, repeats)
        rows.append(row)
        match = "ok" if row["results_match"] else "MISMATCH"
        print(
            f"{row['name']:<24} {str(row['params']):<52} "
            f"naive {row['naive_s']*1000:9.2f} ms   "
            f"optimized {row['optimized_s']*1000:9.2f} ms   "
            f"x{row['speedup']:<8} {match}"
        )
    api_rows = list(build_api_benchmarks(args.quick, args.seed))
    api_rows += list(build_engine_benchmarks(args.quick, args.seed))
    for name, params, one_shot_fn, prepared_fn, repeats in api_rows:
        row = _run_api_pair(name, params, one_shot_fn, prepared_fn, repeats)
        rows.append(row)
        match = "ok" if row["results_match"] else "MISMATCH"
        print(
            f"{row['name']:<24} {str(row['params']):<52} "
            f"one-shot {row['one_shot_s']*1000:6.2f} ms   "
            f"prepared  {row['prepared_s']*1000:9.2f} ms   "
            f"x{row['speedup']:<8} {match}"
        )

    serve_gens = (
        build_serve_benchmarks(args.quick, args.seed),
        build_replica_benchmarks(args.quick, args.seed),
    )
    for name, params, serial_fn, concurrent_fn, latencies, repeats in (
        row_spec for gen in serve_gens for row_spec in gen
    ):
        row = _run_serve_pair(
            name, params, serial_fn, concurrent_fn, latencies, repeats
        )
        rows.append(row)
        match = "ok" if row["results_match"] else "MISMATCH"
        print(
            f"{row['name']:<24} {str(row['params']):<52} "
            f"serial {row['serial_rps']:6} rps   "
            f"concurrent {row['concurrent_rps']:8} rps   "
            f"x{row['speedup']:<8} {match}"
        )

    for name, params, baseline_fn, guarded_fn, repeats in build_wal_benchmarks(
        args.quick, args.seed
    ):
        row = _run_overhead_pair(name, params, baseline_fn, guarded_fn, repeats)
        rows.append(row)
        match = "ok" if row["results_match"] else "MISMATCH"
        print(
            f"{row['name']:<24} {str(row['params']):<52} "
            f"memory {row['baseline_s']*1000:8.2f} ms   "
            f"wal       {row['guarded_s']*1000:9.2f} ms   "
            f"x{row['overhead']:<8} {match}"
        )

    payload = {
        "meta": {
            "quick": args.quick,
            "seed": args.seed,
            "python": sys.version.split()[0],
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "note": (
                "substrate rows: naive = seed algorithms via repro.substrate."
                "reference.naive_mode(), optimized = bitset substrate + "
                "closure caches; api rows: one_shot = stateless entry "
                "points, prepared = Session/PreparedQuery reuse; engine "
                "rows: one_shot = per-request loop, prepared = "
                "repro.engine (batched execution, materialized views, "
                "snapshot worker pool); serve rows: serial = fresh "
                "connection per request served one at a time, concurrent "
                "= pipelined clients multiplexed onto one engine loop"
            ),
        },
        "benchmarks": rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        failures = []
        for row in rows:
            if not row["results_match"]:
                failures.append(f"{row['name']}: result pair differs")
            gated = row["name"].startswith(
                (
                    "reduced/",
                    "theorem53/",
                    "models/bruteforce",
                    "session/certain_answers",
                    "engine/batch",
                    # multi-core only: the row is skipped (never gated)
                    # on 1-CPU hosts and in --quick, like engine/pool
                    "engine/stream_parallel",
                    # multiplexed pipelined clients vs connect-per-request
                    "serve/throughput",
                    # reads over 3 server processes vs 1; skipped (never
                    # gated) in --quick and below 4 CPUs
                    "serve/replica_scaleout",
                )
            )
            if gated and row["speedup"] is not None:
                if row["speedup"] < args.min_speedup:
                    failures.append(
                        f"{row['name']}: speedup {row['speedup']} < "
                        f"{args.min_speedup}"
                    )
            if row["mode"] == "overhead" and row["overhead"] is not None:
                if row["overhead"] > args.max_overhead:
                    failures.append(
                        f"{row['name']}: overhead {row['overhead']}x > "
                        f"{args.max_overhead}x"
                    )
        if failures:
            print("CHECK FAILED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print(f"check ok: all results match, gated speedups >= {args.min_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
