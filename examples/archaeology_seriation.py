#!/usr/bin/env python
"""Seriation in archaeology (Kendall; cited in the paper's introduction).

Each artifact type was in use over some historical interval.  Absolute
dates are unknown; the data are co-occurrences: two types found in the
same grave must have overlapping use intervals.  The questions a
seriation asks — "is the co-occurrence data consistent with intervals at
all?", "must type X have gone out of use before type Z appeared?" — are
indefinite-order entailment problems.

Model: each type T gets order constants ``T.s < T.e`` (start/end of use)
and monadic marker facts ``Start_T(T.s)``, ``End_T(T.e)``.  A grave
containing types T and U adds the overlap constraints
``T.s < U.e`` and ``U.s < T.e``.
"""

from __future__ import annotations

from itertools import combinations

from repro import IndefiniteDatabase, ProperAtom, entails, lt, ordc
from repro.analysis import classify
from repro.core.models import count_minimal_models
from repro.substrate.parser import parse_query

TYPES = ["beaker", "urn", "amphora", "bowl"]

# graves and the artifact types found together in them
GRAVES = [
    {"beaker", "urn"},
    {"urn", "amphora"},
    {"amphora", "bowl"},
]


def build_database() -> IndefiniteDatabase:
    atoms = []
    for t in TYPES:
        s, e = ordc(f"{t}.s"), ordc(f"{t}.e")
        atoms.append(ProperAtom(f"Start_{t}", (s,)))
        atoms.append(ProperAtom(f"End_{t}", (e,)))
        atoms.append(lt(s, e))
    for grave in GRAVES:
        for a, b in combinations(sorted(grave), 2):
            atoms.append(lt(ordc(f"{a}.s"), ordc(f"{b}.e")))
            atoms.append(lt(ordc(f"{b}.s"), ordc(f"{a}.e")))
    return IndefiniteDatabase.from_atoms(atoms)


def main() -> None:
    db = build_database()
    print(f"types: {', '.join(TYPES)}")
    print(f"graves (co-occurrence sets): {GRAVES}")
    print(f"\nconstraint network is consistent: {db.is_consistent()}")
    chronologies = count_minimal_models(db.graph().normalize().graph)
    print(f"admissible chronologies (minimal models): {chronologies}")

    # Certain temporal conclusions across ALL chronologies.  Sharing a
    # grave forces overlap with the *neighbouring* type; but overlap is
    # not transitive, so the grave chain beaker-urn-amphora-bowl does NOT
    # force beaker and bowl to be contemporaneous.
    questions = [
        ("beaker use started before urn use ended",
         "Start_beaker(a) & a < b & End_urn(b)", True),
        ("beaker use started before bowl use ended",
         "Start_beaker(a) & a < b & End_bowl(b)", False),
        ("beaker went out of use before bowl appeared",
         "End_beaker(a) & a < b & Start_bowl(b)", False),
    ]
    print()
    for text, query_text, expected in questions:
        q = parse_query(query_text, db)
        answer = entails(db, q)
        print(f"  certainly {text}? {answer}")
        assert answer == expected

    # Add one more grave linking the chain's ends and the conclusion
    # becomes certain — exactly how new digs sharpen a seriation.
    richer = build_database().union(IndefiniteDatabase.of(
        lt(ordc("beaker.s"), ordc("bowl.e")),
        lt(ordc("bowl.s"), ordc("beaker.e")),
    ))
    q = parse_query("Start_beaker(a) & a < b & End_bowl(b)", richer)
    print(f"\nafter a new grave with beaker+bowl sherds: "
          f"certainly beaker started before bowl ended? "
          f"{entails(richer, q)}")
    assert entails(richer, q)

    print("\nComplexity profile of these queries:")
    print("  " + classify(db, q).summary().replace("\n", "\n  "))
    assert db.is_consistent()


if __name__ == "__main__":
    main()
