#!/usr/bin/env python
"""Compile-then-evaluate: the Section 6 basis as a query compiler.

The paper's data-complexity results are about the cost *after*
compilation: Theorem 6.5 shows every disjunctive monadic query has a
linear-time evaluation, but the proof is nonconstructive.  For word
databases this library makes the compile step concrete (see
``repro.flexiwords.wqo``): the finite basis of minimal entailing words is
computed once per query, after which each database is answered by a few
linear subword scans.

This script compiles a small alert-correlation query, shows the basis,
and compares per-database evaluation via the basis against the general
algorithm on a stream of databases.
"""

from __future__ import annotations

import random
import time

from repro.core.database import LabeledDag
from repro.core.query import DisjunctiveQuery
from repro.flexiwords.flexiword import FlexiWord
from repro.flexiwords.wqo import word_basis, word_entails_via_basis
from repro.core.query import ConjunctiveQuery
from repro.algorithms.conjunctive import paths_entails
from repro.workloads.generators import random_flexiword


def main() -> None:
    # Alert-correlation query over an event log (a word database):
    # "a Warn strictly followed by an Error"  OR  "two Errors in a row".
    warn_then_error = ConjunctiveQuery.from_flexiword(
        FlexiWord.parse("{Warn} < {Error}")
    )
    double_error = ConjunctiveQuery.from_flexiword(
        FlexiWord.parse("{Error} < {Error}")
    )
    query = DisjunctiveQuery.of(warn_then_error, double_error)
    print(f"query: {query}\n")

    t0 = time.perf_counter()
    basis = word_basis(query)
    compile_time = time.perf_counter() - t0
    print(f"compiled basis ({len(basis)} minimal words, "
          f"{compile_time * 1e3:.1f} ms):")
    for word in sorted(basis, key=repr):
        print(f"    {FlexiWord.word(word)}")

    rng = random.Random(99)
    logs = [
        tuple(
            random_flexiword(rng, 1, preds=("Warn", "Error", "Info")).letters[0]
            for _ in range(length)
        )
        for length in (50, 50, 200, 200, 800)
    ]

    print("\nevaluating a stream of event logs:")
    total_basis = total_general = 0.0
    for log in logs:
        t0 = time.perf_counter()
        via_basis = word_entails_via_basis(log, basis)
        total_basis += time.perf_counter() - t0

        dag = LabeledDag.from_flexiword(FlexiWord.word(log))
        t0 = time.perf_counter()
        general = any(
            paths_entails(dag, d) for d in query.disjuncts
        )
        total_general += time.perf_counter() - t0
        assert via_basis == general
        print(f"    log of {len(log):4d} events -> fires: {via_basis}")

    print(f"\ntotal basis evaluation:   {total_basis * 1e3:7.2f} ms")
    print(f"total general evaluation: {total_general * 1e3:7.2f} ms")
    print("\n(The basis answers each log with a few linear scans — the "
          "\nconstructive face of Theorem 6.5's linear data complexity.)")


if __name__ == "__main__":
    main()
