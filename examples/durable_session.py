#!/usr/bin/env python
"""Durable sessions: write-ahead logging, crash recovery, change feeds.

The monitoring service from ``session_workflow.py`` gains durability: a
:class:`repro.engine.wal.WriteAheadLog` attached to the session appends
one checksummed record per mutation, so the accumulated sensor state
survives the process.  The script walks the whole lifecycle —

1. attach a WAL and stream mutations through it;
2. crash mid-write (a deterministic ``wal.torn_write`` fault tears the
   final record in half, exactly like a real ``SIGKILL`` mid-``write``);
3. ``Session.recover`` the state from disk, torn tail and all;
4. tail the same log from a "second process": a
   :class:`~repro.engine.wal.WalFollower` whose replica session drives a
   :class:`~repro.engine.views.MaterializedView` across the file
   boundary;
5. compact the log and recover again.
"""

from __future__ import annotations

import os
import tempfile

from repro import ConjunctiveQuery, ProperAtom, Session, lt, objvar, obj, ordc
from repro.engine import MaterializedView, WalFollower, WriteAheadLog
from repro.engine import faults
from repro.engine.wal import read_log


def fact(pred: str, point: str) -> ProperAtom:
    return ProperAtom(pred, (ordc(point),))


def tag(name: str) -> ProperAtom:
    return ProperAtom("Seen", (obj(name),))


def main() -> None:
    wal_path = os.path.join(tempfile.mkdtemp(), "sensors.wal")

    # -- 1. a durable session ------------------------------------------
    print("== write-ahead logged session ==")
    session = Session.from_atoms([
        fact("Boot", "a1"), fact("Crash", "a2"), lt(ordc("a1"), ordc("a2")),
    ])
    wal = WriteAheadLog(wal_path, sync="fsync").attach(session)
    session.assert_facts(fact("Warn", "b1"))
    session.assert_order(lt(ordc("b1"), ordc("a2")))
    session.assert_facts(tag("sensor-b"))
    _base, _clean, records = read_log(wal_path)
    print(f"logged {len(records)} records to {os.path.basename(wal_path)}")
    assert len(records) == 3

    # -- 2. crash mid-write --------------------------------------------
    # the injected fault writes half of the next record's bytes and
    # raises, leaving the file exactly as a process killed mid-write
    # would; the mutation never becomes durable
    faults.install(faults.parse_spec("wal.torn_write:fraction=0.5"))
    try:
        session.assert_facts(tag("lost-to-the-crash"))
    except faults.InjectedCrash:
        print("crashed mid-append: the last record is torn")
    faults.reset()

    # -- 3. recovery ----------------------------------------------------
    print("== recovery ==")
    recovered = Session.recover(wal_path)
    assert ProperAtom("Seen", (obj("sensor-b"),)) in recovered.db.proper_atoms
    assert (
        ProperAtom("Seen", (obj("lost-to-the-crash"),))
        not in recovered.db.proper_atoms
    )
    s, t = ordc("b1"), ordc("a2")  # noqa: F841 - shown for symmetry
    warn_then_crash = ConjunctiveQuery.of(
        fact("Warn", "b1"), fact("Crash", "a2"), lt(ordc("b1"), ordc("a2"))
    )
    print(f"warn-before-crash still entailed: "
          f"{recovered.entails(warn_then_crash)}")
    assert recovered.entails(warn_then_crash)

    # -- 4. the log as a change feed ------------------------------------
    print("== follower-driven materialized view ==")
    writer = recovered
    wal = WriteAheadLog(wal_path, sync="fsync").attach(writer)
    follower = WalFollower(wal_path)
    x = objvar("x")
    view = MaterializedView(
        follower.session, ConjunctiveQuery.of(ProperAtom("Seen", (x,))), (x,)
    )
    assert view.answers() == {("sensor-b",)}
    writer.assert_facts(tag("sensor-c"))
    writer.retract_facts(tag("sensor-b"))
    applied = follower.poll()
    print(f"follower applied {applied} records; view -> {set(view.answers())}")
    assert view.answers() == {("sensor-c",)}

    # -- 5. compaction ---------------------------------------------------
    wal.compact()
    _base, _clean, records = read_log(wal_path)
    print(f"after compact(): {len(records)} log records "
          f"(state folded into the snapshot)")
    assert records == []
    wal.close()
    again = Session.recover(wal_path)
    assert again.db == writer.db
    print("recovered state matches the live session, byte for byte")


if __name__ == "__main__":
    main()
