#!/usr/bin/env python
"""Example 1.1 of the paper: the leaked-document investigation.

A document was leaked from a secure compound overnight; the culprit must
have been inside **twice** (remove, copy, replace).  The guard's log and
agent A's testimony give only partial order information about the
relevant time points.  The Internal Affairs officer deduces that *someone*
was in the compound twice — but the evidence does not identify who.

This script reproduces the deduction end to end:

* ``IC(u, v, x)`` — "x was in the compound continuously from time u to v";
* the integrity constraint "overlapping IC intervals of the same agent are
  identical" is enforced by *query modification*: instead of asking
  ``Phi`` we ask ``Psi v Phi`` where ``Psi`` detects a violation
  (``D & not Psi |= Phi``  iff  ``D |= Psi v Phi``);
* the four queries at the end of Example 1.1 come out exactly as the
  paper states: "did someone enter twice?" — yes; "did agent A (resp. B)
  enter twice?" — not enough evidence.
"""

from __future__ import annotations

from repro import (
    ConjunctiveQuery,
    DisjunctiveQuery,
    IndefiniteDatabase,
    ProperAtom,
    Semantics,
    entails,
    lt,
    obj,
    objvar,
    ordc,
    ordvar,
)
from repro.core.models import iter_minimal_models


def build_database() -> IndefiniteDatabase:
    """The guard's log plus agent A's testimony."""
    z1, z2, z3, z4 = (ordc(f"z{i}") for i in range(1, 5))
    u1, u2, u3, u4 = (ordc(f"u{i}") for i in range(1, 5))
    a, b = obj("A"), obj("B")
    return IndefiniteDatabase.of(
        # Guard's log: A was in, then left; later B entered.
        ProperAtom("IC", (z1, z2, a)),
        ProperAtom("IC", (z3, z4, b)),
        lt(z1, z2), lt(z2, z3), lt(z3, z4),
        # Agent A's testimony: B arrived while A was inside; A left first.
        ProperAtom("IC", (u1, u3, a)),
        ProperAtom("IC", (u2, u4, b)),
        lt(u1, u2), lt(u2, u3), lt(u3, u4),
    )


def integrity_violation() -> DisjunctiveQuery:
    """``Psi``: two overlapping but non-identical IC intervals of one agent.

    ``exists x t1 t2 t3 t4 w . IC(t1,t2,x) & IC(t3,t4,x)
    & t1 < w < t2 & t3 < w < t4 & (t1 < t3  v  t2 < t4)``

    The embedded disjunction makes this a two-disjunct DNF query.  Note
    the witness point ``w`` is *nontight* — it appears in no proper atom.
    """
    x = objvar("x")
    t1, t2, t3, t4, w = (ordvar(n) for n in ("t1", "t2", "t3", "t4", "w"))
    common = [
        ProperAtom("IC", (t1, t2, x)),
        ProperAtom("IC", (t3, t4, x)),
        lt(t1, w), lt(w, t2),
        lt(t3, w), lt(w, t4),
    ]
    return DisjunctiveQuery.of(
        ConjunctiveQuery.from_atoms(common + [lt(t1, t3)]),
        ConjunctiveQuery.from_atoms(common + [lt(t2, t4)]),
    )


def entered_twice(agent) -> ConjunctiveQuery:
    """``Phi(agent)``: the agent was in the compound at two distinct starts."""
    t1, t2, t3, t4 = (ordvar(n) for n in ("t1", "t2", "t3", "t4"))
    return ConjunctiveQuery.of(
        ProperAtom("IC", (t1, t2, agent)),
        ProperAtom("IC", (t3, t4, agent)),
        lt(t1, t3),
    )


def main() -> None:
    db = build_database()
    psi = integrity_violation()

    print("Database (guard's log + agent A's testimony):")
    for atom in db.atoms():
        print(f"    {atom}")
    n_models = sum(1 for _ in iter_minimal_models(db))
    print(f"\nThe data admits {n_models} minimal models (cf. Figure 1).\n")

    someone = psi.or_(entered_twice(objvar("x")))
    agent_a = psi.or_(entered_twice(obj("A")))
    agent_b = psi.or_(entered_twice(obj("B")))
    either = psi.or_(entered_twice(obj("A"))).or_(entered_twice(obj("B")))

    # Time is dense: the integrity constraint's witness point w (strictly
    # inside both intervals) is nontight, so the deduction is made under
    # the rationals semantics — the library reduces it to the finite-model
    # semantics with the Lemma 2.5 tightening transformation.
    questions = [
        ("Did someone enter the compound twice?", someone, True),
        ("Did agent A *or* agent B enter twice?", either, True),
        ("Did agent A enter twice?", agent_a, False),
        ("Did agent B enter twice?", agent_b, False),
    ]
    for text, query, expected in questions:
        answer = entails(db, query, semantics=Semantics.Q)
        verdict = "YES" if answer else "no (not enough evidence)"
        print(f"  {text:45s} -> {verdict}")
        assert answer == expected, "paper's stated answer mismatch!"

    print(
        "\nConclusion: charges can be prepared against 'someone' — the"
        "\nevidence pins down neither agent individually, exactly as the"
        "\npaper's Internal Affairs officer concludes."
    )


if __name__ == "__main__":
    main()
