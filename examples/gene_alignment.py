#!/usr/bin/env python
"""Example 1.2 of the paper: gene alignment as an indefinite order database.

Base sequences over {C, G, A, T} are compared for relatedness by aligning
them with gaps.  The space of possible alignments of k sequences is an
indefinite order database of width k: each sequence ``s1 s2 ... sn``
becomes monadic facts ``s1(u1), ..., sn(un)`` with ``u1 < u2 < ... < un``,
and a minimal model is exactly an alignment (positions merged across
sequences align; see Figure 2).

Restrictions on acceptable alignments are integrity constraints imposed by
query modification: disjoining the *violation* query
``exists t . A(t) & G(t)`` disallows aligning an A with a G.  The question
"does an alignment exist satisfying the constraints?" is then the
*negation* of entailment — and when the answer is yes, the entailment
countermodel IS a witness alignment.
"""

from __future__ import annotations

import random

from repro import DisjunctiveQuery, FlexiWord, LabeledDag, entails
from repro.algorithms.disjunctive import theorem53
from repro.core.query import ConjunctiveQuery
from repro.core.sorts import ordvar
from repro.core.atoms import ProperAtom
from repro.workloads.generators import gene_sequences

BASES = "CGAT"


def sequences_to_database(sequences: list[str]) -> LabeledDag:
    """The width-k database of k sequences (Example 1.2)."""
    chains = [
        FlexiWord.word([base] for base in seq) for seq in sequences
    ]
    return LabeledDag.from_chains(chains)


def clash(*bases: str) -> ConjunctiveQuery:
    """The violation query: some position aligns all the given bases."""
    t = ordvar("t")
    return ConjunctiveQuery.from_atoms(
        ProperAtom(b, (t,)) for b in bases
    )


def mismatch_violation() -> DisjunctiveQuery:
    """No two *different* bases may be aligned (gaps remain free)."""
    pairs = [
        (a, b) for i, a in enumerate(BASES) for b in BASES[i + 1 :]
    ]
    return DisjunctiveQuery(tuple(clash(a, b) for a, b in pairs))


def render_alignment(word, sequences: list[str]) -> list[str]:
    """Pretty-print a witness model as gapped alignment rows.

    Each sequence is embedded greedily into the word (complete because
    the word is a model of all chains); columns used by no sequence are
    dropped — what remains is itself a valid constraint-respecting
    alignment.
    """
    grid: list[list[str]] = []
    for seq in sequences:
        row = []
        i = 0
        for letter in word:
            if i < len(seq) and seq[i] in letter:
                row.append(seq[i])
                i += 1
            else:
                row.append("-")
        assert i == len(seq), "witness did not embed the sequence"
        grid.append(row)
    used = [
        c for c in range(len(word)) if any(row[c] != "-" for row in grid)
    ]
    return ["".join(row[c] for c in used) for row in grid]


def main() -> None:
    print("Exact (mismatch-free) alignment feasibility\n")
    for s1, s2 in [("GAT", "GCAT"), ("CGA", "TTT")]:
        dag = sequences_to_database([s1, s2])
        violated = entails(dag.to_database(), mismatch_violation())
        feasible = not violated
        print(f"  {s1!r} vs {s2!r}: alignment without mismatches "
              f"{'EXISTS' if feasible else 'does not exist'}")
        if feasible:
            result = theorem53(dag, mismatch_violation())
            assert not result.holds
            for row in render_alignment(result.countermodel, [s1, s2]):
                print(f"      {row}")
    # The paper's Figure 2 alignment (A over G at the left) violates the
    # A/G restriction — verify that constraint alone:
    print("\nA-with-G restriction only (the paper's example constraint):")
    dag = sequences_to_database(["AC", "GC"])
    only_ag = DisjunctiveQuery.of(clash("A", "G"))
    print(f"  'AC' vs 'GC': A-G-clash unavoidable? "
          f"{entails(dag.to_database(), only_ag)}")
    # It is avoidable: shift one sequence. Show a witness.
    result = theorem53(dag, only_ag)
    for row in render_alignment(result.countermodel, ["AC", "GC"]):
        print(f"      {row}")

    print("\nRandom batch (seeded):")
    rng = random.Random(42)
    feasible_count = 0
    for _ in range(8):
        s1, s2 = gene_sequences(rng, 2, 4)
        dag = sequences_to_database([s1, s2])
        ok = not entails(dag.to_database(), mismatch_violation())
        feasible_count += ok
        print(f"  {s1} / {s2}: {'alignable' if ok else 'conflicting'}")
    print(f"\n(Any two sequences can always be aligned by interleaving "
          f"with gaps — expected 8/8, got {feasible_count}/8.)")
    assert feasible_count == 8


if __name__ == "__main__":
    main()
