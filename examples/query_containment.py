#!/usr/bin/env python
"""Klug's problem: containment of conjunctive queries with inequalities.

Proposition 2.10 makes query containment and indefinite-order entailment
interreducible; with Theorem 3.3 this settles containment at
Pi2p-complete, closing the gap Klug left open in 1988.  This script runs
the machinery on concrete optimizer-style examples:

* redundant-atom elimination justified by a containment test;
* a containment that *fails*, with a concrete counterexample database
  extracted from the entailment countermodel;
* the classic pitfall: the homomorphism theorem is sound but incomplete
  once inequalities appear (Klug's motivating observation).
"""

from __future__ import annotations

from repro.containment.containment import (
    contained,
    counterexample,
    entailment_to_containment,
)
from repro.containment.relational import RelationalQuery, answer_set
from repro.core.atoms import ProperAtom, le, lt
from repro.core.sorts import objvar, ordvar


def emp(salary, dept):
    return ProperAtom("Emp", (salary, dept))


def main() -> None:
    x, y = ordvar("x"), ordvar("y")
    z = ordvar("z")
    d = objvar("d")

    print("=== Redundancy detection via containment ===")
    # Q1: departments with two employees AND a third strictly between
    #     their salaries; Q2 drops the middleman.
    q1 = RelationalQuery(
        head=(d,),
        atoms=(
            emp(x, d), emp(y, d), emp(z, d),
            lt(x, z), lt(z, y),
        ),
    )
    q2 = RelationalQuery(
        head=(d,), atoms=(emp(x, d), emp(y, d), lt(x, y))
    )
    print(f"Q1 = {q1}")
    print(f"Q2 = {q2}")
    print(f"Q1 contained in Q2? {contained(q1, q2)}  "
          "(dropping the middleman only widens the answer)")
    print(f"Q2 contained in Q1? {contained(q2, q1)}  "
          "(two adjacent salaries need no strict middleman)")
    assert contained(q1, q2) and not contained(q2, q1)
    # Both queries are *tight* (z occurs in a proper atom), so by
    # Proposition 2.2 the verdicts are the same over finite, integer and
    # dense orders alike.
    from repro.core.semantics import Semantics

    assert not contained(q2, q1, semantics=Semantics.Q)
    print("-> the optimizer may rewrite Q1 into Q2 only when widening "
          "is acceptable; the reverse rewrite is unsound (all three "
          "semantics agree — the queries are tight).\n")

    print("=== A failing containment, with a counterexample ===")
    q3 = RelationalQuery(head=(d,), atoms=(emp(x, d), emp(y, d), le(x, y)))
    q4 = RelationalQuery(head=(d,), atoms=(emp(x, d), emp(y, d), lt(x, y)))
    print(f"Q3 = {q3}")
    print(f"Q4 = {q4}")
    print(f"Q3 contained in Q4? {contained(q3, q4)}")
    witness = counterexample(q3, q4)
    assert witness is not None
    print(f"counterexample database: {witness.model}")
    print(f"tuple in Ans(Q3) \\ Ans(Q4): {witness.tuple_}")
    print(f"  Ans(Q3) = {sorted(answer_set(q3, witness.model))}")
    print(f"  Ans(Q4) = {sorted(answer_set(q4, witness.model))}\n")

    print("=== Homomorphism theorem fails with inequalities ===")
    # Klug's point: for inequality-free conjunctive queries, containment
    # equals existence of a homomorphism (Chandra-Merlin).  With order
    # atoms the homomorphism test stays *sound* but turns *incomplete*:
    # containments that hold by case analysis over the linear order have
    # no single homomorphism witness.
    from repro.containment.containment import (
        containment_to_entailment,
        homomorphism_contained,
    )
    from repro.core.atoms import ProperAtom as PA
    from repro.core.entailment import entails
    from repro.core.query import DisjunctiveQuery

    u = ordvar("u")
    qa = RelationalQuery(
        head=(), atoms=(PA("A", (x,)), PA("B", (y,)), PA("C", (u,)), lt(x, y))
    )
    qb1 = RelationalQuery(
        head=(),
        atoms=(PA("A", (x,)), PA("B", (y,)), PA("C", (u,)), lt(x, y), le(x, u)),
    )
    qb2 = RelationalQuery(
        head=(),
        atoms=(PA("A", (x,)), PA("B", (y,)), PA("C", (u,)), lt(x, y), le(u, x)),
    )
    print(f"QA  = {qa}")
    print(f"QB1 = {qb1}\n    contained(QA, QB1) = {contained(qa, qb1)}")
    print(f"QB2 = {qb2}\n    contained(QA, QB2) = {contained(qa, qb2)}")
    # Neither single containment holds (the C point may fall on either
    # side of x), but by totality of the linear order the disjunction
    # always does — exactly the case split a homomorphism cannot express.
    db, body1 = containment_to_entailment(qa, qb1)
    _, body2 = containment_to_entailment(qa, qb2)
    disjunctive = DisjunctiveQuery.of(body1, body2)
    print(f"QA 'contained' in QB1 v QB2 (via entailment view): "
          f"{entails(db, disjunctive)}")
    assert not contained(qa, qb1) and not contained(qa, qb2)
    assert entails(db, disjunctive)
    print(f"homomorphism test on QB1: {homomorphism_contained(qa, qb1)}, "
          f"QB2: {homomorphism_contained(qa, qb2)} "
          "(sound: both say no)")

    # And a containment that HOLDS without any homomorphism witness:
    # reflexivity of '<=' is invisible to atom-to-atom matching unless
    # the entailed-order closure is consulted.
    qc = RelationalQuery(head=(), atoms=(PA("A", (x,)), PA("B", (x,))))
    qd = RelationalQuery(
        head=(), atoms=(PA("A", (x,)), PA("B", (y,)), le(x, y))
    )
    print(f"\nQC = {qc}")
    print(f"QD = {qd}")
    print(f"contained(QC, QD) = {contained(qc, qd)}; "
          f"homomorphism (with entailed-order closure) = "
          f"{homomorphism_contained(qc, qd)}")
    assert contained(qc, qd)


if __name__ == "__main__":
    main()
