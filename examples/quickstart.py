#!/usr/bin/env python
"""Quickstart: a tour of the public API.

Covers: building indefinite order databases (programmatically and via the
text DSL), asking positive existential queries under the three semantics,
inspecting which algorithm answered, enumerating minimal models and
countermodels, and computing certain answers for open queries.
"""

from __future__ import annotations

from repro import (
    ConjunctiveQuery,
    DisjunctiveQuery,
    FlexiWord,
    IndefiniteDatabase,
    LabeledDag,
    ProperAtom,
    Semantics,
    certain_answers,
    entails,
    explain,
    lt,
    obj,
    objvar,
    ordc,
    ordvar,
)
from repro.algorithms.disjunctive import iter_countermodels
from repro.core.models import iter_minimal_models
from repro.substrate.parser import parse_database, parse_query


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    section("1. Build a database and ask a query")
    # Two sensors each report an ordered pair of events; nothing relates
    # the sensors' clocks.
    u1, u2, v1, v2 = ordc("u1"), ordc("u2"), ordc("v1"), ordc("v2")
    db = IndefiniteDatabase.of(
        ProperAtom("Boot", (u1,)),
        ProperAtom("Crash", (u2,)),
        lt(u1, u2),
        ProperAtom("Ping", (v1,)),
        ProperAtom("Timeout", (v2,)),
        lt(v1, v2),
    )
    print(f"database: {db}")
    print(f"width:    {db.width()}  (two independent observers)")

    boot_before_timeout = ConjunctiveQuery.of(
        ProperAtom("Boot", (ordvar("s"),)),
        ProperAtom("Timeout", (ordvar("t"),)),
        lt(ordvar("s"), ordvar("t")),
    )
    print(f"query:    {boot_before_timeout}")
    print(f"entailed: {entails(db, boot_before_timeout)}   "
          "(the sensors' interleaving is unknown)")

    boot_before_crash = ConjunctiveQuery.of(
        ProperAtom("Boot", (ordvar("s"),)),
        ProperAtom("Crash", (ordvar("t"),)),
        lt(ordvar("s"), ordvar("t")),
    )
    print(f"query:    {boot_before_crash}")
    print(f"entailed: {entails(db, boot_before_crash)}")

    section("2. See which algorithm answered, and get a countermodel")
    report = explain(db, boot_before_timeout)
    print(f"method:       {report.method}")
    print(f"countermodel: {report.countermodel}")

    section("3. The same database through the text DSL")
    db2 = parse_database(
        """
        # two observers, unsynchronized clocks
        Boot(u1); Crash(u2); u1 < u2
        Ping(v1); Timeout(v2); v1 < v2
        """
    )
    q2 = parse_query("Boot(s) & s < t & Timeout(t)", db2)
    print(f"parsed query entailed: {entails(db2, q2)}")

    section("4. Minimal models = generalized topological sorts")
    models = list(iter_minimal_models(db))
    print(f"the database has {len(models)} minimal models; first three:")
    for m in models[:3]:
        print(f"    {m}")

    section("5. Disjunction and countermodel enumeration")
    dag = LabeledDag.from_chains(
        [FlexiWord.parse("{Boot} < {Crash}"), FlexiWord.parse("{Ping}")]
    )
    ordered_somehow = parse_query(
        "Boot(s) & s < t & Ping(t) | Ping(t) & t < s & Crash(s)",
        dag.to_database(),
    )
    print(f"query: {ordered_somehow}")
    print(f"entailed: {entails(dag.to_database(), ordered_somehow)}")
    print("models violating the disjunction:")
    for word in iter_countermodels(dag, ordered_somehow):
        print(f"    {FlexiWord.word(word)}")

    section("6. Three semantics: finite, integers, rationals")
    some_two_points = ConjunctiveQuery.of(
        lt(ordvar("t1"), ordvar("t2"))
    )
    empty = IndefiniteDatabase.empty()
    for sem in (Semantics.FIN, Semantics.Z, Semantics.Q):
        print(f"  |= exists t1 < t2   under {sem.name}: "
              f"{entails(empty, some_two_points, semantics=sem)}")

    section("7. Certain answers of an open query")
    who = certain_answers(
        db,
        ConjunctiveQuery.of(ProperAtom("Boot", (ordvar("t"),))),
        free_vars=(),
    )
    db3 = IndefiniteDatabase.of(
        ProperAtom("On", (ordc("p1"), obj("lamp"))),
        ProperAtom("On", (ordc("p2"), obj("heater"))),
        ProperAtom("Off", (ordc("p3"), obj("lamp"))),
        lt(ordc("p1"), ordc("p3")),
    )
    x = objvar("x")
    switched_off = ConjunctiveQuery.of(
        ProperAtom("On", (ordvar("s"), x)),
        ProperAtom("Off", (ordvar("t"), x)),
        lt(ordvar("s"), ordvar("t")),
    )
    answers = certain_answers(db3, switched_off, free_vars=(x,))
    print(f"devices certainly switched off: {sorted(answers)}")


if __name__ == "__main__":
    main()
