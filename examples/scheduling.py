#!/usr/bin/env python
"""Nonlinear planning: reasoning over all executions of a partial-order plan.

The paper's introduction cites nonlinear planning (Sacerdoti) as a natural
source of indefinite order data: a plan is a *partially ordered* set of
actions, and its possible executions are the compatible linear orders —
i.e. exactly the minimal models of an indefinite order database.

This script builds a small deployment plan as a width-3 database (three
concurrent work streams), then:

1. verifies safety properties that must hold in **every** execution
   (entailment of a sequential query);
2. checks a property that holds only in *some* executions — and uses the
   Theorem 5.3 machinery to enumerate every execution violating it, which
   is how a planner would surface the orderings that still need
   constraints;
3. adds one ordering constraint and shows the violation set shrink to
   empty (the property becomes entailed).
"""

from __future__ import annotations

from repro import FlexiWord, IndefiniteDatabase, LabeledDag, entails, lt, ordc
from repro.algorithms.disjunctive import iter_countermodels
from repro.core.models import count_minimal_models
from repro.substrate.parser import parse_query


def build_plan() -> IndefiniteDatabase:
    """Three streams: build, database migration, and announcement."""
    dag = LabeledDag.from_chains(
        [
            FlexiWord.parse("{compile} < {test} < {package}"),
            FlexiWord.parse("{backup} < {migrate}"),
            FlexiWord.parse("{draft} < {announce}"),
        ],
        prefix="s",
    )
    return dag.to_database()


def main() -> None:
    plan = build_plan()
    print("Partial-order plan (three concurrent streams):")
    for atom in plan.atoms():
        print(f"    {atom}")
    print(f"\nwidth = {plan.width()} (three streams)")
    executions = count_minimal_models(plan.graph().normalize().graph)
    print(f"possible executions (minimal models): {executions}\n")

    # 1. Safety that already holds in every execution.
    ordered = parse_query("compile(a) & a < b & package(b)", plan)
    print(f"'compile before package' in all executions: "
          f"{entails(plan, ordered)}")

    # 2. A property that can still be violated: migration must not finish
    #    before the backup-verifying test has run.
    wanted = parse_query("test(a) & a < b & migrate(b)", plan)
    print(f"'test before migrate' in all executions:   "
          f"{entails(plan, wanted)}")

    violations = list(
        iter_countermodels(plan.monadic(), parse_query(
            "test(a) & a < b & migrate(b)", plan))
    )
    print(f"executions violating it: {len(violations)}; e.g.:")
    for word in violations[:3]:
        steps = " -> ".join("+".join(sorted(letter)) for letter in word)
        print(f"    {steps}")

    # 3. Constrain the plan: migrate only after test.
    test_vertex = next(
        a.args[0] for a in plan.proper_atoms if a.pred == "test"
    )
    migrate_vertex = next(
        a.args[0] for a in plan.proper_atoms if a.pred == "migrate"
    )
    constrained = plan.union(
        IndefiniteDatabase.of(lt(test_vertex, migrate_vertex))
    )
    print(f"\nAfter adding '{test_vertex} < {migrate_vertex}':")
    remaining = count_minimal_models(constrained.graph().normalize().graph)
    print(f"  executions: {executions} -> {remaining}")
    print(f"  'test before migrate' now entailed: "
          f"{entails(constrained, wanted)}")
    assert entails(constrained, wanted)
    assert not list(iter_countermodels(constrained.monadic(), wanted))


if __name__ == "__main__":
    main()
