#!/usr/bin/env python
"""The session workflow: compile queries once, execute many times.

A monitoring service watches reports from several independent sensors —
a width-k indefinite order database (Section 2's k-observer scenario).
Alert queries are fixed; the database changes as reports stream in.  The
one-shot API re-runs the whole pipeline (constant elimination, semantics
transform, normalization, the Section 4 split, method selection) on
every call; a :class:`repro.Session` compiles each query once into a
:class:`repro.PreparedQuery` and re-executes it against the evolving
database, reusing the warm order-graph closures and region caches that
each mutation did not invalidate.
"""

from __future__ import annotations

import time

from repro import (
    ConjunctiveQuery,
    DisjunctiveQuery,
    IndefiniteDatabase,
    ProperAtom,
    Session,
    lt,
    obj,
    objvar,
    ordc,
    ordvar,
)
from repro.core.entailment import explain


def fact(pred: str, point: str) -> ProperAtom:
    return ProperAtom(pred, (ordc(point),))


def main() -> None:
    # Two sensors report event sequences; their relative order is unknown.
    session = Session.from_atoms([
        fact("Boot", "a1"), fact("Warn", "a2"), fact("Crash", "a3"),
        lt(ordc("a1"), ordc("a2")), lt(ordc("a2"), ordc("a3")),
        fact("Ping", "b1"), fact("Warn", "b2"),
        lt(ordc("b1"), ordc("b2")),
    ])

    s, t = ordvar("s"), ordvar("t")
    warn_then_crash = ConjunctiveQuery.of(
        ProperAtom("Warn", (s,)), ProperAtom("Crash", (t,)), lt(s, t)
    )
    double_warn = ConjunctiveQuery.of(
        ProperAtom("Warn", (s,)), ProperAtom("Warn", (t,)), lt(s, t)
    )
    alert = DisjunctiveQuery.of(warn_then_crash, double_warn)

    print("== prepared plans over an evolving database ==")
    plan = session.prepare(alert)
    result = plan.execute()
    print(f"alert ({result.method}): {result.holds}")

    # A new report arrives: the same plan re-executes against the new
    # state; only the caches the mutation touched are rebuilt.
    session.assert_facts(fact("Warn", "b3"))
    session.assert_order(lt(ordc("b2"), ordc("b3")))
    result = plan.execute()
    print(f"alert after sensor-b update ({result.method}): {result.holds}")
    if not result.holds and result.countermodel is not None:
        print(f"  countermodel: {result.render_countermodel()}")

    # Certain answers: one prepared plan evaluated over all candidate
    # tuples (the one-shot API would rerun the pipeline per tuple).
    print("\n== certain answers as a single prepared plan ==")
    inventory = Session.from_atoms([
        ProperAtom("On", (ordc("p1"), obj("lamp"))),
        ProperAtom("On", (ordc("p2"), obj("heater"))),
        ProperAtom("Off", (ordc("p3"), obj("lamp"))),
        lt(ordc("p1"), ordc("p3")),
    ])
    x = objvar("x")
    switched_off = ConjunctiveQuery.of(
        ProperAtom("On", (s, x)), ProperAtom("Off", (t, x)), lt(s, t)
    )
    answers_plan = inventory.prepare(switched_off, free_vars=(x,))
    print(f"certainly switched off: {sorted(answers_plan.execute().answers)}")
    inventory.assert_facts(
        ProperAtom("On", (ordc("p4"), obj("tv"))),
        ProperAtom("Off", (ordc("p5"), obj("tv"))),
    )
    inventory.assert_order(lt(ordc("p4"), ordc("p5")))
    print(f"after tv reports:       {sorted(answers_plan.execute().answers)}")

    # Timing: repeated queries through the session vs the one-shot API.
    print("\n== repeated-query timing ==")
    queries = [alert, warn_then_crash, double_warn]
    repeat = 30

    t0 = time.perf_counter()
    db = session.db
    for _ in range(repeat):
        for q in queries:
            explain(db, q)
    one_shot_s = time.perf_counter() - t0

    fresh = Session(db)
    plans = [fresh.prepare(q) for q in queries]
    t0 = time.perf_counter()
    for _ in range(repeat):
        for p in plans:
            p.execute()
    prepared_s = time.perf_counter() - t0

    print(f"one-shot: {one_shot_s * 1e3:7.2f} ms   "
          f"prepared: {prepared_s * 1e3:7.2f} ms   "
          f"({one_shot_s / prepared_s:.0f}x)")
    assert [p.execute().holds for p in plans] == [
        explain(db, q).holds for q in queries
    ]
    print("\n(The session owns the mutable database; prepare() compiles "
          "\neach query once and execute() reuses every cache a mutation "
          "\ndid not invalidate — see ROADMAP.md 'API notes'.)")


if __name__ == "__main__":
    main()
