#!/usr/bin/env python
"""Temporal reasoning: Allen's interval algebra meets order databases.

The paper's introduction contrasts its positive-existential queries with
the interval-relation deduction problem of Allen / Vilain-Kautz-van Beek.
This script shows both layers and how they connect:

1. the **point algebra** substrate: composing qualitative relations,
   path consistency, and deriving entailed point relations;
2. **Allen relations** compiled to endpoint constraints, with the sound
   point-based consistency approximation;
3. definite Allen facts loaded into an *indefinite order database*, where
   the full positive-existential query language takes over — answering
   questions the interval algebra alone cannot phrase.
"""

from __future__ import annotations

from repro import IndefiniteDatabase, ProperAtom, entails, ordc
from repro.pointalgebra.allen import (
    IntervalNetwork,
    allen_relations,
    interval_database_atoms,
)
from repro.pointalgebra.pa import (
    LE,
    LT,
    NE,
    PointNetwork,
    compose,
    entailed_relation,
)
from repro.substrate.parser import parse_query


def main() -> None:
    print("=== 1. Point algebra ===")
    print(f"compose(<, <=) = {sorted(compose(LT, LE))}")
    print(f"compose(<=, !=) = {sorted(compose(LE, NE))}")

    net = PointNetwork()
    net.constrain("a", "b", LE)
    net.constrain("b", "c", LE)
    net.constrain("c", "a", LE)
    net.constrain("a", "c", NE)
    print(f"a<=b<=c<=a with a!=c consistent? {net.is_consistent()} "
          "(the cycle forces a=b=c)")

    from repro.core.atoms import le, lt

    atoms = [le(ordc("x"), ordc("y")), lt(ordc("y"), ordc("z"))]
    rel = entailed_relation(atoms, "x", "z")
    print(f"from x<=y, y<z the entailed relation x ? z is: {sorted(rel)}")

    print("\n=== 2. Allen's 13 interval relations ===")
    print(f"relations: {', '.join(allen_relations())}")
    trip = IntervalNetwork()
    trip.constrain("flight", ["before", "meets"], "hotel")
    trip.constrain("hotel", ["overlaps", "during", "starts"], "conference")
    trip.constrain("conference", ["before"], "flight")
    print(f"flight/hotel/conference cyclic schedule consistent? "
          f"{trip.consistent_approximation()}")

    ok = IntervalNetwork()
    ok.constrain("flight", ["before", "meets"], "hotel")
    ok.constrain("hotel", ["overlaps", "during", "starts"], "conference")
    print(f"without the cycle: {ok.consistent_approximation()}")

    print("\n=== 3. Allen facts inside an order database ===")
    # A patient record: fever during infection; rash after the fever
    # ended; antibiotics meet (end exactly at) the rash.
    order_atoms = interval_database_atoms(
        [
            ("fever", "during", "infection"),
            ("fever", "before", "rash"),
            ("antibiotics", "meets", "rash"),
        ]
    )
    marks = [
        ProperAtom("Fever", (ordc("fever.lo"),)),
        ProperAtom("FeverEnd", (ordc("fever.hi"),)),
        ProperAtom("Infection", (ordc("infection.lo"),)),
        ProperAtom("Rash", (ordc("rash.lo"),)),
        ProperAtom("Abx", (ordc("antibiotics.lo"),)),
    ]
    db = IndefiniteDatabase.from_atoms(list(order_atoms) + marks)

    q1 = parse_query("Infection(a) & a < b & Rash(b)", db)
    print(f"infection onset certainly before rash onset? {entails(db, q1)}")
    q2 = parse_query("Abx(a) & a < b & Fever(b)", db)
    print(f"antibiotics certainly started before fever?  {entails(db, q2)}")
    # The interval algebra cannot even phrase this three-event pattern:
    q3 = parse_query(
        "Infection(a) & a < b & Fever(b) & b < c & Rash(c)", db
    )
    print(f"infection, then fever, then rash (3-event sequence)? "
          f"{entails(db, q3)}")

    assert entails(db, q1) and not entails(db, q2) and entails(db, q3)


if __name__ == "__main__":
    main()
