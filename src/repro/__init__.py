"""repro — indefinite order databases and their query complexity.

A faithful, from-scratch reproduction of Ron van der Meyden's
"The Complexity of Querying Indefinite Data about Linearly Ordered
Domains" (PODS 1992 / JCSS 1997): indefinite order databases, positive
existential queries, the Fin/Z/Q semantics, every algorithm (SEQ,
path decomposition, the bounded-width searches of Theorems 4.7 and 5.3,
the well-quasi-order machinery of Section 6), every lower-bound
reduction, the Klug query-containment bridge, and the Section 7
inequality extension.

Quickstart::

    from repro import *

    db = IndefiniteDatabase.of(
        ProperAtom("P", (ordc("u"),)),
        ProperAtom("Q", (ordc("v"),)),
        lt(ordc("u"), ordc("v")),
    )
    q = ConjunctiveQuery.of(
        ProperAtom("P", (ordvar("s"),)),
        ProperAtom("Q", (ordvar("t"),)),
        lt(ordvar("s"), ordvar("t")),
    )
    assert entails(db, q)
"""

from repro.core import (
    ConjunctiveQuery,
    DisjunctiveQuery,
    IndefiniteDatabase,
    InconsistentError,
    LabeledDag,
    MonadicDatabase,
    OrderAtom,
    OrderGraph,
    ProperAtom,
    Query,
    Rel,
    ReproError,
    Semantics,
    Sort,
    Term,
    as_conjunctive,
    as_dnf,
    certain_answers,
    chain,
    eliminate_constants,
    entails,
    explain,
    is_tight,
    le,
    lt,
    ne,
    obj,
    objvar,
    ordc,
    ordvar,
)
from repro.analysis import ComplexityProfile, classify
from repro.api import PreparedQuery, Result, Session, render_model
from repro.flexiwords import FlexiWord, letter

__version__ = "1.0.0"

__all__ = [
    "ComplexityProfile",
    "ConjunctiveQuery",
    "DisjunctiveQuery",
    "FlexiWord",
    "IndefiniteDatabase",
    "InconsistentError",
    "LabeledDag",
    "MonadicDatabase",
    "OrderAtom",
    "OrderGraph",
    "PreparedQuery",
    "ProperAtom",
    "Query",
    "Rel",
    "ReproError",
    "Result",
    "Semantics",
    "Session",
    "Sort",
    "Term",
    "as_conjunctive",
    "as_dnf",
    "certain_answers",
    "chain",
    "classify",
    "eliminate_constants",
    "entails",
    "explain",
    "is_tight",
    "le",
    "letter",
    "lt",
    "ne",
    "obj",
    "objvar",
    "ordc",
    "ordvar",
    "render_model",
]
