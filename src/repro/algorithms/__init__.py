"""The paper's algorithms: SEQ, path decomposition, bounded-width searches."""

from repro.algorithms.bruteforce import (
    EntailmentWitness,
    count_countermodels,
    entailment_sweep,
    entails_bruteforce,
    entails_bruteforce_monadic,
)
from repro.algorithms.conjunctive import (
    bounded_width_entails,
    bounded_width_entails_dag,
    paths_entails,
    paths_entails_dag,
)
from repro.algorithms.disjunctive import (
    DisjunctiveResult,
    iter_countermodels,
    theorem53,
    theorem53_entails,
)
from repro.algorithms.modelcheck import (
    GroundingMachine,
    MonadicFrontierMachine,
    structure_satisfies,
    word_satisfies,
    word_satisfies_dag,
)
from repro.algorithms.seq import seq_countermodel, seq_entails, seq_entails_query

__all__ = [
    "DisjunctiveResult",
    "EntailmentWitness",
    "bounded_width_entails",
    "bounded_width_entails_dag",
    "GroundingMachine",
    "MonadicFrontierMachine",
    "count_countermodels",
    "entailment_sweep",
    "entails_bruteforce",
    "entails_bruteforce_monadic",
    "iter_countermodels",
    "paths_entails",
    "paths_entails_dag",
    "seq_countermodel",
    "seq_entails",
    "seq_entails_query",
    "structure_satisfies",
    "theorem53",
    "theorem53_entails",
    "word_satisfies",
    "word_satisfies_dag",
]
