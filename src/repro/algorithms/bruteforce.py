"""Brute-force entailment: the reference oracle for every fast algorithm.

``D |= phi`` iff every minimal model of ``D`` satisfies ``phi``
(Corollary 2.9).  This module enumerates minimal models (generalized
topological sorts) and model-checks each, returning the first countermodel
found.  The minimal-model process runs in a polynomial number of steps per
model and model checking is in NP, so this realizes the generic co-NP /
Pi2p upper bounds of Proposition 3.1 — and is, of course, exponential in
practice.  Every PTIME algorithm in :mod:`repro.algorithms` is validated
against this oracle in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.modelcheck import structure_satisfies
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.models import (
    Structure,
    iter_minimal_models,
    iter_minimal_words,
)
from repro.core.query import Query, as_dnf
from repro.core.regions import RegionCacheHub
from repro.flexiwords.flexiword import Word


@dataclass(frozen=True)
class EntailmentWitness:
    """Outcome of an entailment check.

    Attributes:
        holds: True when the database entails the query.
        countermodel: a minimal model falsifying the query when one exists
            (a :class:`Structure`, or a :class:`Word` from the monadic fast
            path); None when the query is entailed.
    """

    holds: bool
    countermodel: Structure | Word | None = None

    def __bool__(self) -> bool:
        return self.holds


def entails_bruteforce(
    db: IndefiniteDatabase, query: Query
) -> EntailmentWitness:
    """Decide ``D |= phi`` by enumerating minimal models.

    Query constants must be interpreted by the database (use
    ``eliminate_constants`` for foreign constants — the top-level
    :func:`repro.core.entailment.entails` does this automatically).
    An inconsistent database entails everything vacuously.
    """
    dnf = as_dnf(query).normalized()
    for model in iter_minimal_models(db):
        if not structure_satisfies(model, dnf):
            return EntailmentWitness(False, model)
    return EntailmentWitness(True)


def entails_bruteforce_monadic(
    dag: LabeledDag, query: Query, caches: "RegionCacheHub | None" = None
) -> EntailmentWitness:
    """Monadic brute force: enumerate word models, check with Cor 5.1.

    Exponentially many models but each check is polynomial — this is the
    co-NP upper bound of Proposition 5.2 run deterministically.
    """
    dnf = as_dnf(query).normalized()
    qdags = [d.monadic_dag() for d in dnf.disjuncts]
    for word in iter_minimal_words(dag, caches):
        if not any(_word_check(word, q) for q in qdags):
            return EntailmentWitness(False, word)
    return EntailmentWitness(True)


def _word_check(word: Word, qdag: LabeledDag) -> bool:
    from repro.algorithms.modelcheck import word_satisfies_dag

    return word_satisfies_dag(word, qdag)


def count_countermodels(db: IndefiniteDatabase, query: Query) -> int:
    """How many minimal models falsify the query (diagnostics/tests)."""
    dnf = as_dnf(query).normalized()
    return sum(
        1
        for model in iter_minimal_models(db)
        if not structure_satisfies(model, dnf)
    )


def iter_countermodels_nary(
    db: IndefiniteDatabase, query: Query
):
    """Generate every minimal model falsifying the query (n-ary case).

    The general-predicate counterpart of
    :func:`repro.algorithms.disjunctive.iter_countermodels`: no polynomial
    delay guarantee (each candidate model is enumerated and checked), but
    it works for any database and positive existential query, including
    '!=' atoms on both sides.
    """
    dnf = as_dnf(query).normalized()
    for model in iter_minimal_models(db):
        if not structure_satisfies(model, dnf):
            yield model
