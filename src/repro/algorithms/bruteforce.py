"""Brute-force entailment: the reference oracle for every fast algorithm.

``D |= phi`` iff every minimal model of ``D`` satisfies ``phi``
(Corollary 2.9).  The seed realized this literally — enumerate every
block sequence, materialize it as a :class:`~repro.core.models.Structure`
and restart a model check from scratch — which is exponential twice over.
This module now runs on the region-DAG dynamic programming of
:class:`repro.core.modelengine.RegionDP`: valid blocks are generated once
per region on the bitset :class:`~repro.core.modelengine.ModelEngine`,
satisfaction is carried prefix-incrementally by the machines in
:mod:`repro.algorithms.modelcheck`, and memoizing on ``(region, state)``
collapses the walk of every block sequence into one pass over the
distinct region states — with first-countermodel short-circuit and lazy
:class:`~repro.core.models.Structure` materialization only when a witness
must be rendered.  Results (including *which* countermodel is returned:
the DFS-first falsifying sequence) are identical to the seed algorithm,
which remains available under
:func:`repro.substrate.reference.naive_mode` and anchors the
differential suite in ``tests/test_models_engine.py``.

Every PTIME algorithm in :mod:`repro.algorithms` is validated against
this oracle in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.algorithms.modelcheck import (
    GroundingMachine,
    MonadicFrontierMachine,
    structure_satisfies,
)
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.modelengine import RegionDP, engine_for
from repro.core.models import (
    Structure,
    iter_minimal_models,
    iter_minimal_words,
    structure_from_blocks,
)
from repro.core.ordergraph import OrderGraph
from repro.core.query import DisjunctiveQuery, Query, as_dnf
from repro.core.regions import RegionCacheHub
from repro.flexiwords.flexiword import Word
from repro.substrate import reference


@dataclass(frozen=True)
class EntailmentWitness:
    """Outcome of an entailment check.

    Attributes:
        holds: True when the database entails the query.
        countermodel: a minimal model falsifying the query when one exists
            (a :class:`Structure`, or a :class:`Word` from the monadic fast
            path); None when the query is entailed.
    """

    holds: bool
    countermodel: Structure | Word | None = None

    def __bool__(self) -> bool:
        return self.holds


def _nary_dp(
    db: IndefiniteDatabase,
    dnf: DisjunctiveQuery,
    caches: RegionCacheHub | None,
    graph: OrderGraph | None,
):
    """``(norm, RegionDP)`` for an n-ary query, or ``(norm, None)`` when
    the database has no minimal models (everything is entailed)."""
    if graph is None:
        graph = db.graph()
    norm = graph.normalize()
    if not norm.consistent:
        return norm, None
    engine = engine_for(norm.graph, caches)
    machine = GroundingMachine(engine, db, norm.canon, dnf)
    return norm, RegionDP(engine, machine)


def _materialize(db, dp, norm, blocks) -> Structure:
    names = dp.engine.names
    return structure_from_blocks(
        db, tuple(names(b) for b in blocks), norm.canon
    )


def entails_bruteforce(
    db: IndefiniteDatabase,
    query: Query,
    caches: RegionCacheHub | None = None,
    graph: OrderGraph | None = None,
) -> EntailmentWitness:
    """Decide ``D |= phi`` over the minimal models.

    Query constants must be interpreted by the database (use
    ``eliminate_constants`` for foreign constants — the top-level
    :func:`repro.core.entailment.entails` does this automatically).
    An inconsistent database entails everything vacuously.  ``caches``
    shares the region/block tables with other queries against the same
    graph; ``graph`` reuses a prebuilt order graph of ``db``.
    """
    dnf = as_dnf(query).normalized()
    if reference.NAIVE:
        for model in iter_minimal_models(db):
            if not structure_satisfies(model, dnf):
                return EntailmentWitness(False, model)
        return EntailmentWitness(True)
    norm, dp = _nary_dp(db, dnf, caches, graph)
    if dp is None or dp.entailed():
        return EntailmentWitness(True)
    blocks = dp.countermodel_blocks()
    return EntailmentWitness(False, _materialize(db, dp, norm, blocks))


def entails_bruteforce_monadic(
    dag: LabeledDag, query: Query, caches: "RegionCacheHub | None" = None
) -> EntailmentWitness:
    """Monadic brute force over word models (Corollary 5.1 checking).

    Exponentially many models, but the frontier DP shares the check
    across every prefix reaching the same region with the same
    earliest-feasible state — this is the co-NP upper bound of
    Proposition 5.2 run deterministically.
    """
    dnf = as_dnf(query).normalized()
    if reference.NAIVE:
        qdags = [d.monadic_dag() for d in dnf.disjuncts]
        for word in iter_minimal_words(dag, caches):
            if not any(_word_check(word, q) for q in qdags):
                return EntailmentWitness(False, word)
        return EntailmentWitness(True)
    # dag.normalized() raises InconsistentError on an inconsistent dag
    # (matching the naive path through iter_minimal_words), so the graph
    # here always admits models
    norm_dag = dag.normalized()
    graph = norm_dag.graph
    engine = engine_for(graph, caches)
    machine = MonadicFrontierMachine(
        engine, norm_dag.labels, [d.monadic_dag() for d in dnf.disjuncts]
    )
    dp = RegionDP(engine, machine)
    if dp.entailed():
        return EntailmentWitness(True)
    blocks = dp.countermodel_blocks()
    word = tuple(
        frozenset().union(*(norm_dag.labels[v] for v in engine.names(b)))
        for b in blocks
    )
    return EntailmentWitness(False, word)


def _word_check(word: Word, qdag: LabeledDag) -> bool:
    from repro.algorithms.modelcheck import word_satisfies_dag

    return word_satisfies_dag(word, qdag)


def count_countermodels(
    db: IndefiniteDatabase,
    query: Query,
    caches: RegionCacheHub | None = None,
    graph: OrderGraph | None = None,
) -> int:
    """How many minimal models falsify the query (diagnostics/tests).

    One arithmetic pass over the distinct region states; dead regions
    contribute their model count without being walked.
    """
    dnf = as_dnf(query).normalized()
    if reference.NAIVE:
        return sum(
            1
            for model in iter_minimal_models(db)
            if not structure_satisfies(model, dnf)
        )
    _norm, dp = _nary_dp(db, dnf, caches, graph)
    if dp is None:
        return 0
    return dp.count_failures()


def iter_countermodels_nary(
    db: IndefiniteDatabase,
    query: Query,
    caches: RegionCacheHub | None = None,
    graph: OrderGraph | None = None,
) -> Iterator[Structure]:
    """Generate every minimal model falsifying the query (n-ary case).

    The general-predicate counterpart of
    :func:`repro.algorithms.disjunctive.iter_countermodels`: no polynomial
    delay guarantee, but it works for any database and positive
    existential query, including '!=' atoms on both sides.  Satisfied
    subtrees of the region DAG are pruned wholesale; structures are
    materialized only for the yielded countermodels.
    """
    dnf = as_dnf(query).normalized()
    if reference.NAIVE:
        for model in iter_minimal_models(db):
            if not structure_satisfies(model, dnf):
                yield model
        return
    norm, dp = _nary_dp(db, dnf, caches, graph)
    if dp is None:
        return
    for blocks in dp.iter_failing_sequences():
        yield _materialize(db, dp, norm, blocks)


def entailment_sweep(
    db: IndefiniteDatabase,
    queries: Iterable[DisjunctiveQuery],
    caches: RegionCacheHub | None = None,
    graph: OrderGraph | None = None,
    witness_queries: Iterable[DisjunctiveQuery] = (),
) -> dict[DisjunctiveQuery, EntailmentWitness]:
    """Decide many queries over ONE shared set of minimal-model tables.

    The shared core of the batched model sweep
    (:func:`repro.engine.batch.execute_many`) and of
    :func:`repro.api.plan.prune_candidates_by_models`: every query is
    decided against the same engine (one valid-block table per region
    for the whole pool), with countermodels reconstructed only for the
    queries in ``witness_queries``.  Queries are *not* normalized first
    — semantically irrelevant for satisfaction, and it keeps parity with
    the seed sweep, which checked the raw substituted queries.  Under
    :func:`~repro.substrate.reference.naive_mode` this is the literal
    seed sweep: one enumeration of the minimal models checking every
    still-undecided query per model, stopping once all have failed.
    """
    queries = list(dict.fromkeys(queries))
    if reference.NAIVE:
        counters: dict[DisjunctiveQuery, Structure] = {}
        for model in iter_minimal_models(db, graph=graph):
            undecided = [q for q in queries if q not in counters]
            if not undecided:
                break
            for q in undecided:
                if not structure_satisfies(model, q):
                    counters[q] = model
        return {
            q: EntailmentWitness(q not in counters, counters.get(q))
            for q in queries
        }
    if graph is None:
        graph = db.graph()
    norm = graph.normalize()
    if not norm.consistent:
        return {q: EntailmentWitness(True) for q in queries}
    engine = engine_for(norm.graph, caches)
    fact_table = GroundingMachine.compile_facts(engine, db, norm.canon)
    want = set(witness_queries)
    out: dict[DisjunctiveQuery, EntailmentWitness] = {}
    for q in queries:
        machine = GroundingMachine(
            engine, db, norm.canon, as_dnf(q), fact_table
        )
        dp = RegionDP(engine, machine)
        if dp.entailed():
            out[q] = EntailmentWitness(True)
        elif q in want:
            blocks = dp.countermodel_blocks()
            out[q] = EntailmentWitness(
                False, _materialize(db, dp, norm, blocks)
            )
        else:
            out[q] = EntailmentWitness(False)
    return out
