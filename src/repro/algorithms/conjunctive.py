"""Conjunctive monadic query evaluation (Section 4).

Two independent deciders for ``D |= Phi`` with ``D`` a monadic database and
``Phi`` a conjunctive monadic query:

* :func:`paths_entails` — Lemma 4.1: ``D |= Phi`` iff ``D |= p`` for every
  path ``p`` of ``Phi``; each path is decided by SEQ.  For a *fixed* query
  the path set is fixed, giving the linear-time data complexity of
  Corollary 4.4 (with a constant that can be exponential in ``|Phi|``).

* :func:`bounded_width_entails` — Theorem 4.7: a depth-first search over
  tuples ``(S, u)`` where ``S`` is the antichain of minimal vertices of the
  residual database ``D ^ S`` and ``u`` is a query vertex.  ``D`` fails
  ``Phi`` iff a tuple ``(empty, v)`` is reachable — the database ran out
  while some path of ``Phi`` was still pending.  Runs in
  ``O(|D|^{k+1} * |Phi|)`` for databases of width ``k``.
"""

from __future__ import annotations

from repro.algorithms.seq import seq_entails
from repro.core.atoms import Rel
from repro.core.database import LabeledDag
from repro.core.query import ConjunctiveQuery
from repro.core.regions import RegionCache, RegionCacheHub


def paths_entails(
    dag: LabeledDag,
    query: ConjunctiveQuery,
    caches: RegionCacheHub | None = None,
) -> bool:
    """Lemma 4.1 + Lemma 4.2: check every path of the query with SEQ."""
    normalized = query.normalized()
    if normalized is None:
        return False  # inconsistent query is never satisfied
    qdag = normalized.monadic_dag()
    return paths_entails_dag(dag, qdag, caches)


def paths_entails_dag(
    dag: LabeledDag,
    qdag: LabeledDag,
    caches: RegionCacheHub | None = None,
) -> bool:
    """Path decomposition on pre-built labelled dags."""
    if not qdag.graph.vertices:
        return True  # the empty query holds everywhere
    work = dag.normalized()
    # One RegionCache shared across all paths: early SEQ iterations visit
    # the same residual regions for paths that agree on a prefix.
    shared_graph = work.graph.normalize().graph
    if caches is not None:
        shared = caches.get(shared_graph)
    else:
        shared = RegionCache(shared_graph)
    return all(seq_entails(work, p, shared) for p in qdag.iter_paths())


def bounded_width_entails(
    dag: LabeledDag,
    query: ConjunctiveQuery,
    caches: RegionCacheHub | None = None,
) -> bool:
    """Theorem 4.7: combined-complexity PTIME for bounded-width databases."""
    normalized = query.normalized()
    if normalized is None:
        return False
    return bounded_width_entails_dag(dag, normalized.monadic_dag(), caches)


def bounded_width_entails_dag(
    dag: LabeledDag,
    qdag: LabeledDag,
    caches: RegionCacheHub | None = None,
) -> bool:
    """Theorem 4.7 search on pre-built labelled dags.

    State ``(S, u)``: ``S`` is a frozenset of database vertices — the
    minimal vertices of the residual database (all vertices reachable from
    ``S``); ``u`` is the query vertex whose letter is pending.  Edges:

    * **(a)** some ``s in S`` fails ``Phi[u]``: drop the (lexicographically
      least) such ``s`` from the residual — one edge of this type suffices;
    * **(b)** all of ``S`` supports ``Phi[u]`` and the query has an edge
      ``u -> v`` labelled '<': drop all minor vertices of the residual and
      move to ``v``;
    * **(c)** all of ``S`` supports ``Phi[u]`` and the query edge is '<=':
      keep the residual and move to ``v``.

    ``D |/= Phi`` iff some ``(empty, v)`` is reachable from an initial
    state (``S`` = minimal vertices of ``D``, ``u`` any minimal query
    vertex).
    """
    if not qdag.graph.vertices:
        return True
    work = dag.normalized()
    dgraph = work.graph
    dlabels = work.labels
    qgraph = qdag.graph
    qlabels = qdag.labels
    # Residual databases are regions of the fixed normalized graph; their
    # induced subgraphs, minors and minimal vertices are memoized so that
    # the O(|D|^{k+1}) states re-deriving the same residual share the work.
    regions = caches.get(dgraph) if caches is not None else RegionCache(dgraph)

    initial_s = frozenset(dgraph.minimal_vertices())
    stack = [(initial_s, u) for u in sorted(qgraph.minimal_vertices())]
    seen: set[tuple[frozenset[str], str]] = set(stack)

    while stack:
        s, u = stack.pop()
        if not s:
            return False  # final tuple reached: countermodel exists
        label = qlabels[u]
        bad = sorted(v for v in s if not label <= dlabels[v])
        successors: list[tuple[frozenset[str], str]] = []
        region = regions.up_set(s)
        if bad:
            successors.append((regions.minimal(region - {bad[0]}), u))
        else:
            for v in sorted(qgraph.successors(u)):
                rel = qgraph.edge_label(u, v)
                if rel is Rel.LT:
                    rest = region - regions.minors(region)
                    successors.append((regions.minimal(rest), v))
                else:
                    successors.append((s, v))
        for state in successors:
            if state not in seen:
                seen.add(state)
                stack.append(state)
    return True
