"""Disjunctive monadic queries over bounded-width databases (Theorem 5.3).

Decides ``D |= Phi1 v ... v Phin`` by searching a graph of tuples
``(S, T, u1..un, x1..xn)`` describing a partial generalized topological
sort of the database together with, per disjunct, the frontier of a
partially-matched query path:

* ``S``, ``T`` are antichains: the unsorted region is ``D^(S u T)``; the
  *provisional block* (vertices to be mapped to the next point) is
  ``D^S \\ D^T``; ``a(S, T)`` is the union of its labels;
* ``ui`` is a vertex of the i-th disjunct's dag — some path of disjunct i
  has been matched up to, but not including, ``ui``;
* ``xi = 1`` records that ``ui`` entered via a '<' edge during the current
  block, so it may only match strictly later.

Moves: **(a)** grow the block by a vertex ``v in T`` that is minor in the
unsorted region; **(b)** advance the least ``uj`` that is matchable in the
current block along a query edge (branching over successors chooses which
path of the disjunct is being falsified); **(c)** close the block — only
allowed when no ``uj`` is matchable (this enforces greedy matching, which
is complete for sequential patterns).  A state with ``T`` empty and no
matchable ``uj`` is *final*: the emitted blocks plus the last block form a
minimal model falsifying every disjunct.

``D |= Phi`` iff no final state is reachable.  The same graph, pruned to
states that can still reach a final state, enumerates **all**
countermodels with polynomial delay (the modification discussed after
Theorem 5.3) — see :func:`iter_countermodels`.

Complexity: ``O(|D|^{2k} * |Pred| * prod |Phi_i|)`` for width-k databases.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator

from repro.core.atoms import Rel
from repro.core.database import LabeledDag
from repro.core.errors import NotMonadicError
from repro.core.query import Query, as_dnf
from repro.core.regions import RegionCache, RegionCacheHub
from repro.flexiwords.flexiword import Word

State = tuple[frozenset[str], frozenset[str], tuple[str, ...], tuple[bool, ...]]


@dataclass(frozen=True)
class DisjunctiveResult:
    """Outcome of the Theorem 5.3 decision procedure."""

    holds: bool
    countermodel: Word | None = None

    def __bool__(self) -> bool:
        return self.holds


class _Search:
    """Shared machinery for deciding entailment and enumerating models."""

    def __init__(
        self,
        dag: LabeledDag,
        query: Query,
        caches: RegionCacheHub | None = None,
    ) -> None:
        dnf = as_dnf(query).normalized()
        if dnf.has_neq:
            raise NotMonadicError(
                "Theorem 5.3 handles '<'/'<=' only; expand '!=' first"
            )
        self.dag = dag.normalized()
        self.dgraph = self.dag.graph
        self.dlabels = self.dag.labels
        # All region artifacts (up-sets, induced subgraphs, minors, block
        # labels) are shared across the whole state-graph search: distinct
        # states routinely denote the same unsorted region.
        if caches is not None:
            self.regions = caches.get(self.dgraph, self.dlabels)
        else:
            self.regions = RegionCache(self.dgraph, self.dlabels)
        self.qdags = [d.monadic_dag() for d in dnf.disjuncts]
        self.trivially_true = any(not q.graph.vertices for q in self.qdags)
        self.n = len(self.qdags)

    # -- state helpers -----------------------------------------------------

    def block(self, s: frozenset[str], t: frozenset[str]) -> frozenset[str]:
        return self.regions.up_set(s) - self.regions.up_set(t)

    def block_labels(self, block: frozenset[str]) -> frozenset[str]:
        return self.regions.block_labels(block)

    def initial_states(self) -> list[State]:
        t0 = frozenset(self.dgraph.minimal_vertices())
        choices = [sorted(q.graph.minimal_vertices()) for q in self.qdags]
        xs = tuple(False for _ in range(self.n))
        return [
            (frozenset(), t0, tuple(us), xs) for us in product(*choices)
        ]

    def eligible(self, state: State, labels: frozenset[str], nonempty: bool) -> list[int]:
        """Indices j whose pending vertex is matchable in the current block."""
        _s, _t, us, xs = state
        if not nonempty:
            return []
        return [
            j
            for j in range(self.n)
            if not xs[j] and self.qdags[j].labels[us[j]] <= labels
        ]

    def is_final(self, state: State) -> bool:
        s, t, _us, _xs = state
        if t:
            return False
        block = self.block(s, t)
        labels = self.block_labels(block)
        return not self.eligible(state, labels, bool(block))

    def successors(self, state: State) -> Iterator[tuple[State, Word | None]]:
        """Yield ``(next_state, emitted_block)``; block is None except on (c)."""
        s, t, us, xs = state
        regions = self.regions
        minors = regions.minors(regions.up_set(s | t))
        block = self.block(s, t)
        labels = self.block_labels(block)
        eligible = self.eligible(state, labels, bool(block))

        # (a) grow the block by a minor vertex of T
        for v in sorted(t):
            if v not in minors:
                continue
            s2 = regions.minimal(regions.up_set(s | {v}))
            rest = regions.up_set(t) - {v}
            t2 = regions.minimal(rest)
            yield (s2, t2, us, xs), None

        # (b) advance the least matchable query pointer along an edge
        if eligible:
            j = eligible[0]
            qgraph = self.qdags[j].graph
            uj = us[j]
            for v in sorted(qgraph.successors(uj)):
                rel = qgraph.edge_label(uj, v)
                us2 = us[:j] + (v,) + us[j + 1 :]
                xs2 = xs[:j] + (rel is Rel.LT,) + xs[j + 1 :]
                yield (s, t, us2, xs2), None
        # (c) close the block (forbidden while any uj is matchable)
        if block and not eligible:
            xs2 = tuple(False for _ in range(self.n))
            yield (frozenset(), t, us, xs2), (labels,)


def theorem53(
    dag: LabeledDag, query: Query, caches: RegionCacheHub | None = None
) -> DisjunctiveResult:
    """Decide entailment, returning a countermodel word when it fails."""
    search = _Search(dag, query, caches)
    if search.trivially_true:
        return DisjunctiveResult(True)
    if search.n == 0:
        # The query is FALSE (all disjuncts inconsistent): a consistent
        # database always has a countermodel — emit any minimal model.
        from repro.core.models import iter_minimal_words

        for word in iter_minimal_words(search.dag):
            return DisjunctiveResult(False, word)
        return DisjunctiveResult(True)

    parents: dict[State, tuple[State | None, Word | None]] = {}
    stack: list[State] = []
    for init in search.initial_states():
        if init not in parents:
            parents[init] = (None, None)
            stack.append(init)
    while stack:
        state = stack.pop()
        if search.is_final(state):
            return DisjunctiveResult(False, _reconstruct(search, parents, state))
        for nxt, emitted in search.successors(state):
            if nxt not in parents:
                parents[nxt] = (state, emitted)
                stack.append(nxt)
    return DisjunctiveResult(True)


def theorem53_entails(dag: LabeledDag, query: Query) -> bool:
    """Boolean form of :func:`theorem53`."""
    return theorem53(dag, query).holds


def _reconstruct(
    search: _Search,
    parents: dict[State, tuple[State | None, Word | None]],
    final: State,
) -> Word:
    emissions: list[frozenset[str]] = []
    state: State | None = final
    while state is not None:
        parent, emitted = parents[state]
        if emitted is not None:
            emissions.extend(reversed(emitted))
        state = parent
    emissions.reverse()
    last_block = search.block(final[0], final[1])
    if last_block:
        emissions.append(search.block_labels(last_block))
    return tuple(emissions)


def iter_countermodels(
    dag: LabeledDag, query: Query, max_states: int = 200_000
) -> Iterator[Word]:
    """Enumerate all minimal models of ``dag`` falsifying ``query``.

    Implements the post-Theorem-5.3 modification: materialize the state
    graph, prune states from which no final state is reachable, then walk
    the pruned graph — every root-to-final path yields a model, with
    polynomial delay between outputs.  Distinct paths can repeat a model
    (the paper notes the redundancy); repeats are filtered.

    Raises ``MemoryError`` if the state graph exceeds ``max_states``.
    """
    search = _Search(dag, query)
    if search.trivially_true:
        return
    if search.n == 0:
        from repro.core.models import iter_minimal_words

        seen_all: set[Word] = set()
        for word in iter_minimal_words(search.dag):
            if word not in seen_all:
                seen_all.add(word)
                yield word
        return

    # Phase 1: materialize the reachable state graph.
    graph: dict[State, list[tuple[State, Word | None]]] = {}
    finals: set[State] = set()
    roots = search.initial_states()
    stack = list(dict.fromkeys(roots))
    explored: set[State] = set(stack)
    while stack:
        state = stack.pop()
        succs = list(search.successors(state))
        graph[state] = succs
        if search.is_final(state):
            finals.add(state)
        if len(graph) > max_states:
            raise MemoryError(
                f"Theorem 5.3 state graph exceeded {max_states} states"
            )
        for nxt, _ in succs:
            if nxt not in explored:
                explored.add(nxt)
                stack.append(nxt)

    # Phase 2: keep only states co-reachable from a final state.
    reverse: dict[State, list[State]] = {s: [] for s in graph}
    for state, succs in graph.items():
        for nxt, _ in succs:
            reverse.setdefault(nxt, []).append(state)
    live: set[State] = set(finals)
    stack = list(finals)
    while stack:
        state = stack.pop()
        for prev in reverse.get(state, ()):
            if prev not in live:
                live.add(prev)
                stack.append(prev)

    # Phase 3: DFS over live states, yielding the model at each final.
    seen: set[Word] = set()

    def walk(state: State, emissions: list[frozenset[str]]) -> Iterator[Word]:
        if state in finals:
            word = tuple(emissions)
            last_block = search.block(state[0], state[1])
            if last_block:
                word = word + (search.block_labels(last_block),)
            if word not in seen:
                seen.add(word)
                yield word
        for nxt, emitted in graph.get(state, ()):
            if nxt not in live:
                continue
            if emitted is not None:
                emissions.extend(emitted)
            yield from walk(nxt, emissions)
            if emitted is not None:
                del emissions[-len(emitted) :]

    for root in dict.fromkeys(roots):
        if root in live:
            yield from walk(root, [])
