"""Model checking: does a finite structure satisfy a positive existential query?

Two checkers:

* :func:`structure_satisfies` — the generic n-ary checker, a backtracking
  assignment search.  This realizes the "expression complexity in NP"
  observation of Section 3 (the certificate is the satisfying assignment).

* :func:`word_satisfies_dag` — the monadic fast path of Corollary 5.1: a
  finite model is a word; a conjunctive monadic query is a labelled dag;
  satisfaction is decided greedily in ``O(|M| * |Phi| * |Pred|)`` by
  computing the earliest feasible point for each query vertex in
  topological order (all constraints are lower bounds, so the earliest
  assignment is feasible iff any is).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.atoms import ProperAtom, Rel
from repro.core.database import LabeledDag
from repro.core.models import Structure
from repro.core.query import ConjunctiveQuery, Query, as_dnf
from repro.core.sorts import Term
from repro.flexiwords.flexiword import Word

Value = int | str


def structure_satisfies(model: Structure, query: Query) -> bool:
    """Does ``model`` satisfy ``query``?

    Query constants are interpreted through the model's constant map and
    must occur there (entailment pipelines eliminate foreign constants
    before reaching this point).
    """
    dnf = as_dnf(query)
    return any(_conjunct_satisfied(model, d) for d in dnf.disjuncts)


def _resolve(model: Structure, term: Term, assignment: dict[Term, Value]) -> Value | None:
    if term.is_var:
        return assignment.get(term)
    interp = model.interpretation
    if term.name not in interp:
        raise KeyError(
            f"constant {term.name!r} is not interpreted by the model; "
            "eliminate query constants first"
        )
    return interp[term.name]


def _order_atom_holds(left: Value, rel: Rel, right: Value) -> bool:
    if rel is Rel.LT:
        return left < right
    if rel is Rel.LE:
        return left <= right
    return left != right


def _conjunct_satisfied(model: Structure, cq: ConjunctiveQuery) -> bool:
    facts = model.fact_dict
    order_atoms = cq.order_atoms
    assignment: dict[Term, Value] = {}

    def order_consistent() -> bool:
        for atom in order_atoms:
            left = _resolve(model, atom.left, assignment)
            right = _resolve(model, atom.right, assignment)
            if left is None or right is None:
                continue
            if not _order_atom_holds(left, atom.rel, right):
                return False
        return True

    proper = list(cq.proper_atoms)

    # Variables that occur in no proper atom must be enumerated explicitly.
    loose_vars = sorted(
        cq.variables()
        - {t for a in proper for t in a.args if t.is_var},
        key=lambda t: t.name,
    )

    def pick_next(remaining: list[ProperAtom]) -> int:
        """Greedy join order: most bound variables, then fewest facts."""
        best, best_key = 0, None
        for i, atom in enumerate(remaining):
            bound = sum(1 for t in atom.args if t.is_const or t in assignment)
            key = (-bound, len(facts.get(atom.pred, frozenset())))
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best

    def try_proper(remaining: list[ProperAtom]) -> bool:
        if not remaining:
            return try_loose(0)
        idx = pick_next(remaining)
        atom = remaining[idx]
        rest = remaining[:idx] + remaining[idx + 1 :]
        candidates = facts.get(atom.pred, frozenset())
        for tup in candidates:
            if len(tup) != len(atom.args):
                continue
            bound: list[Term] = []
            ok = True
            for term, value in zip(atom.args, tup):
                if term.is_var:
                    existing = assignment.get(term)
                    if existing is None:
                        assignment[term] = value
                        bound.append(term)
                    elif existing != value:
                        ok = False
                        break
                else:
                    if _resolve(model, term, assignment) != value:
                        ok = False
                        break
            if ok and order_consistent() and try_proper(rest):
                return True
            for term in bound:
                del assignment[term]
        return False

    def try_loose(idx: int) -> bool:
        if idx == len(loose_vars):
            return order_consistent()
        var = loose_vars[idx]
        domain: Iterable[Value]
        if var.is_order:
            domain = range(model.order_size)
        else:
            domain = sorted(model.objects)
        for value in domain:
            assignment[var] = value
            if order_consistent() and try_loose(idx + 1):
                return True
            del assignment[var]
        return False

    return try_proper(proper)


def word_satisfies_dag(word: Word, qdag: LabeledDag) -> bool:
    """Corollary 5.1 fast path: word model vs conjunctive monadic query dag.

    Computes, in topological order of the (normalized) query dag, the
    earliest point of the word at which each query vertex can sit given its
    label and the positions of its predecessors.  Feasible iff every vertex
    gets a point.
    """
    dag = qdag.normalized()
    graph = dag.graph
    order = _topo(graph)
    earliest: dict[str, int] = {}
    n = len(word)
    for v in order:
        lower = 0
        for u in graph.predecessors(v):
            bump = 1 if graph.edge_label(u, v) is Rel.LT else 0
            lower = max(lower, earliest[u] + bump)
        label = dag.labels[v]
        position = None
        for p in range(lower, n):
            if label <= word[p]:
                position = p
                break
        if position is None:
            return False
        earliest[v] = position
    return True


def word_satisfies(word: Word, query: Query) -> bool:
    """Word model vs disjunctive monadic query (no '!=')."""
    dnf = as_dnf(query)
    return any(word_satisfies_dag(word, d.monadic_dag()) for d in dnf.disjuncts)


def _topo(graph) -> list[str]:
    indeg = {v: len(graph.predecessors(v)) for v in graph.vertices}
    ready = sorted(v for v, d in indeg.items() if d == 0)
    out: list[str] = []
    while ready:
        v = ready.pop()
        out.append(v)
        for w in sorted(graph.successors(v)):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(out) != len(indeg):
        raise ValueError("query dag has a cycle; normalize first")
    return out
