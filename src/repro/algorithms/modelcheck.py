"""Model checking: does a finite structure satisfy a positive existential query?

Two per-model checkers:

* :func:`structure_satisfies` — the generic n-ary checker, a backtracking
  assignment search.  This realizes the "expression complexity in NP"
  observation of Section 3 (the certificate is the satisfying assignment).

* :func:`word_satisfies_dag` — the monadic fast path of Corollary 5.1: a
  finite model is a word; a conjunctive monadic query is a labelled dag;
  satisfaction is decided greedily in ``O(|M| * |Phi| * |Pred|)`` by
  computing the earliest feasible point for each query vertex in
  topological order (all constraints are lower bounds, so the earliest
  assignment is feasible iff any is).

and two *prefix-incremental* satisfaction machines that drive the
region-DAG dynamic programming of :class:`repro.core.modelengine.RegionDP`
(both per-model checkers restart from scratch on every model; the
machines carry their satisfaction state block by block and hash it, so
distinct block-sequence prefixes that agree on the remaining region and
the state share one subtree evaluation):

* :class:`MonadicFrontierMachine` — the incremental form of
  :func:`word_satisfies_dag`: its state is the earliest-feasible-point
  frontier (the set of query-dag vertices already placeable in the word
  prefix) per disjunct.  Placing at the earliest feasible letter is
  complete, so the frontier is the *exact* interface between a prefix and
  its completions.

* :class:`GroundingMachine` — the incremental n-ary checker.  A candidate
  satisfying assignment maps every query order term to a *vertex* of the
  database graph (every point of a minimal model carries at least one
  vertex, so vertex images are complete), which grounds the query into
  finitely many vertex-pair constraint sets.  Each constraint resolves
  exactly when its first endpoint is sorted into a block (later points
  are strictly greater than earlier ones), so the machine state is just
  the bitmask of still-viable groundings — a grounding with every
  constraint resolved satisfies the query in *every* completion, and an
  empty viable set falsifies it in every completion.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Iterable, Mapping, Sequence

from repro.core.atoms import ProperAtom, Rel
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.modelengine import ALL_FAIL, SATISFIED, ModelEngine
from repro.core.models import Structure
from repro.core.query import (
    ConjunctiveQuery,
    DisjunctiveQuery,
    Query,
    as_dnf,
)
from repro.core.sorts import Term
from repro.flexiwords.flexiword import Word

Value = int | str


def structure_satisfies(model: Structure, query: Query) -> bool:
    """Does ``model`` satisfy ``query``?

    Query constants are interpreted through the model's constant map and
    must occur there (entailment pipelines eliminate foreign constants
    before reaching this point).
    """
    dnf = as_dnf(query)
    return any(_conjunct_satisfied(model, d) for d in dnf.disjuncts)


def _resolve(model: Structure, term: Term, assignment: dict[Term, Value]) -> Value | None:
    if term.is_var:
        return assignment.get(term)
    interp = model.interpretation
    if term.name not in interp:
        raise KeyError(
            f"constant {term.name!r} is not interpreted by the model; "
            "eliminate query constants first"
        )
    return interp[term.name]


def _order_atom_holds(left: Value, rel: Rel, right: Value) -> bool:
    if rel is Rel.LT:
        return left < right
    if rel is Rel.LE:
        return left <= right
    return left != right


def _conjunct_satisfied(model: Structure, cq: ConjunctiveQuery) -> bool:
    facts = model.fact_dict
    order_atoms = cq.order_atoms
    assignment: dict[Term, Value] = {}

    def order_consistent() -> bool:
        for atom in order_atoms:
            left = _resolve(model, atom.left, assignment)
            right = _resolve(model, atom.right, assignment)
            if left is None or right is None:
                continue
            if not _order_atom_holds(left, atom.rel, right):
                return False
        return True

    proper = list(cq.proper_atoms)

    # Variables that occur in no proper atom must be enumerated explicitly.
    loose_vars = sorted(
        cq.variables()
        - {t for a in proper for t in a.args if t.is_var},
        key=lambda t: t.name,
    )

    def pick_next(remaining: list[ProperAtom]) -> int:
        """Greedy join order: most bound variables, then fewest facts."""
        best, best_key = 0, None
        for i, atom in enumerate(remaining):
            bound = sum(1 for t in atom.args if t.is_const or t in assignment)
            key = (-bound, len(facts.get(atom.pred, frozenset())))
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best

    def try_proper(remaining: list[ProperAtom]) -> bool:
        if not remaining:
            return try_loose(0)
        idx = pick_next(remaining)
        atom = remaining[idx]
        rest = remaining[:idx] + remaining[idx + 1 :]
        candidates = facts.get(atom.pred, frozenset())
        for tup in candidates:
            if len(tup) != len(atom.args):
                continue
            bound: list[Term] = []
            ok = True
            for term, value in zip(atom.args, tup):
                if term.is_var:
                    existing = assignment.get(term)
                    if existing is None:
                        assignment[term] = value
                        bound.append(term)
                    elif existing != value:
                        ok = False
                        break
                else:
                    if _resolve(model, term, assignment) != value:
                        ok = False
                        break
            if ok and order_consistent() and try_proper(rest):
                return True
            for term in bound:
                del assignment[term]
        return False

    def try_loose(idx: int) -> bool:
        if idx == len(loose_vars):
            return order_consistent()
        var = loose_vars[idx]
        domain: Iterable[Value]
        if var.is_order:
            domain = range(model.order_size)
        else:
            domain = sorted(model.objects)
        for value in domain:
            assignment[var] = value
            if order_consistent() and try_loose(idx + 1):
                return True
            del assignment[var]
        return False

    return try_proper(proper)


def word_satisfies_dag(word: Word, qdag: LabeledDag) -> bool:
    """Corollary 5.1 fast path: word model vs conjunctive monadic query dag.

    Computes, in topological order of the (normalized) query dag, the
    earliest point of the word at which each query vertex can sit given its
    label and the positions of its predecessors.  Feasible iff every vertex
    gets a point.
    """
    dag = qdag.normalized()
    graph = dag.graph
    order = _topo(graph)
    earliest: dict[str, int] = {}
    n = len(word)
    for v in order:
        lower = 0
        for u in graph.predecessors(v):
            bump = 1 if graph.edge_label(u, v) is Rel.LT else 0
            lower = max(lower, earliest[u] + bump)
        label = dag.labels[v]
        position = None
        for p in range(lower, n):
            if label <= word[p]:
                position = p
                break
        if position is None:
            return False
        earliest[v] = position
    return True


def word_satisfies(word: Word, query: Query) -> bool:
    """Word model vs disjunctive monadic query (no '!=')."""
    dnf = as_dnf(query)
    return any(word_satisfies_dag(word, d.monadic_dag()) for d in dnf.disjuncts)


def _topo(graph) -> list[str]:
    indeg = {v: len(graph.predecessors(v)) for v in graph.vertices}
    ready = sorted(v for v, d in indeg.items() if d == 0)
    out: list[str] = []
    while ready:
        v = ready.pop()
        out.append(v)
        for w in sorted(graph.successors(v)):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(out) != len(indeg):
        raise ValueError("query dag has a cycle; normalize first")
    return out


# -- prefix-incremental machines for the region-DAG DP -----------------------


class _QDag:
    """One query dag interned over small bitmasks for the frontier machine."""

    __slots__ = ("full", "pred_all", "pred_lt", "label")

    def __init__(self, qdag: LabeledDag, pbit: dict[str, int]) -> None:
        dag = qdag.normalized()
        qverts = sorted(dag.graph.vertices)
        qindex = {v: i for i, v in enumerate(qverts)}
        k = len(qverts)
        self.full = (1 << k) - 1
        self.pred_all = [0] * k
        self.pred_lt = [0] * k
        self.label = [0] * k
        for v in qverts:
            vi = qindex[v]
            for u in dag.graph.predecessors(v):
                ui = qindex[u]
                self.pred_all[vi] |= 1 << ui
                if dag.graph.edge_label(u, v) is Rel.LT:
                    self.pred_lt[vi] |= 1 << ui
            for p in dag.labels[v]:
                self.label[vi] |= 1 << pbit[p]


class MonadicFrontierMachine:
    """Earliest-feasible-frontier state for disjunctive monadic queries.

    The state is a tuple of per-disjunct bitmasks of query-dag vertices
    already placed in the word prefix.  Advancing by a block computes the
    block's letter (the union of its vertex labels, projected onto the
    query alphabet) and runs the greedy placement fixpoint: a query
    vertex is placed as soon as its label fits the letter, all its
    predecessors are placed, and its '<'-predecessors were placed in a
    strictly earlier block.  Greedy-earliest placement is complete (all
    constraints are lower bounds), so a fully placed disjunct means the
    query holds in every completion (:data:`SATISFIED`).
    """

    __slots__ = ("vletter", "dags", "_letters")

    def __init__(
        self,
        engine: ModelEngine,
        labels: Mapping[str, frozenset[str]],
        qdags: Sequence[LabeledDag],
    ) -> None:
        alphabet = sorted(
            {p for qdag in qdags for lab in qdag.labels.values() for p in lab}
        )
        pbit = {p: i for i, p in enumerate(alphabet)}
        self.vletter = [0] * engine.n
        for v, vid in engine.index.items():
            bits = 0
            for p in labels.get(v, ()):
                i = pbit.get(p)
                if i is not None:
                    bits |= 1 << i
            self.vletter[vid] = bits
        self.dags = [_QDag(qdag, pbit) for qdag in qdags]
        self._letters: dict[int, int] = {}

    def _letter(self, block: int) -> int:
        try:
            return self._letters[block]
        except KeyError:
            pass
        bits = 0
        vletter = self.vletter
        m = block
        while m:
            low = m & -m
            bits |= vletter[low.bit_length() - 1]
            m ^= low
        self._letters[block] = bits
        return bits

    def initial(self, full_region: int):
        if not self.dags:
            return ALL_FAIL  # empty disjunction: no model satisfies it
        if any(d.full == 0 for d in self.dags):
            return SATISFIED  # an empty disjunct holds in every model
        return (0,) * len(self.dags)

    def advance(self, state, region: int, block: int):
        letter = self._letter(block)
        out = []
        for dag, placed in zip(self.dags, state):
            cur = placed
            progress = True
            while progress:
                progress = False
                m = dag.full & ~cur
                while m:
                    low = m & -m
                    qi = low.bit_length() - 1
                    m ^= low
                    if (
                        dag.pred_all[qi] & ~cur == 0
                        and dag.pred_lt[qi] & ~placed == 0
                        and dag.label[qi] & ~letter == 0
                    ):
                        cur |= low
                        progress = True
            if cur == dag.full:
                return SATISFIED
            out.append(cur)
        return tuple(out)


#: Grounded vertex-pair constraint kinds.
_EQ, _LT, _LE, _NE = 0, 1, 2, 3

_FOREIGN = (
    "constant {name!r} is not interpreted by the model; "
    "eliminate query constants first"
)


class GroundingMachine:
    """Viable-grounding state for n-ary queries over minimal models.

    Compilation mirrors :func:`_conjunct_satisfied` once, against the
    database instead of a materialized model: proper atoms are matched
    against the database facts (object terms bind by name, order terms
    anchor to the canonical vertex of the fact's constant), remaining
    order variables are enumerated over the graph's vertices, and the
    query's order atoms plus the anchor coincidences become vertex-pair
    constraints (``=``/``<``/``<=``/``!=`` on block indices).  A
    constraint resolves the moment its first endpoint is sorted into a
    block, so the machine state is the bitmask of groundings with no
    failed constraint; a viable grounding whose constraints are all
    resolved satisfies the query in every completion.
    """

    __slots__ = ("groundings", "pair_lists")

    @staticmethod
    def compile_facts(
        engine: ModelEngine,
        db: IndefiniteDatabase,
        canon: Mapping[str, str],
    ) -> tuple[dict[str, list[tuple]], set[str]]:
        """The query-independent fact table: ``pred -> entries`` (order
        constants as interned canonical vertex ids, objects by name) plus
        the object-constant set.  Build once per sweep and pass to every
        machine over the same database."""
        index = engine.index
        facts: dict[str, list[tuple]] = {}
        for atom in sorted(db.proper_atoms):
            entry = tuple(
                ("v", index[canon.get(t.name, t.name)])
                if t.is_order
                else ("o", t.name)
                for t in atom.args
            )
            facts.setdefault(atom.pred, []).append(entry)
        return facts, db.object_constants

    def __init__(
        self,
        engine: ModelEngine,
        db: IndefiniteDatabase,
        canon: Mapping[str, str],
        dnf: DisjunctiveQuery,
        fact_table: tuple[dict[str, list[tuple]], set[str]] | None = None,
    ) -> None:
        index = engine.index
        if fact_table is None:
            fact_table = self.compile_facts(engine, db, canon)
        facts, objects = fact_table
        seen: dict[frozenset, None] = {}
        for cq in dnf.disjuncts:
            for pairs in self._disjunct_groundings(
                cq, facts, objects, canon, index, engine.n
            ):
                seen.setdefault(pairs, None)
        self.groundings = list(seen)
        self.pair_lists = [
            tuple(
                (1 << u, 1 << v, kind, (1 << u) | (1 << v))
                for u, v, kind in pairs
            )
            for pairs in self.groundings
        ]

    # -- compilation -------------------------------------------------------

    @staticmethod
    def _disjunct_groundings(cq, facts, objects, canon, index, n_verts):
        """Yield each satisfying proper-match × loose-assignment of ``cq``
        as a frozenset of ``(u, v, kind)`` vertex-pair constraints."""
        proper = list(cq.proper_atoms)
        order_atoms = cq.order_atoms
        assignment: dict[Term, tuple] = {}
        eqs: list[tuple[int, int]] = []

        def resolve_order_const(name: str) -> int:
            if name not in canon or canon[name] not in index:
                raise KeyError(_FOREIGN.format(name=name))
            return index[canon[name]]

        def leaves():
            loose = sorted(
                (
                    {
                        t
                        for a in order_atoms
                        for t in (a.left, a.right)
                        if t.is_var and t not in assignment
                    }
                    | {v for v in cq.extra_order_vars if v not in assignment}
                ),
                key=lambda t: t.name,
            )
            for combo in iter_product(range(n_verts), repeat=len(loose)):
                binding = dict(zip(loose, combo))

                def vid_of(term: Term) -> int:
                    if term.is_const:
                        return resolve_order_const(term.name)
                    if term in binding:
                        return binding[term]
                    return assignment[term][1]

                pairs: set[tuple[int, int, int]] = set()
                dead = False
                for a in order_atoms:
                    u, v = vid_of(a.left), vid_of(a.right)
                    if a.rel is Rel.LT:
                        if u == v:
                            dead = True
                            break
                        pairs.add((u, v, _LT))
                    elif a.rel is Rel.LE:
                        if u != v:
                            pairs.add((u, v, _LE))
                    else:
                        if u == v:
                            dead = True
                            break
                        pairs.add((min(u, v), max(u, v), _NE))
                if dead:
                    continue
                for x, y in eqs:
                    if x != y:
                        pairs.add((min(x, y), max(x, y), _EQ))
                yield frozenset(pairs)

        def match(i: int):
            if i == len(proper):
                yield from leaves()
                return
            atom = proper[i]
            for fact in facts.get(atom.pred, ()):
                if len(fact) != len(atom.args):
                    continue
                bound: list[Term] = []
                n_eqs = 0
                ok = True
                for term, val in zip(atom.args, fact):
                    if term.is_var:
                        existing = assignment.get(term)
                        if existing is None:
                            assignment[term] = val
                            bound.append(term)
                        elif term.is_order:
                            eqs.append((existing[1], val[1]))
                            n_eqs += 1
                        elif existing != val:
                            ok = False
                            break
                    elif term.is_order:
                        eqs.append((resolve_order_const(term.name), val[1]))
                        n_eqs += 1
                    else:
                        if term.name not in objects:
                            raise KeyError(_FOREIGN.format(name=term.name))
                        if ("o", term.name) != val:
                            ok = False
                            break
                if ok:
                    yield from match(i + 1)
                for t in bound:
                    del assignment[t]
                if n_eqs:
                    del eqs[-n_eqs:]

        yield from match(0)

    # -- the machine protocol ----------------------------------------------

    def initial(self, full_region: int):
        if not self.groundings:
            return ALL_FAIL
        viable = (1 << len(self.groundings)) - 1
        return self._settle(viable, full_region)

    def advance(self, state, region: int, block: int):
        after = region & ~block
        pair_lists = self.pair_lists
        viable = state
        m = state
        while m:
            low = m & -m
            gi = low.bit_length() - 1
            m ^= low
            for ubit, vbit, kind, both in pair_lists[gi]:
                if both & region != both:
                    continue  # resolved by an earlier block
                if not (both & block):
                    continue  # both endpoints still unsorted
                if ubit & block:
                    if vbit & block:  # same block: equal points
                        ok = kind == _EQ or kind == _LE
                    else:  # u now, v strictly later
                        ok = kind != _EQ
                else:  # v now, u strictly later: only '!=' survives
                    ok = kind == _NE
                if not ok:
                    viable &= ~low
                    break
        if viable == 0:
            return ALL_FAIL
        return self._settle(viable, after)

    def _settle(self, viable: int, region: int):
        """SATISFIED when some viable grounding has no unresolved pair."""
        pair_lists = self.pair_lists
        m = viable
        while m:
            low = m & -m
            gi = low.bit_length() - 1
            m ^= low
            if all(p[3] & region != p[3] for p in pair_lists[gi]):
                return SATISFIED
        return viable
