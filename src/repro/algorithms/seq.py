"""The SEQ algorithm (Figure 6, Lemma 4.2): sequential queries in PTIME.

Decides whether an arbitrary monadic database ``D`` entails a sequential
query ``p`` (a flexi-word), in time ``O(|D| * |p| * |Pred|)``
(Corollary 4.3).  The recursion of Lemma 4.2, written as a loop:

* **Case I** — some minimal vertex ``u`` of ``D`` fails the first letter
  ``a`` of ``p`` (``a`` is not a subset of ``D[u]``): delete ``u`` and
  continue; the countermodel construction places ``D[u]`` alone at the next
  point (since ``a`` does not fit there, any failure of the rest lifts).
* **Case II** — every minimal vertex supports ``a`` and the next separator
  is '<': delete all *minor* vertices (they form the last point at which
  ``a``-matches can happen) and advance ``p``.
* **Case III** — every minimal vertex supports ``a`` and the next separator
  is '<=': just advance ``p``.

``p`` exhausted (or its last letter supported by all minimal vertices)
means entailed; the database running out first yields a countermodel: the
word of blocks emitted along the way, which is itself a minimal model.
"""

from __future__ import annotations

from repro.core.atoms import Rel
from repro.core.database import LabeledDag
from repro.core.errors import NotSequentialError
from repro.core.query import ConjunctiveQuery, Query, as_dnf
from repro.core.regions import RegionCache, RegionCacheHub
from repro.flexiwords.flexiword import FlexiWord, Word


def seq_entails(
    dag: LabeledDag,
    p: FlexiWord,
    regions: RegionCache | None = None,
    caches: RegionCacheHub | None = None,
) -> bool:
    """Does the monadic database entail the sequential query ``p``?"""
    return seq_countermodel(dag, p, regions, caches) is None


def seq_countermodel(
    dag: LabeledDag,
    p: FlexiWord,
    regions: RegionCache | None = None,
    caches: RegionCacheHub | None = None,
) -> Word | None:
    """None when entailed; otherwise a minimal model of ``dag`` falsifying ``p``.

    The returned countermodel is a word: each emitted block becomes one
    point, all separators strict.

    The residual database only ever shrinks, so it is tracked as a region
    of the fixed normalized graph instead of a mutated copy.  ``regions``
    may pass a :class:`RegionCache` over ``dag.normalized().graph`` shared
    across calls (the path decomposition of Lemma 4.1 hits the same
    residual regions for every pair of paths that agree on a prefix); a
    cache over any other graph is ignored.  ``caches`` may pass a
    :class:`RegionCacheHub` (e.g. a session's) used to resolve the shared
    cache when ``regions`` is absent or mismatched.
    """
    work = dag.normalized()
    if regions is None or regions.graph is not work.graph:
        if caches is not None:
            regions = caches.get(work.graph)
        else:
            regions = RegionCache(work.graph)
    labels = work.labels
    region = frozenset(work.graph.vertices)
    emitted: list[frozenset[str]] = []

    pj = 0
    m = len(p.letters)
    while True:
        if pj >= m:
            return None  # query satisfied in every model
        if not region:
            # Database exhausted with query letters pending: the blocks
            # emitted so far form a model in which p fails.
            return tuple(emitted)
        a = p.letters[pj]
        minimal = regions.minimal(region)
        bad = sorted(u for u in minimal if not a <= labels[u])
        if bad:
            # Case I
            u = bad[0]
            emitted.append(labels[u])
            region = region - {u}
            continue
        # every minimal vertex supports a
        if pj == m - 1:
            return None
        if p.rels[pj] is Rel.LT:
            # Case II: emit all minor vertices as one block
            minors = regions.minors(region)
            emitted.append(
                frozenset().union(*(labels[v] for v in minors))
                if minors
                else frozenset()
            )
            region = region - minors
            pj += 1
        else:
            # Case III
            pj += 1


def seq_entails_query(dag: LabeledDag, query: ConjunctiveQuery) -> bool:
    """SEQ on a sequential conjunctive monadic query object."""
    normalized = query.normalized()
    if normalized is None:
        return False  # inconsistent query: never satisfied (dag has models)
    if not normalized.is_sequential():
        raise NotSequentialError("query is not sequential")
    return seq_entails(dag, normalized.to_flexiword())


def seq_entails_disjunctive(dag: LabeledDag, query: Query) -> bool:
    """Entailment of a disjunction of sequential queries.

    Decided by brute force over the disjunction structure only when a
    single disjunct suffices; a disjunction of sequential queries is *not*
    equivalent to checking disjuncts separately (Proposition 5.4 shows the
    disjunctive case is co-NP-hard), so this helper only handles the sound
    direction: if some disjunct is entailed outright the disjunction is.
    It raises otherwise.
    """
    dnf = as_dnf(query)
    if len(dnf.disjuncts) == 1:
        return seq_entails_query(dag, dnf.disjuncts[0])
    if any(seq_entails_query(dag, d) for d in dnf.disjuncts):
        return True
    raise NotSequentialError(
        "disjunctive sequential entailment needs the Theorem 5.3 algorithm"
    )
