"""Complexity classification of entailment instances (Tables 1 and 2).

Given a database and a query, :func:`classify` reports which syntactic
class of the paper the instance falls into and, from Tables 1-2 and the
Section 7 results, the data/expression/combined complexity of its class
plus the algorithm the dispatcher will use.  This is the paper's results
packaged as an engineering tool: before running a query you can ask
whether you are in a PTIME cell or about to pay a co-NP/Pi2p price.

The classification keys (all defined in the paper):

* predicate arity: monadic-over-order vs n-ary (Section 4's object/order
  split is applied first, so unary object predicates don't disqualify);
* conjunctive vs disjunctive (number of DNF disjuncts);
* sequential queries (order variables linearly ordered — width one);
* database width (bounded width is the Table 2 / Theorem 5.3 parameter);
* presence of '!=' (Section 7: the PTIME cases collapse);
* tightness (Proposition 2.2: semantics-independence).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.database import IndefiniteDatabase
from repro.core.query import Query, as_dnf, eliminate_constants
from repro.core.semantics import is_tight


@dataclass(frozen=True)
class ComplexityProfile:
    """The classification of one entailment instance."""

    monadic: bool
    conjunctive: bool
    sequential: bool
    width: int
    n_disjuncts: int
    has_neq: bool
    tight: bool
    data_complexity: str
    expression_complexity: str
    combined_complexity: str
    algorithm: str
    references: tuple[str, ...]

    def summary(self) -> str:
        """A human-readable multi-line report."""
        shape = [
            "monadic" if self.monadic else "n-ary",
            "conjunctive" if self.conjunctive else
            f"disjunctive ({self.n_disjuncts} disjuncts)",
        ]
        if self.sequential:
            shape.append("sequential")
        if self.has_neq:
            shape.append("with '!='")
        shape.append(f"width {self.width}")
        if self.tight:
            shape.append("tight (semantics-independent)")
        lines = [
            f"instance class: {', '.join(shape)}",
            f"data complexity:       {self.data_complexity}",
            f"expression complexity: {self.expression_complexity}",
            f"combined complexity:   {self.combined_complexity}",
            f"algorithm:             {self.algorithm}",
            f"paper references:      {', '.join(self.references)}",
        ]
        return "\n".join(lines)


def classify(db: IndefiniteDatabase, query: Query) -> ComplexityProfile:
    """Classify the instance per the paper's tables.

    The reported complexities are those of the instance's *class* (they
    are completeness results for the class, not certificates about the
    individual instance).
    """
    dnf = as_dnf(query)
    if dnf.constants():
        db, dnf = eliminate_constants(db, dnf)
    dnf = dnf.normalized()
    width = db.width() if db.is_consistent() else 0
    has_neq = db.has_neq or dnf.has_neq
    n_disjuncts = max(1, len(dnf.disjuncts))
    conjunctive = len(dnf.disjuncts) <= 1
    tight = is_tight(dnf)

    monadic = _split_is_monadic(db, dnf)
    sequential = (
        monadic
        and conjunctive
        and bool(dnf.disjuncts)
        and dnf.disjuncts[0].is_sequential()
    )

    if has_neq:
        return ComplexityProfile(
            monadic=monadic, conjunctive=conjunctive, sequential=sequential,
            width=width, n_disjuncts=n_disjuncts, has_neq=True, tight=tight,
            data_complexity="co-NP-hard (even fixed sequential queries)",
            expression_complexity="NP-hard (even a fixed width-1 database)",
            combined_complexity="NP-hard and co-NP-hard",
            algorithm="'!='-expansion + model enumeration",
            references=("Theorem 7.1", "Section 7"),
        )

    if not monadic:
        return ComplexityProfile(
            monadic=False, conjunctive=conjunctive, sequential=False,
            width=width, n_disjuncts=n_disjuncts, has_neq=False, tight=tight,
            data_complexity="co-NP-complete",
            expression_complexity="NP-complete",
            combined_complexity="Pi2p-complete",
            algorithm="minimal-model enumeration (brute force)",
            references=("Table 1", "Theorems 3.2-3.4", "Proposition 3.1"),
        )

    if sequential:
        return ComplexityProfile(
            monadic=True, conjunctive=True, sequential=True,
            width=width, n_disjuncts=1, has_neq=False, tight=tight,
            data_complexity="PTIME (linear)",
            expression_complexity="PTIME",
            combined_complexity="PTIME: O(|D| |p| |Pred|)",
            algorithm="SEQ (Figure 6)",
            references=("Lemma 4.2", "Corollary 4.3", "Table 2"),
        )

    if conjunctive:
        return ComplexityProfile(
            monadic=True, conjunctive=True, sequential=False,
            width=width, n_disjuncts=1, has_neq=False, tight=tight,
            data_complexity="PTIME (linear; constant ~2^|Phi|)",
            expression_complexity="PTIME",
            combined_complexity=(
                f"PTIME for this width: O(|D|^{width + 1} |Phi|)"
                if width <= 4
                else "co-NP-complete in general (PTIME at bounded width)"
            ),
            algorithm=(
                "Theorem 4.7 bounded-width search"
                if width <= 4
                else "path decomposition + SEQ (Lemma 4.1)"
            ),
            references=("Corollary 4.4", "Theorem 4.6", "Theorem 4.7",
                        "Table 2"),
        )

    return ComplexityProfile(
        monadic=True, conjunctive=False, sequential=False,
        width=width, n_disjuncts=n_disjuncts, has_neq=False, tight=tight,
        data_complexity="PTIME (nonconstructive; wqo basis)",
        expression_complexity="PTIME (linear: Corollary 5.1)",
        combined_complexity=(
            "co-NP-complete in general; "
            f"O(|D|^{2 * width} |Pred| prod|Phi_i|) here"
        ),
        algorithm="Theorem 5.3 search / model enumeration",
        references=("Proposition 5.2", "Theorem 5.3", "Theorem 6.5"),
    )


def _split_is_monadic(db: IndefiniteDatabase, dnf) -> bool:
    """Monadic after the Section 4 object/order split."""
    for atom in db.proper_atoms:
        if atom.arity != 1:
            return False
    for d in dnf.disjuncts:
        for atom in d.proper_atoms:
            if atom.arity != 1:
                return False
    return True
