"""Service-shaped query API: sessions, prepared plans, structured results.

Quickstart::

    from repro import Session, ConjunctiveQuery, ProperAtom, ordc, ordvar, lt

    session = Session.from_atoms([
        ProperAtom("Boot", (ordc("u"),)),
        ProperAtom("Crash", (ordc("v"),)),
        lt(ordc("u"), ordc("v")),
    ])
    plan = session.prepare(ConjunctiveQuery.of(
        ProperAtom("Boot", (ordvar("s"),)),
        ProperAtom("Crash", (ordvar("t"),)),
        lt(ordvar("s"), ordvar("t")),
    ))
    assert plan.execute().holds          # compiled once ...
    session.assert_facts(ProperAtom("Ping", (ordc("w"),)))
    assert plan.execute().holds          # ... re-executed against new state

See :mod:`repro.api.session` for the mutation/invalidation contract and
:mod:`repro.api.plan` for the planner/executor split.
"""

from repro.api.plan import ExecutionContext, PreparedQuery
from repro.api.result import Result, render_model
from repro.api.session import MutationEvent, Session, SnapshotDelta

__all__ = [
    "ExecutionContext",
    "MutationEvent",
    "PreparedQuery",
    "Result",
    "Session",
    "SnapshotDelta",
    "render_model",
]
