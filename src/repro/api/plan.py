"""The planner/executor split of the entailment pipeline.

The one-shot :func:`repro.core.entailment.explain` runs the whole paper
pipeline — constant elimination, the Section 2 semantics reduction,
normalization, '!=' expansion, the Section 4 object/order split and
method selection — on every call.  This module splits that pipeline at
the database boundary:

* **planning** (:func:`compile_static`, done once per query at
  :meth:`Session.prepare <repro.api.session.Session.prepare>` time)
  covers every query-side step.  For a constant-free query nothing here
  depends on the database, so the compiled artifacts — the final DNF,
  the per-disjunct split into a definite *object part* and an
  order-sorted dag, the Q-tightening, the Z-padding recipe — are
  computed exactly once and reused for the life of the plan;

* **execution** (:meth:`PreparedQuery.execute`) binds the plan to the
  session's current :class:`ExecutionContext` — the mutable database's
  cached order graph, labelled dag, object-fact index and shared
  :class:`~repro.core.regions.RegionCacheHub` — evaluates the
  db-dependent residue (consistency, the object-part filter, auto
  method dispatch) and runs the chosen decision procedure with the
  session's warm caches threaded through.

The executor mirrors the dispatch of ``explain`` move for move, so a
prepared execution returns the same verdict, method tag and
countermodel as the one-shot path; the differential suite in
``tests/test_api_session.py`` pins that equivalence down, including
across database mutations.

Open queries (``free_vars``) compile to a single plan executed over all
candidate substitutions: the monadic-split case memoizes the order-part
verdict per surviving-disjunct set (the object part is the only piece a
substitution can change), and the n-ary case inverts the loop —
minimal models are enumerated once and each model prunes every
still-candidate tuple — instead of re-enumerating models per tuple as
the one-shot ``certain_answers`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count as iter_count
from itertools import product as iter_product
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.algorithms.bruteforce import (
    entailment_sweep,
    entails_bruteforce,
    entails_bruteforce_monadic,
)
from repro.algorithms.conjunctive import (
    bounded_width_entails_dag,
    paths_entails_dag,
)
from repro.algorithms.disjunctive import theorem53
from repro.api.result import Result
from repro.core.atoms import ProperAtom
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.models import Structure, iter_minimal_models
from repro.core.ordergraph import OrderGraph
from repro.core.query import (
    ConjunctiveQuery,
    DisjunctiveQuery,
    Query,
    as_dnf,
    eliminate_constants,
)
from repro.core.regions import RegionCacheHub
from repro.core.semantics import (
    Semantics,
    is_tight,
    pad_for_integers,
    tighten_for_rationals,
)
from repro.core.sorts import Term, obj, ordvar
from repro.inequality.neq import expand_query_neq

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.api.session import Session

#: Databases at most this wide use the Theorem 5.3 search for disjunctive
#: monadic queries; wider ones fall back to model enumeration (both are
#: exponential in the width, but the state graph is gentler in practice).
WIDTH_CUTOFF = 6

#: Disjunct-count cutoff for the Theorem 5.3 search, whose state graph is
#: exponential in the number of disjuncts (Proposition 5.4).
DISJUNCT_CUTOFF = 4

#: Every method name :meth:`PreparedQuery.execute` understands.
METHODS = (
    "auto",
    "bruteforce",
    "seq",
    "paths",
    "bounded_width",
    "theorem53",
    "basis",
)


def dag_to_query(dag: LabeledDag) -> ConjunctiveQuery:
    """The conjunctive query whose labelled dag is ``dag``."""
    atoms = []
    for v, preds in dag.labels.items():
        for p in sorted(preds):
            atoms.append(ProperAtom(p, (ordvar(v),)))
    term_of = {v: ordvar(v) for v in dag.graph.vertices}
    atoms.extend(dag.graph.to_atoms(term_of))
    return ConjunctiveQuery.from_atoms(
        atoms, {ordvar(v) for v in dag.graph.vertices}
    )


def first_minimal_model(
    db: IndefiniteDatabase, caches: RegionCacheHub | None = None,
    graph: OrderGraph | None = None,
) -> Structure | None:
    """Any minimal model (the witness for globally-failing queries)."""
    for model in iter_minimal_models(db, caches, graph):
        return model
    return None


def object_part_holds(
    object_atoms: Iterable[ProperAtom],
    object_facts: Mapping[str, set[str]],
    domain: list[str],
    pre: Mapping[Term, str] | None = None,
) -> bool:
    """Evaluate a definite object part directly against the facts.

    ``pre`` pins some object variables to constant names (the
    certain-answer substitution) before the remaining variables are
    enumerated over ``domain``.
    """
    object_atoms = list(object_atoms)
    if not object_atoms:
        return True
    pre = pre or {}
    variables = sorted(
        {
            a.args[0]
            for a in object_atoms
            if a.args[0].is_var and a.args[0] not in pre
        },
        key=lambda t: t.name,
    )

    def ok(assignment: dict[Term, str]) -> bool:
        for atom in object_atoms:
            arg = atom.args[0]
            if not arg.is_var:
                value = arg.name
            elif arg in pre:
                value = pre[arg]
            else:
                value = assignment[arg]
            if value not in object_facts.get(atom.pred, set()):
                return False
        return True

    for combo in iter_product(domain, repeat=len(variables)):
        if ok(dict(zip(variables, combo))):
            return True
    # A query with object atoms but an empty object domain cannot hold.
    return not variables and ok({})


def prune_candidates_by_models(
    db: IndefiniteDatabase,
    candidates: Mapping[DisjunctiveQuery, Iterable],
    caches: RegionCacheHub | None = None,
    graph: OrderGraph | None = None,
) -> set:
    """One minimal-model sweep deciding many candidates at once.

    ``candidates`` maps each substituted (ground-in-the-object-sort)
    query to the opaque tokens that stand or fall with it; a token
    survives iff every minimal model of ``db`` satisfies its query.
    This is the shared core of the per-plan
    :meth:`PreparedQuery._model_answers_for` sweep and of
    :func:`repro.engine.batch.execute_many`, which pools the candidates
    of *every* model-path plan in a batch (tokens from different
    requests that substitute to the same query are deduplicated by the
    mapping itself).  All queries are decided by
    :func:`~repro.algorithms.bruteforce.entailment_sweep` against one
    shared set of region/block tables (under
    :func:`~repro.substrate.reference.naive_mode`: one literal
    enumeration of the minimal models, stopping early once every query
    has failed).
    """
    outcome = entailment_sweep(db, candidates.keys(), caches, graph)
    surviving: set = set()
    dead: set = set()
    for q, tokens in candidates.items():
        (surviving if outcome[q].holds else dead).update(tokens)
    # a token listed under several queries survives only if ALL of them
    # hold (the pre-sweep enumeration discarded it on any failing query)
    return surviving - dead


class ExecutionContext:
    """Database-side execution state with granular invalidation.

    One context lives on each :class:`~repro.api.session.Session`
    (plans build private ones for padded or constant-augmented
    databases).  Everything is derived lazily and cached; the three
    ``*_changed`` hooks invalidate only what a mutation can affect:

    * ``facts_changed`` — object-constant facts: drops the object-fact
      index, the object domain and the splittability flag; the order
      graph, its closures, the labelled dag and every region cache stay
      warm.
    * ``labels_changed`` — facts over *existing* order constants: also
      drops the labelled dag and detaches block-label memos from the
      region caches (structural region artifacts survive), and bumps
      ``label_epoch`` so plans discard their order-part memos.
    * ``graph_changed`` — order atoms or new/removed order constants:
      also drops consistency and clears the cache hub (the graph's own
      per-generation memos were already invalidated by the mutation).
    """

    #: process-wide serial source; serials are never reused, unlike ids,
    #: so plan memos keyed on them cannot alias a recycled context.
    _serials = iter_count()

    def __init__(
        self, db: IndefiniteDatabase, graph: OrderGraph | None = None
    ) -> None:
        self.db = db
        self.serial = next(ExecutionContext._serials)
        self._graph = graph
        self._hub: RegionCacheHub | None = None
        self._consistent: bool | None = None
        self._has_neq: bool | None = None
        self._dag: LabeledDag | None = None
        self._splittable: bool | None = None
        self._object_facts: dict[str, set[str]] | None = None
        self._object_domain: list[str] | None = None
        #: bumped whenever cached order-part verdicts become stale
        self.label_epoch = 0

    # -- lazy views --------------------------------------------------------

    @property
    def graph_built(self) -> bool:
        return self._graph is not None

    @property
    def graph(self) -> OrderGraph:
        if self._graph is None:
            self._graph = self.db.graph()
        return self._graph

    @property
    def hub(self) -> RegionCacheHub:
        if self._hub is None:
            self._hub = RegionCacheHub()
        return self._hub

    @property
    def consistent(self) -> bool:
        if self._consistent is None:
            self._consistent = self.graph.is_consistent()
        return self._consistent

    @property
    def has_neq(self) -> bool:
        if self._has_neq is None:
            self._has_neq = self.db.has_neq
        return self._has_neq

    @property
    def splittable(self) -> bool:
        """All proper atoms unary — the Section 4 split applies."""
        if self._splittable is None:
            self._splittable = all(
                a.arity == 1 for a in self.db.proper_atoms
            )
        return self._splittable

    @property
    def dag(self) -> LabeledDag:
        """The labelled dag over the order constants (requires splittable)."""
        if self._dag is None:
            label: dict[str, set[str]] = {}
            for atom in self.db.proper_atoms:
                arg = atom.args[0]
                if arg.is_order:
                    label.setdefault(arg.name, set()).add(atom.pred)
            graph = self.graph
            self._dag = LabeledDag(
                graph,
                {v: frozenset(label.get(v, set())) for v in graph.vertices},
            )
        return self._dag

    @property
    def object_facts(self) -> dict[str, set[str]]:
        """``pred -> object-constant names`` over the unary object facts."""
        if self._object_facts is None:
            facts: dict[str, set[str]] = {}
            for atom in self.db.proper_atoms:
                if atom.arity == 1 and atom.args[0].is_object:
                    facts.setdefault(atom.pred, set()).add(atom.args[0].name)
            self._object_facts = facts
        return self._object_facts

    @property
    def object_domain(self) -> list[str]:
        """The active object domain, sorted."""
        if self._object_domain is None:
            self._object_domain = sorted(self.db.object_constants)
        return self._object_domain

    # -- invalidation ------------------------------------------------------

    def facts_changed(self, db: IndefiniteDatabase) -> None:
        self.db = db
        self._splittable = None
        self._object_facts = None
        self._object_domain = None

    def labels_changed(self, db: IndefiniteDatabase) -> None:
        self.facts_changed(db)
        self._dag = None
        self.label_epoch += 1
        if self._hub is not None:
            self._hub.invalidate_labels()

    def graph_changed(
        self, db: IndefiniteDatabase, keep_graph: bool = True
    ) -> None:
        self.labels_changed(db)
        self._consistent = None
        self._has_neq = None
        if not keep_graph:
            self._graph = None
        if self._hub is not None:
            self._hub.clear()

    # -- snapshots ---------------------------------------------------------

    def fork(self) -> "ExecutionContext":
        """A read-only twin sharing every safely shareable warm artifact.

        The twin references the same frozen database, the same order
        graph *instance* (with its per-generation closure caches), the
        same labelled dag and object-fact index, and a forked region
        cache hub (:meth:`~repro.core.regions.RegionCacheHub.fork`) whose
        entries share structural memos.  None of these are ever mutated
        in place by the executor, only *replaced* on invalidation, so the
        fork stays valid for as long as the shared graph instance is not
        mutated — the session guards that with its ``_graph_shared``
        copy-on-write flag (see :meth:`repro.api.session.Session.snapshot`).
        """
        twin = ExecutionContext(self.db)
        twin._graph = self._graph
        twin._hub = None if self._hub is None else self._hub.fork()
        twin._consistent = self._consistent
        twin._has_neq = self._has_neq
        twin._dag = self._dag
        twin._splittable = self._splittable
        twin._object_facts = self._object_facts
        twin._object_domain = self._object_domain
        twin.label_epoch = self.label_epoch
        return twin


@dataclass(frozen=True)
class DisjunctSplit:
    """One disjunct's Section 4 split, computed at plan time.

    ``order_dag`` is None when the order part normalizes to an
    inconsistency (the disjunct can never survive).
    """

    object_atoms: tuple[ProperAtom, ...]
    order_dag: LabeledDag | None


@dataclass(frozen=True)
class StaticPlan:
    """The database-independent residue of the pipeline.

    Attributes:
        dnf: the final query — semantics-reduced, normalized,
            '!='-expanded.
        pad_dnf: when the Z reduction applies, the pre-normalization DNF
            to feed :func:`~repro.core.semantics.pad_for_integers`
            (None when no padding is needed).
        any_empty: some disjunct is the empty conjunction (trivially
            true).
        splits: per-disjunct object/order splits, or None when some
            disjunct has a non-unary proper atom (no monadic fast path).
    """

    dnf: DisjunctiveQuery
    pad_dnf: DisjunctiveQuery | None
    any_empty: bool
    splits: tuple[DisjunctSplit, ...] | None


def compile_static(dnf: DisjunctiveQuery, semantics: Semantics) -> StaticPlan:
    """Run every query-side pipeline step (mirrors ``explain`` steps 3-5)."""
    pad_dnf: DisjunctiveQuery | None = None
    if semantics is not Semantics.FIN and not is_tight(dnf):
        if semantics is Semantics.Z:
            n = max(
                (len(d.order_variables()) for d in dnf.disjuncts), default=0
            )
            if n:
                pad_dnf = dnf
        else:  # Q: Lemma 2.5 tightening is a pure query transformation
            dnf = tighten_for_rationals(dnf)
    dnf = dnf.normalized()
    if dnf.has_neq:
        dnf = expand_query_neq(dnf).normalized()

    splits: list[DisjunctSplit] = []
    monadic = True
    for d in dnf.disjuncts:
        object_atoms: list[ProperAtom] = []
        order_atoms: list[ProperAtom] = []
        for atom in d.proper_atoms:
            if atom.arity != 1:
                monadic = False
                break
            if atom.args[0].is_object:
                object_atoms.append(atom)
            else:
                order_atoms.append(atom)
        if not monadic:
            break
        order_part = ConjunctiveQuery.from_atoms(
            order_atoms + list(d.order_atoms), d.extra_order_vars
        )
        normalized = order_part.normalized()
        splits.append(
            DisjunctSplit(
                tuple(object_atoms),
                normalized.monadic_dag() if normalized is not None else None,
            )
        )
    return StaticPlan(
        dnf=dnf,
        pad_dnf=pad_dnf,
        any_empty=any(d.is_empty() for d in dnf.disjuncts),
        splits=tuple(splits) if monadic else None,
    )


def decide_order_part(
    ctx: ExecutionContext, surviving: list[LabeledDag], method: str
) -> Result:
    """Run the chosen decision procedure on the order parts.

    Exact mirror of the one-shot dispatch, with the context's cache hub
    threaded through every algorithm.
    """
    dag = ctx.dag
    hub = ctx.hub
    mq = DisjunctiveQuery(tuple(dag_to_query(d) for d in surviving))

    if method == "seq":
        if len(surviving) != 1:
            raise ValueError("method 'seq' needs a single sequential disjunct")
        from repro.algorithms.seq import seq_countermodel

        counter = seq_countermodel(
            dag, surviving[0].to_flexiword(), caches=hub
        )
        return Result(counter is None, "seq", counter)
    if method == "paths":
        if len(surviving) != 1:
            raise ValueError("method 'paths' needs a conjunctive query")
        return Result(paths_entails_dag(dag, surviving[0], hub), "paths")
    if method == "bounded_width":
        if len(surviving) != 1:
            raise ValueError("method 'bounded_width' needs a conjunctive query")
        return Result(
            bounded_width_entails_dag(dag, surviving[0], hub), "bounded_width"
        )
    if method == "theorem53":
        result = theorem53(dag, mq, hub)
        return Result(result.holds, "theorem53", result.countermodel)
    if method == "basis":
        # Section 6: D |= Phi iff D_Phi <= D in the dominance order.
        if len(surviving) != 1:
            raise ValueError("method 'basis' needs a conjunctive query")
        from repro.flexiwords.wqo import dominates

        return Result(dominates(surviving[0], dag), "basis")
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")

    # -- auto dispatch over the monadic fast paths -------------------------
    if len(surviving) == 1:
        qdag = surviving[0]
        if qdag.width() <= 1:
            from repro.algorithms.seq import seq_countermodel

            counter = seq_countermodel(dag, qdag.to_flexiword(), caches=hub)
            return Result(counter is None, "seq", counter)
        if dag.width() <= WIDTH_CUTOFF:
            return Result(
                bounded_width_entails_dag(dag, qdag, hub), "bounded_width"
            )
        return Result(paths_entails_dag(dag, qdag, hub), "paths")
    # The Theorem 5.3 state graph is exponential in the number of disjuncts
    # (Proposition 5.4 shows this is unavoidable); for large disjunctions
    # enumerate minimal models with the Corollary 5.1 checker instead.
    if len(surviving) <= DISJUNCT_CUTOFF and dag.width() <= WIDTH_CUTOFF:
        result = theorem53(dag, mq, hub)
        return Result(result.holds, "theorem53", result.countermodel)
    result = entails_bruteforce_monadic(dag, mq, hub)
    return Result(result.holds, "bruteforce-monadic", result.countermodel)


class PreparedQuery:
    """A query compiled once against a session, executable many times.

    Obtained from :meth:`Session.prepare
    <repro.api.session.Session.prepare>`.  The static (query-side) plan
    is compiled at construction; :meth:`execute` binds it to the
    session's current database generation, reusing every cached
    artifact a mutation since the last execution did not invalidate.
    Plans prepared with ``free_vars`` evaluate the certain answers of
    the open query over all candidate substitutions in one execution.
    """

    def __init__(
        self,
        session: "Session",
        query: Query,
        semantics: Semantics = Semantics.FIN,
        method: str = "auto",
        free_vars: tuple[Term, ...] | None = None,
    ) -> None:
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}")
        if free_vars is not None and any(v.is_order for v in free_vars):
            raise ValueError("free variables must be object-sorted")
        self.session = session
        self.query = query
        self.semantics = semantics
        self.method = method
        #: None = closed query; a tuple (possibly empty) = open query
        self.free_vars = None if free_vars is None else tuple(free_vars)
        self._dnf0 = as_dnf(query)
        self._has_constants = bool(self._dnf0.constants())
        self._static = (
            None
            if self._has_constants
            else compile_static(self._dnf0, semantics)
        )
        self._bound_key: tuple[int, int, int] | None = None
        self._bound: tuple[StaticPlan, ExecutionContext] | None = None
        self._result_key: tuple[int, int, int] | None = None
        self._result: Result | None = None
        self._memo_key: tuple[int, int] | None = None
        self._order_memo: dict[tuple[int, ...], Result] = {}
        self._validated_key: tuple[int, int, int] | None = None
        # Per-tuple sub-plans of the constants fallback path, kept here
        # (bounded by the candidate count) so they neither thrash nor
        # evict the session's shared plan cache.
        self._fallback_plans: dict[Query, "PreparedQuery"] = {}

    # -- binding -----------------------------------------------------------

    def _bind(self) -> tuple[StaticPlan, ExecutionContext]:
        """The plan bound to the session's current database generation."""
        key = self.session._gens()
        if self._bound_key == key and self._bound is not None:
            return self._bound
        base = self.session.context()
        if self._has_constants:
            # Constant elimination augments the database, so the whole
            # static residue is regenerated for this generation.
            db2, dnf = eliminate_constants(base.db, self._dnf0)
            static = compile_static(dnf, self.semantics)
        else:
            db2, static = None, self._static
        assert static is not None
        if static.pad_dnf is not None:
            padded = pad_for_integers(
                db2 if db2 is not None else base.db, static.pad_dnf
            )
            ctx = ExecutionContext(padded)
        elif db2 is not None:
            ctx = ExecutionContext(db2)
        else:
            ctx = base
        self._bound_key, self._bound = key, (static, ctx)
        return self._bound

    def _memo(self, ctx: ExecutionContext) -> dict[tuple[int, ...], Result]:
        """Order-part verdicts, keyed by surviving-disjunct index tuple.

        Valid as long as the context's order graph and labels are
        unchanged; the epoch check drops it otherwise.
        """
        key = (ctx.serial, ctx.label_epoch)
        if self._memo_key != key:
            self._memo_key = key
            self._order_memo = {}
        return self._order_memo

    def _surviving(self, static: StaticPlan, ctx: ExecutionContext,
                   pre: Mapping[Term, str] | None = None) -> tuple[int, ...]:
        assert static.splits is not None
        return tuple(
            i
            for i, sp in enumerate(static.splits)
            if sp.order_dag is not None
            and object_part_holds(
                sp.object_atoms, ctx.object_facts, ctx.object_domain, pre
            )
        )

    def _order_result(
        self, static: StaticPlan, ctx: ExecutionContext, indices: tuple[int, ...]
    ) -> Result:
        memo = self._memo(ctx)
        cached = memo.get(indices)
        if cached is None:
            assert static.splits is not None
            surviving = [static.splits[i].order_dag for i in indices]
            cached = memo[indices] = decide_order_part(
                ctx, surviving, self.method
            )
        return cached

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Raise exactly the dispatch errors :meth:`execute` would — now.

        Mirrors the cheap, query-side part of the dispatch: the
        ``ValueError`` family for a specialized method forced onto an
        inapplicable input (non-monadic / ``'!='`` inputs; single-
        disjunct methods facing several surviving disjuncts; ``seq``
        facing a non-sequential one).  No decision procedure runs —
        ``auto``/``bruteforce``/``theorem53`` plans validate in O(1),
        and the single-disjunct methods pay only the object-part
        filtering :meth:`execute` performs anyway.

        The point is *raise-point parity* for the pipelined stream
        engine: calling this at submit time surfaces an invalid read
        where the sequential loop would have raised it, instead of an
        epoch later at collect.  Never raises when :meth:`execute`
        would succeed.
        """
        key = self.session._gens()
        if self._validated_key == key:
            return
        if self.session.context().consistent:
            if self.free_vars is None:
                self._validate_closed()
            else:
                self._validate_answers()
        self._validated_key = key

    def _validate_single_disjunct(
        self, static: StaticPlan, indices: tuple[int, ...]
    ) -> None:
        """The per-surviving-set checks of the single-disjunct methods."""
        if self.method == "seq":
            if len(indices) != 1:
                raise ValueError(
                    "method 'seq' needs a single sequential disjunct"
                )
            # mirrors seq_countermodel's flexi-word conversion, which
            # raises on a non-sequential (width > 1) disjunct
            static.splits[indices[0]].order_dag.to_flexiword()
        elif len(indices) != 1:
            raise ValueError(
                f"method {self.method!r} needs a conjunctive query"
            )

    def _validate_closed(self) -> None:
        static, ctx = self._bind()
        if not static.dnf.disjuncts or static.any_empty:
            return
        if self._closed_bruteforce_path(static, ctx):
            return
        if not self._monadic_applicable(static, ctx):
            raise ValueError(
                f"method {self.method!r} requires monadic, '!='-free inputs"
            )
        if self.method in ("auto", "theorem53"):
            return
        indices = self._surviving(static, ctx)
        if not indices:
            return
        if any(
            not static.splits[i].order_dag.graph.vertices for i in indices
        ):
            return
        self._validate_single_disjunct(static, indices)

    def _validate_answers(self) -> None:
        domain = self.session.context().object_domain
        if self._has_constants:
            # the fallback path executes one closed sub-plan per tuple,
            # in combo order; validating them in the same order raises
            # exactly where the first raising tuple would
            for combo in self._combos(domain):
                mapping = {
                    v: obj(c) for v, c in zip(self.free_vars, combo)
                }
                q_c = self._dnf0.substitute(mapping)
                plan = self._fallback_plans.get(q_c)
                if plan is None:
                    plan = self._fallback_plans[q_c] = PreparedQuery(
                        self.session, q_c, self.semantics, self.method
                    )
                plan.validate()
            return
        static, ctx = self._bind()
        if not static.dnf.disjuncts or static.any_empty:
            return
        if self._splits_apply(static, ctx):
            if self.method in ("auto", "bruteforce", "theorem53"):
                return
            for combo in self._combos(domain):
                pre = dict(zip(self.free_vars, combo))
                indices = self._surviving(static, ctx, pre)
                if not indices:
                    continue
                if any(
                    not static.splits[i].order_dag.graph.vertices
                    for i in indices
                ):
                    continue
                self._validate_single_disjunct(static, indices)
            return
        if self.method not in ("auto", "bruteforce"):
            raise ValueError(
                f"method {self.method!r} requires monadic, '!='-free inputs"
            )

    # -- closed-query execution --------------------------------------------

    def execute(self) -> Result:
        """Evaluate against the session's *current* database."""
        key = self.session._gens()
        if self._result_key == key and self._result is not None:
            return self._result
        result = (
            self._run_closed()
            if self.free_vars is None
            else self._run_answers()
        )
        self._result_key, self._result = key, result
        return result

    @staticmethod
    def _monadic_applicable(static: StaticPlan, ctx: ExecutionContext) -> bool:
        """Can this execution take a monadic fast path at all?  (All
        disjuncts split, no '!=' anywhere, all db facts unary.)"""
        return (
            static.splits is not None
            and not ctx.has_neq
            and ctx.splittable
        )

    def _closed_bruteforce_path(
        self, static: StaticPlan, ctx: ExecutionContext
    ) -> bool:
        """Would :meth:`_run_closed` decide this (live, non-trivial) plan
        by a minimal-model sweep?

        True when brute force is requested explicitly, or when auto
        dispatch cannot take a monadic fast path.  The single source of
        truth for the closed model-path dispatch — used by
        :meth:`_run_closed` itself and by the batch engine's pooling
        predicate (:func:`repro.engine.batch._closed_sweepable`), so the
        two can never disagree.
        """
        if self.method == "bruteforce":
            return True
        if self.method != "auto":
            return False
        return not self._monadic_applicable(static, ctx)

    def _run_closed(self) -> Result:
        base = self.session.context()
        if not base.consistent:
            return Result(True, "vacuous")
        static, ctx = self._bind()
        dnf = static.dnf
        if not dnf.disjuncts:
            return Result(
                False,
                "unsatisfiable-query",
                first_minimal_model(ctx.db, ctx.hub, ctx.graph),
            )
        if static.any_empty:
            return Result(True, "trivial")
        method = self.method
        if self._closed_bruteforce_path(static, ctx):
            r = entails_bruteforce(ctx.db, dnf, ctx.hub, ctx.graph)
            return Result(r.holds, "bruteforce", r.countermodel)
        if not self._monadic_applicable(static, ctx):
            # a specialized monadic method forced onto an inapplicable input
            raise ValueError(
                f"method {method!r} requires monadic, '!='-free inputs"
            )
        indices = self._surviving(static, ctx)
        if not indices:
            # Every disjunct's definite object part already fails.
            return Result(
                False, "object-part", first_minimal_model(ctx.db, ctx.hub, ctx.graph)
            )
        if any(
            not static.splits[i].order_dag.graph.vertices for i in indices
        ):
            return Result(True, "object-part")
        return self._order_result(static, ctx, indices)

    # -- open-query (certain answers) execution ----------------------------

    def _combos(self, domain: list[str]):
        return iter_product(domain, repeat=len(self.free_vars))

    def _run_answers(self) -> Result:
        base = self.session.context()
        domain = base.object_domain
        if not base.consistent:
            answers = frozenset(self._combos(domain))
            return Result(bool(answers), "vacuous", answers=answers)
        if self._has_constants:
            answers = self._fallback_answers_for(self._combos(domain))
            return Result(bool(answers), "prepared-fallback", answers=answers)
        static, ctx = self._bind()
        if not static.dnf.disjuncts:
            return Result(False, "unsatisfiable-query", answers=frozenset())
        if static.any_empty:
            answers = frozenset(self._combos(domain))
            return Result(bool(answers), "trivial", answers=answers)
        if self._splits_apply(static, ctx):
            answers = self._split_answers_for(
                static, ctx, self._combos(domain)
            )
            return Result(bool(answers), "prepared-split", answers=answers)
        if self.method not in ("auto", "bruteforce"):
            raise ValueError(
                f"method {self.method!r} requires monadic, '!='-free inputs"
            )
        answers = self._model_answers_for(static, ctx, self._combos(domain))
        return Result(bool(answers), "prepared-models", answers=answers)

    def _splits_apply(
        self, static: StaticPlan, ctx: ExecutionContext
    ) -> bool:
        """Can this execution take the Section 4 object/order split?"""
        return self.method != "bruteforce" and self._monadic_applicable(
            static, ctx
        )

    def answers_for(
        self, combos: Iterable[tuple[str, ...]]
    ) -> frozenset[tuple[str, ...]]:
        """Certain-answer status of just the given candidate tuples.

        The delta hook for incrementally maintained views
        (:class:`repro.engine.views.MaterializedView`): evaluates exactly
        the strategy the full :meth:`execute` would run — split, model
        sweep or constants fallback — restricted to ``combos``, against
        the session's *current* database.  Returns the subset of
        ``combos`` that are certain answers.
        """
        if self.free_vars is None:
            raise ValueError("answers_for requires an open (free_vars) plan")
        combos = list(combos)
        base = self.session.context()
        if not base.consistent:
            return frozenset(combos)
        if self._has_constants:
            return self._fallback_answers_for(combos)
        static, ctx = self._bind()
        if not static.dnf.disjuncts:
            return frozenset()
        if static.any_empty:
            return frozenset(combos)
        if self._splits_apply(static, ctx):
            return self._split_answers_for(static, ctx, combos)
        if self.method not in ("auto", "bruteforce"):
            raise ValueError(
                f"method {self.method!r} requires monadic, '!='-free inputs"
            )
        return self._model_answers_for(static, ctx, combos)

    def _split_answers_for(
        self,
        static: StaticPlan,
        ctx: ExecutionContext,
        combos: Iterable[tuple[str, ...]],
    ) -> frozenset[tuple[str, ...]]:
        """Monadic split: memoize order-part verdicts per surviving set.

        A substitution only reaches the object parts, so candidate
        tuples that leave the same disjuncts standing share one
        order-part decision.
        """
        answers = set()
        for combo in combos:
            pre = dict(zip(self.free_vars, combo))
            indices = self._surviving(static, ctx, pre)
            if not indices:
                continue
            if any(
                not static.splits[i].order_dag.graph.vertices
                for i in indices
            ):
                answers.add(combo)
                continue
            if self._order_result(static, ctx, indices).holds:
                answers.add(combo)
        return frozenset(answers)

    def candidate_queries(
        self, static: StaticPlan, combos: Iterable[tuple[str, ...]]
    ) -> dict[DisjunctiveQuery, list[tuple[str, ...]]]:
        """Group candidate tuples by their substituted query.

        Tuples whose substitutions coincide are decided together; the
        batch engine merges these maps across plans before a combined
        :func:`prune_candidates_by_models` sweep.
        """
        groups: dict[DisjunctiveQuery, list[tuple[str, ...]]] = {}
        for combo in combos:
            mapping = {v: obj(c) for v, c in zip(self.free_vars, combo)}
            groups.setdefault(static.dnf.substitute(mapping), []).append(combo)
        return groups

    def _model_answers_for(
        self,
        static: StaticPlan,
        ctx: ExecutionContext,
        combos: Iterable[tuple[str, ...]],
    ) -> frozenset[tuple[str, ...]]:
        """General case: one model enumeration prunes all candidates.

        A tuple is a certain answer iff every minimal model satisfies
        its substituted query; enumerating the models once (instead of
        once per tuple) and checking each still-candidate substitution
        against each model decides all tuples in a single sweep.
        """
        return frozenset(
            prune_candidates_by_models(
                ctx.db,
                self.candidate_queries(static, combos),
                ctx.hub,
                ctx.graph,
            )
        )

    def _fallback_answers_for(
        self, combos: Iterable[tuple[str, ...]]
    ) -> frozenset[tuple[str, ...]]:
        """Open queries with constants: one private sub-plan per tuple."""
        answers = set()
        for combo in combos:
            mapping = {v: obj(c) for v, c in zip(self.free_vars, combo)}
            q_c = self._dnf0.substitute(mapping)
            plan = self._fallback_plans.get(q_c)
            if plan is None:
                plan = self._fallback_plans[q_c] = PreparedQuery(
                    self.session, q_c, self.semantics, self.method
                )
            if plan.execute().holds:
                answers.add(combo)
        return frozenset(answers)
