"""Structured query results and uniform countermodel rendering.

A :class:`Result` is what :meth:`repro.api.plan.PreparedQuery.execute`
returns: the verdict, the algorithm that produced it, an optional
countermodel and — for open queries prepared with free variables — the
set of certain answers.  It subsumes the older
:class:`repro.core.entailment.EntailmentReport` (which the one-shot
wrappers still return for compatibility) and owns the one rendering
routine used everywhere: :func:`render_model` prints both kinds of
countermodel the algorithms produce — :class:`~repro.core.models.Structure`
instances from the brute-force procedures and bare word tuples from the
monadic fast paths — through a single code path, so the CLI, the examples
and library callers all show the same text for the same model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import Structure
from repro.flexiwords.flexiword import Word


def render_model(model: Structure | Word | None) -> str:
    """One uniform rendering for every countermodel shape.

    Words (tuples of predicate-set letters) print as
    ``{P} < {P,Q} < {}``; :class:`Structure` countermodels print through
    their own ``__str__``; ``None`` states that no witness was produced.
    """
    if model is None:
        return "(no countermodel produced)"
    if isinstance(model, tuple):  # a monadic word model
        rendered = " < ".join(
            "{" + ",".join(sorted(letter)) + "}" for letter in model
        )
        return rendered or "(empty model)"
    return str(model)


@dataclass(frozen=True)
class Result:
    """Outcome of executing a prepared query.

    Attributes:
        holds: the entailment verdict (for open queries: True when at
            least one certain answer exists).
        method: name of the decision procedure that settled the query
            (same vocabulary as :func:`repro.core.entailment.explain`).
        countermodel: a falsifying minimal model when the query does not
            hold and the procedure produces witnesses; None otherwise.
        answers: for open queries (prepared with ``free_vars``), the
            frozen set of certain-answer tuples; None for closed queries.
    """

    holds: bool
    method: str
    countermodel: Structure | Word | None = None
    answers: frozenset[tuple[str, ...]] | None = None

    def __bool__(self) -> bool:
        return self.holds

    def render_countermodel(self) -> str:
        """The countermodel as text (see :func:`render_model`)."""
        return render_model(self.countermodel)

    def __str__(self) -> str:
        if self.answers is not None:
            shown = ", ".join(str(t) for t in sorted(self.answers))
            return f"answers[{self.method}]: {{{shown}}}"
        verdict = "entailed" if self.holds else "not entailed"
        text = f"{verdict} [{self.method}]"
        if not self.holds and self.countermodel is not None:
            text += f"; countermodel: {self.render_countermodel()}"
        return text
