"""Sessions: a mutable database plus warm caches across queries.

The paper's decision procedures are stateless functions; the PR 1 cache
substrate (generation-counter closures on
:class:`~repro.core.ordergraph.OrderGraph`, the shared
:class:`~repro.core.regions.RegionCache`) is keyed on graph *instances*,
so the one-shot API — which rebuilds the order graph from the database
on every call — throws the warm state away between queries.  A
:class:`Session` is the service-shaped entry point that keeps it:

* it owns a mutable :class:`~repro.core.database.IndefiniteDatabase`
  with incremental :meth:`~Session.assert_facts`,
  :meth:`~Session.retract_facts`, :meth:`~Session.assert_order` and
  :meth:`~Session.retract_order`;
* it holds one long-lived order-graph instance, labelled dag,
  object-fact index and :class:`~repro.core.regions.RegionCacheHub`,
  invalidating only what each mutation can affect (see
  :class:`~repro.api.plan.ExecutionContext` for the exact rules);
* :meth:`~Session.prepare` compiles a query once into a
  :class:`~repro.api.plan.PreparedQuery` whose repeated
  :meth:`~repro.api.plan.PreparedQuery.execute` calls reuse both the
  plan and the session caches.

Invalidation contract (the granular generation counters):

* ``assert_order`` / order constants appearing or disappearing →
  *graph* generation: closures, region caches and plans' order-part
  memos all reset (the graph instance itself is mutated in place on
  asserts, rebuilt lazily on retracts);
* facts over existing order constants → *label* generation: the
  labelled dag and order-part memos reset, but the graph's closures
  and the structural region caches stay warm;
* facts over object constants only → *object* generation: just the
  object-fact index and object domain reset — prepared order-part
  verdicts survive, so certain-answer re-evaluation after an
  object-fact edit is nearly free.

Concurrency discipline: a session is **single-writer, single-thread**.
Nothing here locks — the caches, generation counters and observer list
all assume one caller at a time, and the engine layers preserve that
by construction rather than by locking: worker pools only ever touch
read-only :meth:`~Session.snapshot` forks, and the serving tier
(:mod:`repro.server`) funnels every operation from every client
connection through one queue into one engine loop, the only code that
touches its session.  Share a session across threads and the
invalidation contract above is void.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, NamedTuple

from repro.api.plan import ExecutionContext, PreparedQuery
from repro.api.result import Result
from repro.core.atoms import OrderAtom, ProperAtom
from repro.core.database import IndefiniteDatabase
from repro.core.errors import SortError
from repro.core.query import Query
from repro.core.semantics import Semantics
from repro.core.sorts import Term

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.snapshot import SessionSnapshot

#: Most-recently-prepared plans kept per session.
_PLAN_CACHE_LIMIT = 128


class SnapshotDelta(NamedTuple):
    """The incremental state change between two generations of a session.

    Produced by :meth:`Session.snapshot_delta` and consumed by
    :meth:`Session.apply_snapshot_delta`: the atoms that appeared and
    disappeared, the target generation counters, and which of the three
    counters bumped — exactly the information a process holding a copy
    of the older state needs to advance to the newer one while
    invalidating only what the bumped generations require.  This is the
    resync payload the persistent daemon pool
    (:class:`repro.engine.pool.DaemonPool`) ships to its workers instead
    of re-forking them.

    Atom tuples are sorted, so a delta is a deterministic function of
    the two states.
    """

    added_proper: tuple[ProperAtom, ...]
    removed_proper: tuple[ProperAtom, ...]
    added_order: tuple[OrderAtom, ...]
    removed_order: tuple[OrderAtom, ...]
    #: the target ``(graph, label, object)`` generation triple
    gens: tuple[int, int, int]
    graph: bool
    label: bool
    object: bool


class MutationEvent(NamedTuple):
    """What a single mutation invalidated, as delivered to observers.

    Attributes:
        graph: the graph generation was bumped (order atoms or order
            constants appeared/disappeared) — everything graph-derived
            is stale.
        label: the label generation was bumped (facts over existing
            order constants changed) — order-part memos are stale.
        object: the object generation was bumped (facts over object
            constants changed).
        objects: the object-constant names mentioned by the mutated
            facts — the delta an incrementally maintained view needs.
        added: the atoms this mutation actually added (effective
            mutations only — already-present atoms are not repeated).
        removed: the atoms this mutation actually removed.

    ``added``/``removed`` make the observer channel a *trigger layer*
    carrying the full change, so a durability log
    (:class:`repro.engine.wal.WriteAheadLog`) can persist each mutation
    as a :class:`SnapshotDelta`-shaped record without shadowing the
    session's atom sets.
    """

    graph: bool
    label: bool
    object: bool
    objects: frozenset[str]
    added: tuple = ()
    removed: tuple = ()


class Session:
    """A stateful query service over one evolving indefinite database."""

    def __init__(
        self,
        db: IndefiniteDatabase | None = None,
        plan_cache_limit: int = _PLAN_CACHE_LIMIT,
    ) -> None:
        db = IndefiniteDatabase.empty() if db is None else db
        self._proper: set[ProperAtom] = set(db.proper_atoms)
        self._order: set[OrderAtom] = set(db.order_atoms)
        self._db: IndefiniteDatabase | None = db
        self._order_names: set[str] | None = None
        self._object_names: set[str] | None = None
        self._graph_gen = 0
        self._label_gen = 0
        self._object_gen = 0
        self._ctx: ExecutionContext | None = None
        #: LRU over prepared plans: insertion order == recency order.
        self._plans: dict[tuple, PreparedQuery] = {}
        self._plan_limit = plan_cache_limit
        #: mutation observers (materialized views and other engine state)
        self._observers: list[Callable[[MutationEvent], None]] = []
        #: True while a snapshot shares this session's graph instance —
        #: the next graph mutation must rebuild instead of edit in place.
        self._graph_shared = False

    @classmethod
    def from_atoms(
        cls, atoms: Iterable[ProperAtom | OrderAtom]
    ) -> "Session":
        """Start a session from a flat iterable of ground atoms."""
        return cls(IndefiniteDatabase.from_atoms(atoms))

    @classmethod
    def recover(
        cls, path, plan_cache_limit: int = _PLAN_CACHE_LIMIT
    ) -> "Session":
        """Rebuild a session from the write-ahead log at ``path``.

        Loads the last compaction snapshot (if any) and replays every
        intact log record on top; a torn or corrupt tail record —
        detected by the length prefix and CRC — is truncated away rather
        than poisoning recovery.  See :mod:`repro.engine.wal`.
        """
        from repro.engine.wal import recover as _recover

        return _recover(path, plan_cache_limit=plan_cache_limit)

    # -- state -------------------------------------------------------------

    @property
    def db(self) -> IndefiniteDatabase:
        """The current database as an immutable snapshot."""
        if self._db is None:
            self._db = IndefiniteDatabase(
                frozenset(self._proper), frozenset(self._order)
            )
        return self._db

    def size(self) -> int:
        """Total number of atoms currently asserted."""
        return len(self._proper) + len(self._order)

    def _gens(self) -> tuple[int, int, int]:
        return (self._graph_gen, self._label_gen, self._object_gen)

    def _known_order_names(self) -> set[str]:
        if self._order_names is None:
            self._order_names = self.db.order_constants
        return self._order_names

    def _known_object_names(self) -> set[str]:
        if self._object_names is None:
            self._object_names = self.db.object_constants
        return self._object_names

    def _check_sort_clash(
        self,
        proper_atoms: Iterable[ProperAtom],
        order_atoms: Iterable[OrderAtom],
    ) -> None:
        """Reject names that would end up at both sorts — before mutating.

        The frozen :class:`~repro.core.database.IndefiniteDatabase`
        performs the same check, but only when it is (lazily) rebuilt —
        by which point the session's own sets would already have
        absorbed the offending atoms and every later ``db`` access would
        keep raising.  Validating up front keeps the mutators atomic on
        failure: a raising assert leaves the session exactly as it was
        (the stream engine's coalesced-write fallback relies on this).
        """
        new_order: set[str] = set()
        new_object: set[str] = set()
        for atom in proper_atoms:
            for t in atom.args:
                (new_order if t.is_order else new_object).add(t.name)
        for atom in order_atoms:
            new_order.add(atom.left.name)
            new_order.add(atom.right.name)
        if not new_order and not new_object:
            return
        clash = new_order & new_object
        if new_order:
            clash |= new_order & self._known_object_names()
        if new_object:
            clash |= new_object & self._known_order_names()
        if clash:
            raise SortError(
                "constant name(s) used at both sorts: "
                + ", ".join(sorted(clash))
            )

    def context(self) -> ExecutionContext:
        """The session's shared database-side execution state."""
        if self._ctx is None:
            self._ctx = ExecutionContext(self.db)
        return self._ctx

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> "SessionSnapshot":
        """A cheap read-only copy at the current generation.

        The snapshot shares this session's frozen database, its order
        graph *instance* (with whatever closures are already warm) and a
        forked region-cache hub, so queries against the snapshot start
        from the same warm state as queries against the live session —
        see :class:`repro.engine.snapshot.SessionSnapshot`.  The live
        session keeps mutating freely: the first mutation that would
        edit the shared graph in place rebuilds it instead (copy-on-
        write), so snapshots are immutable forever at zero ongoing cost.
        """
        from repro.engine.snapshot import SessionSnapshot

        snap = SessionSnapshot(self)
        self._graph_shared = True
        return snap

    def snapshot_delta(self, since: "Session") -> SnapshotDelta | None:
        """What changed since ``since`` (an older snapshot of *this*
        session): added/removed atoms plus which generation counters
        bumped, or ``None`` when nothing changed.

        The incremental-resync hook of the persistent daemon pool
        (:class:`repro.engine.pool.DaemonPool`): instead of re-forking
        its workers per batch, the pool ships them this delta and each
        worker advances its private copy of the older state with
        :meth:`apply_snapshot_delta` — arriving at exactly this
        session's state while keeping every cache the bumped
        generations do not invalidate warm.
        """
        old = since._gens()
        new = self._gens()
        if old == new:
            return None
        return SnapshotDelta(
            added_proper=tuple(sorted(self._proper - since._proper)),
            removed_proper=tuple(sorted(since._proper - self._proper)),
            added_order=tuple(sorted(self._order - since._order)),
            removed_order=tuple(sorted(since._order - self._order)),
            gens=new,
            graph=old[0] != new[0],
            label=old[1] != new[1],
            object=old[2] != new[2],
        )

    def apply_snapshot_delta(self, delta: SnapshotDelta) -> "Session":
        """Advance a *process-private* copy of an older state by ``delta``.

        Mirrors the granular invalidation a live replay of the
        underlying mutations would have done, in one round: object-only
        deltas keep the order graph, its closures, the labelled dag and
        every order-part memo warm; label deltas keep graph closures and
        structural region caches; graph deltas rebuild lazily.  The
        generation counters jump to the delta's target, so prepared-plan
        memos keyed on them invalidate exactly as on the live session.

        Intended for daemon-pool workers, whose session (even when it is
        a fork-inherited :class:`~repro.engine.snapshot.SessionSnapshot`
        by type) is private to the worker process — never call this on a
        snapshot other code can still observe.
        """
        self._proper.update(delta.added_proper)
        self._proper.difference_update(delta.removed_proper)
        self._order.update(delta.added_order)
        self._order.difference_update(delta.removed_order)
        self._db = None
        self._order_names = None
        self._object_names = None
        (self._graph_gen, self._label_gen, self._object_gen) = delta.gens
        if self._ctx is not None:
            if delta.graph:
                self._ctx.graph_changed(self.db, keep_graph=False)
            elif delta.label:
                self._ctx.labels_changed(self.db)
            elif delta.object:
                self._ctx.facts_changed(self.db)
        if self._observers:
            touched = {
                t.name
                for atoms in (delta.added_proper, delta.removed_proper)
                for a in atoms
                for t in a.args
                if t.is_object
            }
            self._notify(
                delta.graph, delta.label, delta.object, touched,
                added=delta.added_proper + delta.added_order,
                removed=delta.removed_proper + delta.removed_order,
            )
        return self

    # -- observers ---------------------------------------------------------

    def add_observer(
        self, callback: Callable[[MutationEvent], None]
    ) -> None:
        """Register ``callback`` to run after every effective mutation."""
        self._observers.append(callback)

    def remove_observer(
        self, callback: Callable[[MutationEvent], None]
    ) -> None:
        """Deregister a mutation observer (missing ones are ignored)."""
        try:
            self._observers.remove(callback)
        except ValueError:
            pass

    def _notify(
        self,
        graph: bool = False,
        label: bool = False,
        object_: bool = False,
        objects: Iterable[str] = (),
        added: tuple = (),
        removed: tuple = (),
    ) -> None:
        if not self._observers:
            return
        event = MutationEvent(
            graph, label, object_, frozenset(objects), added, removed
        )
        for callback in list(self._observers):
            callback(event)

    # -- mutation ----------------------------------------------------------

    def assert_facts(self, *atoms: ProperAtom | OrderAtom) -> "Session":
        """Add ground facts.  Order atoms route to :meth:`assert_order`.

        Validation (groundness, sort clashes) covers the *whole* call
        before anything mutates, so a raising assert leaves the session
        untouched.
        """
        proper = [a for a in atoms if isinstance(a, ProperAtom)]
        order = [a for a in atoms if isinstance(a, OrderAtom)]
        added = [a for a in proper if a not in self._proper]
        for atom in added:
            if not atom.is_ground:
                raise SortError(f"database proper atom must be ground: {atom}")
        order_added = [a for a in order if a not in self._order]
        for atom in order_added:
            if not atom.is_ground:
                raise SortError(f"database order atom must be ground: {atom}")
        self._check_sort_clash(added, order_added)
        if order:
            self.assert_order(*order)
        if not added:
            return self
        # Snapshot the known order constants BEFORE mutating, so names
        # that only these new atoms mention count as fresh vertices.
        known = self._known_order_names()
        self._proper.update(added)
        self._db = None
        order_args = [
            t for a in added for t in a.args if t.is_order
        ]
        # Zero-arity (propositional) facts ride the object generation:
        # the mildest invalidation that still resets the splittability
        # flag and the result memos — without it, nothing would bump at
        # all and live contexts, observers and snapshot deltas would
        # silently miss the mutation.
        has_object_args = any(
            t.is_object for a in added for t in a.args
        ) or any(not a.args for a in added)
        fresh: set[str] = set()
        if order_args:
            fresh = {t.name for t in order_args} - known
            known.update(t.name for t in order_args)
            self._label_gen += 1
            if fresh:
                self._graph_gen += 1
                if self._ctx is not None:
                    if self._graph_shared:
                        # A snapshot shares the graph instance: rebuild
                        # lazily instead of adding vertices in place.
                        self._graph_shared = False
                        self._ctx.graph_changed(self.db, keep_graph=False)
                    else:
                        if self._ctx.graph_built:
                            for v in sorted(fresh):
                                self._ctx.graph.add_vertex(v)
                        self._ctx.graph_changed(self.db)
            elif self._ctx is not None:
                self._ctx.labels_changed(self.db)
        if has_object_args:
            self._object_gen += 1
            if self._object_names is not None:
                self._object_names.update(
                    t.name for a in added for t in a.args if t.is_object
                )
            if self._ctx is not None and not order_args:
                self._ctx.facts_changed(self.db)
        self._notify(
            graph=bool(fresh),
            label=bool(order_args),
            object_=has_object_args,
            objects=(
                t.name for a in added for t in a.args if t.is_object
            ),
            added=tuple(added),
        )
        return self

    def retract_facts(self, *atoms: ProperAtom | OrderAtom) -> "Session":
        """Remove previously asserted facts (missing ones ignored).

        Order atoms route to :meth:`retract_order`, mirroring
        :meth:`assert_facts`.
        """
        order = [a for a in atoms if isinstance(a, OrderAtom)]
        if order:
            self.retract_order(*order)
        removed = [
            a for a in atoms
            if isinstance(a, ProperAtom) and a in self._proper
        ]
        if not removed:
            return self
        self._proper.difference_update(removed)
        self._db = None
        had_order = any(t.is_order for a in removed for t in a.args)
        # zero-arity facts ride the object generation (see assert_facts)
        had_object = any(
            t.is_object for a in removed for t in a.args
        ) or any(not a.args for a in removed)
        if had_order:
            # An order constant may have vanished: rebuild the graph lazily.
            # (The shared instance, if a snapshot holds one, is untouched.)
            self._order_names = None
            self._graph_gen += 1
            self._label_gen += 1
            self._graph_shared = False
            if self._ctx is not None:
                self._ctx.graph_changed(self.db, keep_graph=False)
        if had_object:
            self._object_gen += 1
            self._object_names = None
            if self._ctx is not None:
                self._ctx.facts_changed(self.db)
        self._notify(
            graph=had_order,
            label=had_order,
            object_=had_object,
            objects=(
                t.name for a in removed for t in a.args if t.is_object
            ),
            removed=tuple(removed),
        )
        return self

    def assert_order(self, *atoms: OrderAtom) -> "Session":
        """Add ground order atoms, updating the cached graph in place.

        Like :meth:`assert_facts`, validation precedes every mutation:
        a raising assert leaves the session untouched.
        """
        added = [a for a in atoms if a not in self._order]
        if not added:
            return self
        for atom in added:
            if not atom.is_ground:
                raise SortError(f"database order atom must be ground: {atom}")
        self._check_sort_clash((), added)
        self._order.update(added)
        self._db = None
        self._graph_gen += 1
        if self._order_names is not None:
            for a in added:
                self._order_names.add(a.left.name)
                self._order_names.add(a.right.name)
        if self._ctx is not None:
            if self._graph_shared:
                # A snapshot shares the graph instance: rebuild lazily
                # instead of editing the shared adjacency in place.
                self._graph_shared = False
                self._ctx.graph_changed(self.db, keep_graph=False)
            else:
                if self._ctx.graph_built:
                    # add_edge keeps the strictly stronger label on
                    # duplicate pairs, exactly like a from-scratch
                    # rebuild would.
                    for a in added:
                        self._ctx.graph.add_edge(
                            a.left.name, a.right.name, a.rel
                        )
                self._ctx.graph_changed(self.db)
        self._notify(graph=True, added=tuple(added))
        return self

    def retract_order(self, *atoms: OrderAtom) -> "Session":
        """Remove order atoms (graph rebuilt lazily: another atom may
        still assert a weaker edge on the same pair)."""
        removed = [a for a in atoms if a in self._order]
        if not removed:
            return self
        self._order.difference_update(removed)
        self._db = None
        self._order_names = None
        self._graph_gen += 1
        self._graph_shared = False
        if self._ctx is not None:
            self._ctx.graph_changed(self.db, keep_graph=False)
        self._notify(graph=True, removed=tuple(removed))
        return self

    # -- querying ----------------------------------------------------------

    def prepare(
        self,
        query: Query,
        semantics: Semantics = Semantics.FIN,
        method: str = "auto",
        free_vars: tuple[Term, ...] | None = None,
    ) -> PreparedQuery:
        """Compile ``query`` once; the plan is memoized per session.

        ``free_vars=None`` prepares a closed query; passing a tuple
        (even an empty one) prepares an open certain-answers plan.
        """
        if free_vars is not None:
            free_vars = tuple(free_vars)
        key = (query, semantics, method, free_vars)
        # True LRU: a hit re-inserts the plan at the most-recent end, so
        # eviction always removes the least-recently-*used* plan.
        plan = self._plans.pop(key, None)
        if plan is None:
            plan = PreparedQuery(self, query, semantics, method, free_vars)
            while self._plans and len(self._plans) >= self._plan_limit:
                self._plans.pop(next(iter(self._plans)))
        self._plans[key] = plan
        return plan

    def explain(
        self,
        query: Query,
        semantics: Semantics = Semantics.FIN,
        method: str = "auto",
    ) -> Result:
        """Prepare-and-execute in one call (plans are still reused)."""
        return self.prepare(query, semantics, method).execute()

    def entails(
        self,
        query: Query,
        semantics: Semantics = Semantics.FIN,
        method: str = "auto",
    ) -> bool:
        """Does the current database entail ``query``?"""
        return self.explain(query, semantics, method).holds

    def entails_many(
        self,
        queries: Iterable[Query],
        semantics: Semantics = Semantics.FIN,
        method: str = "auto",
    ) -> list[bool]:
        """Batch entailment: all plans share one warm closure/cache state."""
        return [
            self.explain(q, semantics, method).holds for q in queries
        ]

    def certain_answers(
        self,
        query: Query,
        free_vars: tuple[Term, ...],
        semantics: Semantics = Semantics.FIN,
        method: str = "auto",
    ) -> set[tuple[str, ...]]:
        """Certain answers of an open query as one prepared plan."""
        result = self.prepare(
            query, semantics, method, free_vars=tuple(free_vars)
        ).execute()
        assert result.answers is not None
        return set(result.answers)

    def __str__(self) -> str:
        return f"Session({self.size()} atoms, gens={self._gens()})"


__all__ = ["MutationEvent", "Session", "SnapshotDelta"]
