"""Application-layer helpers built on the core library."""
