"""Interval data over indefinite time lines (the Example 1.1 pattern).

Many of the paper's motivating applications store *intervals*: a fact
``P(u, v, args...)`` whose first two order arguments delimit a period.
This module packages the recurring idioms of Example 1.1:

* building interval facts with named endpoints;
* the *overlap integrity constraint*: two overlapping but non-identical
  intervals of the same tuple are forbidden — expressed as the violation
  query ``Psi`` and enforced through query modification
  (``D & not Psi |= phi``  iff  ``D |= Psi v phi``);
* convenience query builders ("during", "twice", "before").

Interval reasoning wants *dense* time (the violation's shared witness
point is nontight), so entailment here defaults to the rationals
semantics; pass ``semantics=`` to override.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.atoms import Atom, ProperAtom, lt
from repro.core.database import IndefiniteDatabase
from repro.core.entailment import entails as _entails
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery, Query, as_dnf
from repro.core.semantics import Semantics
from repro.core.sorts import Term, obj, objvar, ordc, ordvar


def interval_fact(
    pred: str, lo: str, hi: str, *args: str, strict: bool = True
) -> list[Atom]:
    """The fact ``pred(lo, hi, args...)`` plus its endpoint order atom.

    ``args`` are object-constant names.  ``strict=True`` adds ``lo < hi``
    (a genuine interval); ``False`` leaves the endpoints unconstrained.
    """
    terms: tuple[Term, ...] = (ordc(lo), ordc(hi)) + tuple(obj(a) for a in args)
    atoms: list[Atom] = [ProperAtom(pred, terms)]
    if strict:
        atoms.append(lt(ordc(lo), ordc(hi)))
    return atoms


def interval_database(
    pred: str, facts: Sequence[tuple], strict: bool = True
) -> IndefiniteDatabase:
    """A database of interval facts ``(lo, hi, *args)``."""
    atoms: list[Atom] = []
    for fact in facts:
        lo, hi, *args = fact
        atoms.extend(interval_fact(pred, lo, hi, *args, strict=strict))
    return IndefiniteDatabase.from_atoms(atoms)


def overlap_violation(pred: str, extra_args: int = 1) -> DisjunctiveQuery:
    """``Psi``: overlapping but non-identical intervals of the same tuple.

    The Example 1.1 constraint, generalized to ``pred`` with
    ``extra_args`` object arguments after the two endpoints: there exist
    two intervals of the same argument tuple sharing an interior point
    ``w`` while differing at an endpoint.  (This formulation permits
    simultaneous departure and re-entry, as the paper notes.)
    """
    objs = tuple(objvar(f"x{i}") for i in range(extra_args))
    t1, t2, t3, t4, w = (ordvar(n) for n in ("t1", "t2", "t3", "t4", "w"))
    common: list[Atom] = [
        ProperAtom(pred, (t1, t2) + objs),
        ProperAtom(pred, (t3, t4) + objs),
        lt(t1, w), lt(w, t2),
        lt(t3, w), lt(w, t4),
    ]
    return DisjunctiveQuery.of(
        ConjunctiveQuery.from_atoms(common + [lt(t1, t3)]),
        ConjunctiveQuery.from_atoms(common + [lt(t2, t4)]),
    )


def twice_query(pred: str, *args: Term) -> ConjunctiveQuery:
    """Two intervals of the same tuple with distinct starts (Example 1.1)."""
    t1, t2, t3, t4 = (ordvar(f"t{i}") for i in range(1, 5))
    return ConjunctiveQuery.of(
        ProperAtom(pred, (t1, t2) + tuple(args)),
        ProperAtom(pred, (t3, t4) + tuple(args)),
        lt(t1, t3),
    )


def entails_under_integrity(
    db: IndefiniteDatabase,
    query: Query,
    violation: Query,
    semantics: Semantics = Semantics.Q,
) -> bool:
    """``D & not Psi |= phi`` via the paper's query-modification trick."""
    return _entails(db, as_dnf(violation).or_(query), semantics=semantics)


def integrity_satisfiable(
    db: IndefiniteDatabase,
    violation: Query,
    semantics: Semantics = Semantics.Q,
) -> bool:
    """Does *some* model satisfy the integrity constraint?

    True iff the violation is not entailed — i.e. the constrained
    database is non-degenerate.
    """
    return not _entails(db, violation, semantics=semantics)
