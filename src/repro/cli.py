"""Command-line interface: ``python -m repro.cli <command> ...``.

Commands:

* ``query DB QUERY``   — decide entailment (``--semantics fin|z|q``,
  ``--method auto|bruteforce|...``, ``--countermodel`` to print a witness
  when the query is not entailed, ``--json`` for machine-readable output);
* ``answers DB QUERY`` — certain answers of an open query
  (``--free-vars x,y`` names the object variables; ``--json``);
* ``batch DB STREAM``  — run a request-stream file (queries, ``answers``
  lines, ``assert:``/``retract:`` writes) through the batching engine
  (:mod:`repro.engine.batch`); ``--workers N`` fans a write-free stream
  out over a snapshot worker pool, and pipelines a *mixed* stream over a
  persistent daemon pool (epoch *N*'s reads execute on the workers while
  the next epoch's writes apply);
* ``watch DB QUERY --free-vars ... STREAM`` — maintain a
  :class:`repro.engine.views.MaterializedView` of an open query across
  the writes in STREAM, reporting answer deltas after each step;
* ``recover WAL``      — rebuild the session persisted in a write-ahead
  log (:mod:`repro.engine.wal`) and report its state (``--json``;
  ``--compact`` folds the log into a fresh snapshot);
* ``serve DB``         — host the session behind the socket protocol of
  :mod:`repro.server` (``--port``, ``--wal`` for a durable session with
  group-commit syncing, ``--workers`` for a daemon pool); drains
  gracefully on SIGTERM/SIGINT; ``serve - --replica-of WAL`` instead
  hosts a *read-only replica* tailing a primary's log (reads only,
  ``applied_seq`` consistency tokens, primary-death detection);
* ``models DB``        — count (or ``--list``) the minimal models;
* ``classify DB QUERY``— the Tables 1-2 complexity profile;
* ``width DB``         — the database's width and a maximum antichain;
* ``bench-session DB QUERY`` — time the prepared-plan path of a
  :class:`repro.api.Session` against the one-shot API on a
  repeated-query workload.

``DB`` is a path to a database file in the text DSL
(:mod:`repro.substrate.parser`); ``QUERY`` is a query string or a path to
a file containing one.  Every query-answering command runs through a
:class:`repro.api.Session`, so multi-query invocations share warm caches.

``query``, ``answers``, ``batch`` and ``watch`` accept ``--wal PATH`` to
run against a *durable* session: if a write-ahead log already exists at
PATH the session state is recovered from it (DB then only supplies parse
vocabulary); otherwise DB seeds a fresh log.  Mutations applied by the
command are appended to the log, so a later invocation — or ``recover``
— picks up exactly where this one stopped.

The same four commands accept ``--connect HOST:PORT`` to run against a
live ``repro serve`` instance instead of a local session: the query or
stream is shipped over the wire, the server's shared session answers,
and DB is ignored (pass ``-``).  A comma-separated ``--connect``
list — primary first, replicas after — routes through a
:class:`repro.server.client.ReplicaRouter` instead: reads go to
replicas under read-your-writes gating with retry/backoff and
failover, writes go to the primary.  ``--wal`` and ``--connect`` are
mutually exclusive — durability lives with the server.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.analysis import classify
from repro.api import Session, render_model
from repro.core.database import IndefiniteDatabase
from repro.core.models import count_minimal_models, iter_minimal_models
from repro.core.semantics import Semantics
from repro.core.sorts import objvar
from repro.substrate.parser import (
    parse_database,
    parse_query,
    scan_order_names,
)

_SEMANTICS = {"fin": Semantics.FIN, "z": Semantics.Z, "q": Semantics.Q}
_METHODS = [
    "auto", "bruteforce", "seq", "paths", "bounded_width", "theorem53",
    "basis",
]


def _load_database(path: str) -> IndefiniteDatabase:
    text = pathlib.Path(path).read_text()
    return parse_database(text)


def _load_query(source: str, db: IndefiniteDatabase):
    candidate = pathlib.Path(source)
    if candidate.exists():
        source = candidate.read_text()
    return parse_query(source, db)


def _session_with_wal(db: IndefiniteDatabase, wal_path: str | None):
    """A session for ``db`` — durable when ``--wal`` names a log path.

    An existing log wins over the database file (it *is* the session's
    later state, seeded from that file by an earlier invocation); a
    fresh path starts the log from ``db``.  Returns ``(session, wal)``
    with ``wal`` ``None`` when no path was given; the caller closes it.
    """
    if wal_path is None:
        return Session(db), None
    from repro.engine.wal import WriteAheadLog, snap_path

    if pathlib.Path(snap_path(wal_path)).exists():
        session = Session.recover(wal_path)
    else:
        session = Session(db)
    return session, WriteAheadLog(wal_path).attach(session)


def _query_text(source: str) -> str:
    """QUERY arguments are a string or a path to a file holding one."""
    candidate = pathlib.Path(source)
    if candidate.exists():
        return candidate.read_text()
    return source


def _parse_connect(value: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``:PORT`` / ``PORT`` for localhost)."""
    host, _, port = value.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"--connect wants HOST:PORT, got {value!r}")


def _remote_client(args):
    """A connected client for a ``--connect`` invocation.

    A single ``HOST:PORT`` yields a plain ``ReproClient``.  A
    comma-separated list — primary first, replicas after — yields a
    ``ReplicaRouter``: reads round-robin over the replicas with
    read-your-writes gating and failover, writes go to the primary.
    """
    if getattr(args, "wal", None):
        raise SystemExit(
            "--wal and --connect are mutually exclusive: durability "
            "belongs to the server"
        )
    from repro.server import ReplicaRouter, ReproClient

    endpoints = [part for part in args.connect.split(",") if part.strip()]
    if not endpoints:
        raise SystemExit(f"--connect wants HOST:PORT[,...], got {args.connect!r}")
    if len(endpoints) == 1:
        host, port = _parse_connect(endpoints[0])
        # 60s op bound, as before the client grew timeout=: a CLI call
        # against a wedged server should error out, not hang forever
        return ReproClient(host, port, timeout=60.0)
    primary, *replicas = (_parse_connect(part) for part in endpoints)
    return ReplicaRouter(primary, replicas)


def _remote_query(args: argparse.Namespace) -> int:
    with _remote_client(args) as client:
        reply = client.execute(
            _query_text(args.query),
            semantics=args.semantics,
            method=args.method,
        )
    payload = {"entailed": reply["entailed"], "method": reply["method"]}
    if args.json:
        print(json.dumps(payload, sort_keys=True))
        return 0 if reply["entailed"] else 1
    print(f"entailed: {reply['entailed']}")
    print(f"method:   {reply['method']}")
    if args.countermodel and not reply["entailed"]:
        print("countermodel: (not shipped over --connect; run locally)")
    return 0 if reply["entailed"] else 1


def _remote_answers(args: argparse.Namespace) -> int:
    free = [name for name in args.free_vars.split(",") if name]
    with _remote_client(args) as client:
        reply = client.answers(
            _query_text(args.query), free, semantics=args.semantics
        )
    payload = {
        "answers": reply["answers"],
        "count": reply["count"],
        "method": reply["method"],
    }
    if args.json:
        print(json.dumps(payload, sort_keys=True))
        return 0 if reply["count"] else 1
    for answer in reply["answers"]:
        print(", ".join(answer) if answer else "()")
    print(f"certain answers: {reply['count']} [{reply['method']}]")
    return 0 if reply["count"] else 1


def _remote_batch(args: argparse.Namespace) -> int:
    lines = pathlib.Path(args.stream).read_text().splitlines()
    with _remote_client(args) as client:
        reply = client.batch(lines)
    rows = reply["ops"]
    if args.json:
        print(json.dumps({"mode": reply["mode"], "ops": rows}, sort_keys=True))
        return 0
    for row in rows:
        if row["kind"] == "query":
            verdict = (
                f"answers={row['count']}"
                if "count" in row
                else f"entailed={row['entailed']}"
            )
            print(f"[{row['op']:>3}] query   {verdict} [{row['method']}]")
        else:
            print(f"[{row['op']:>3}] {row['kind']:<14} "
                  f"{'; '.join(row['atoms'])}")
    print(f"executed {len(rows)} ops ({reply['mode']}, remote)")
    return 0


def _remote_watch(args: argparse.Namespace) -> int:
    stream_lines = pathlib.Path(args.stream).read_text().splitlines()
    free = [name for name in args.free_vars.split(",") if name]
    with _remote_client(args) as client:
        opened = client.watch(
            _query_text(args.query), free, semantics=args.semantics
        )
        watch_id = opened["watch"]
        count = opened["count"]
        steps = [{"step": 0, "op": "initial", "answers": opened["answers"]}]
        i = 0
        for line in stream_lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if stripped.startswith("assert:"):
                verb, text = "assert_facts", stripped[len("assert:"):]
                client.assert_facts(text)
            elif stripped.startswith("retract:"):
                verb, text = "retract_facts", stripped[len("retract:"):]
                client.retract_facts(text)
            else:
                print(
                    f"watch stream must contain only writes, got: {stripped}",
                    file=sys.stderr,
                )
                return 2
            i += 1
            added: list = []
            removed: list = []
            for event in client.take_events():
                if event.get("watch") != watch_id:
                    continue
                added.extend(event["added"])
                removed.extend(event["removed"])
                count = event["count"]
            steps.append({
                "step": i,
                "op": f"{verb} {text.strip()}",
                "added": added,
                "removed": removed,
                "count": count,
            })
    if args.json:
        print(json.dumps({"steps": steps}, sort_keys=True))
        return 0
    for step in steps:
        if step["op"] == "initial":
            print(f"[  0] initial: {len(step['answers'])} answers")
            continue
        delta = []
        for a in step["added"]:
            delta.append("+" + (",".join(a) if a else "()"))
        for a in step["removed"]:
            delta.append("-" + (",".join(a) if a else "()"))
        print(f"[{step['step']:>3}] {step['op']}: "
              f"{' '.join(delta) if delta else '(no change)'} "
              f"[{step['count']} answers]")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Host the session behind the serving tier's socket protocol."""
    import asyncio
    import logging

    from repro.engine.wal import WriteAheadLog, snap_path
    from repro.server import ReproServer

    logging.basicConfig(
        stream=sys.stderr,
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    if args.replica_of:
        if args.wal:
            raise SystemExit(
                "--replica-of and --wal are mutually exclusive: a replica "
                "tails a primary's log, it does not own one"
            )
        if args.workers:
            raise SystemExit("--workers applies to the primary, not replicas")
        # the primary may still be coming up: wait for its snapshot
        deadline = time.monotonic() + args.replica_wait
        while (
            not pathlib.Path(snap_path(args.replica_of)).exists()
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        if not pathlib.Path(snap_path(args.replica_of)).exists():
            raise SystemExit(
                f"primary WAL snapshot {snap_path(args.replica_of)!r} not "
                f"found after {args.replica_wait:g}s; is the primary "
                f"serving with --wal {args.replica_of}?"
            )
        server = ReproServer(
            None,
            args.host,
            args.port,
            max_inflight=args.max_inflight,
            replica_of=args.replica_of,
            poll_interval=args.poll_interval,
            heartbeat_timeout=args.heartbeat_timeout,
        )
    else:
        db = _load_database(args.database)
        if args.wal:
            if pathlib.Path(snap_path(args.wal)).exists():
                session = Session.recover(args.wal)
            else:
                session = Session(db)
            wal = WriteAheadLog(args.wal, sync=args.sync).attach(session)
        else:
            session, wal = Session(db), None
        server = ReproServer(
            session,
            args.host,
            args.port,
            wal=wal,
            workers=args.workers,
            max_inflight=args.max_inflight,
            heartbeat_interval=args.heartbeat_interval,
        )

    async def _main() -> None:
        import signal as _signal

        await server.start()
        announce = {"listening": {"host": server.host, "port": server.port}}
        if args.json:
            print(json.dumps(announce, sort_keys=True), flush=True)
        else:
            print(f"listening on {server.host}:{server.port}", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (_signal.SIGINT, _signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(server.drain())
                )
            except (NotImplementedError, RuntimeError):
                pass
        await server.wait_drained()

    asyncio.run(_main())
    summary = {
        "drained": True,
        "requests": server.stats["requests"],
        "errors": server.stats["errors"],
        "connections": server.stats["connections"],
    }
    if args.json:
        print(json.dumps(summary, sort_keys=True), flush=True)
    else:
        print(
            f"drained: {summary['requests']} requests "
            f"({summary['errors']} errors) over "
            f"{summary['connections']} connections",
            flush=True,
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.connect:
        return _remote_query(args)
    db = _load_database(args.database)
    session, wal = _session_with_wal(db, args.wal)
    query = _load_query(args.query, session.db.union(db))
    result = session.prepare(
        query,
        semantics=_SEMANTICS[args.semantics],
        method=args.method,
    ).execute()
    if wal is not None:
        wal.close()
    if args.json:
        payload = _result_payload(result)
        if args.countermodel and not result.holds:
            payload["countermodel"] = (
                None
                if result.countermodel is None
                else result.render_countermodel()
            )
        print(json.dumps(payload, sort_keys=True))
        return 0 if result.holds else 1
    print(f"entailed: {result.holds}")
    print(f"method:   {result.method}")
    if args.countermodel and not result.holds:
        if result.countermodel is None:
            print("countermodel: (not produced by this method; "
                  "try --method bruteforce)")
        else:
            print(f"countermodel: {result.render_countermodel()}")
    return 0 if result.holds else 1


def _cmd_answers(args: argparse.Namespace) -> int:
    if args.connect:
        return _remote_answers(args)
    db = _load_database(args.database)
    session, wal = _session_with_wal(db, args.wal)
    query = _load_query(args.query, session.db.union(db))
    free_vars = tuple(
        objvar(name) for name in args.free_vars.split(",") if name
    )
    result = session.prepare(
        query,
        semantics=_SEMANTICS[args.semantics],
        free_vars=free_vars,
    ).execute()
    if wal is not None:
        wal.close()
    assert result.answers is not None
    if args.json:
        print(json.dumps(_result_payload(result), sort_keys=True))
        return 0 if result.answers else 1
    for answer in sorted(result.answers):
        print(", ".join(answer) if answer else "()")
    print(f"certain answers: {len(result.answers)} [{result.method}]")
    return 0 if result.answers else 1


def _stream_order_names(db_text: str, stream_text: str) -> set[str]:
    """Sort inference over the database file plus every stream write.

    A constant that only a later ``assert:`` line orders must already be
    order-sorted where the base database merely labels it (one spelling
    at two sorts is a :class:`~repro.core.errors.SortError`), so the
    fragments are scanned together before any of them is parsed.
    """
    names = scan_order_names(db_text)
    for line in stream_text.splitlines():
        line = line.strip()
        for verb in ("assert:", "retract:"):
            if line.startswith(verb):
                names |= scan_order_names(line[len(verb):])
    return names


def _stream_vocabulary(
    db: IndefiniteDatabase, stream_text: str, order_names: set[str]
) -> IndefiniteDatabase:
    """The database plus every atom any stream write mentions.

    Query lines resolve constants against this *vocabulary* database, so
    a name introduced only by a later ``assert:`` line is still parsed
    as a constant (of the right sort) rather than as a variable.
    Execution always runs against the session's real state — a query
    naming a not-yet-asserted constant is simply not entailed yet.
    """
    vocab = db
    for line in stream_text.splitlines():
        line = line.strip()
        for verb in ("assert:", "retract:"):
            if line.startswith(verb):
                vocab = vocab.union(parse_database(
                    line[len(verb):], extra_order=order_names
                ))
    return vocab


def _parse_stream_line(
    line: str, db: IndefiniteDatabase, order_names: set[str] = frozenset()
):
    """One request-stream line -> a QueryRequest or Mutation (or None).

    Syntax: ``assert: <atoms>`` / ``retract: <atoms>`` (text-DSL database
    fragments), ``answers(x, y): <query>`` for open queries, anything
    else a closed query; blank lines and ``#`` comments skipped.
    """
    from repro.engine.batch import Mutation, QueryRequest

    line = line.strip()
    if not line or line.startswith("#"):
        return None
    for kind, verb in (("assert_facts", "assert:"),
                       ("retract_facts", "retract:")):
        if line.startswith(verb):
            fragment = parse_database(
                line[len(verb):], extra_order=order_names
            )
            return Mutation(kind, tuple(fragment.atoms()))
    if line.startswith("answers(") and "):" in line:
        names, _, rest = line[len("answers("):].partition("):")
        free = tuple(
            objvar(n.strip()) for n in names.split(",") if n.strip()
        )
        return QueryRequest(parse_query(rest, db), free_vars=free)
    if line.startswith("query:"):
        line = line[len("query:"):]
    return QueryRequest(parse_query(line, db))


def _result_payload(result) -> dict:
    if result.answers is not None:
        return {
            "answers": sorted(list(a) for a in result.answers),
            "count": len(result.answers),
            "method": result.method,
        }
    return {"entailed": result.holds, "method": result.method}


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.connect:
        return _remote_batch(args)
    """Run a request-stream file through the batching engine."""
    from repro.engine.batch import (
        Mutation,
        QueryRequest,
        execute_many,
        execute_stream,
    )
    from repro.engine.pool import DaemonPool, WorkerPool

    db_text = pathlib.Path(args.database).read_text()
    stream_text = pathlib.Path(args.stream).read_text()
    order_names = _stream_order_names(db_text, stream_text)
    db = parse_database(db_text, extra_order=order_names)
    vocab = _stream_vocabulary(db, stream_text, order_names)
    ops = []
    for line in stream_text.splitlines():
        op = _parse_stream_line(line, vocab, order_names)
        if op is not None:
            ops.append(op)
    session, wal = _session_with_wal(db, args.wal)
    try:
        pure_reads = all(isinstance(op, QueryRequest) for op in ops)
        if args.workers > 1 and pure_reads:
            with WorkerPool(session, workers=args.workers) as pool:
                results = pool.execute_many(ops)
                mode = (
                    f"pool[{args.workers}]" if pool.parallel else "sequential"
                )
        elif args.workers > 1:
            # mixed stream: write-boundary epoch pipelining over a
            # persistent daemon pool (results identical to --workers 1)
            with DaemonPool(session, workers=args.workers) as pool:
                results = execute_stream(session, ops, pool=pool)
                mode = (
                    f"pipeline[{args.workers}]" if pool.parallel else "stream"
                )
        else:
            results = execute_stream(session, ops)
            mode = "stream"
    finally:
        if wal is not None:
            wal.close()

    rows = []
    for i, (op, result) in enumerate(zip(ops, results)):
        if isinstance(op, Mutation):
            rows.append({"op": i, "kind": op.kind,
                         "atoms": [str(a) for a in op.atoms]})
        else:
            rows.append({"op": i, "kind": "query",
                         **_result_payload(result)})
    if args.json:
        print(json.dumps({"mode": mode, "ops": rows}, sort_keys=True))
    else:
        for row in rows:
            if row["kind"] == "query":
                verdict = (
                    f"answers={row['count']}"
                    if "count" in row
                    else f"entailed={row['entailed']}"
                )
                print(f"[{row['op']:>3}] query   {verdict} "
                      f"[{row['method']}]")
            else:
                print(f"[{row['op']:>3}] {row['kind']:<14} "
                      f"{'; '.join(row['atoms'])}")
        print(f"executed {len(ops)} ops ({mode})")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    if args.connect:
        return _remote_watch(args)
    """Maintain a materialized view of an open query across a write stream."""
    from repro.engine.batch import Mutation
    from repro.engine.views import MaterializedView

    db_text = pathlib.Path(args.database).read_text()
    stream_text = pathlib.Path(args.stream).read_text()
    order_names = _stream_order_names(db_text, stream_text)
    db = parse_database(db_text, extra_order=order_names)
    vocab = _stream_vocabulary(db, stream_text, order_names)
    session, wal = _session_with_wal(db, args.wal)
    query = _load_query(args.query, vocab)
    free_vars = tuple(
        objvar(name) for name in args.free_vars.split(",") if name
    )
    view = MaterializedView(
        session, query, free_vars, semantics=_SEMANTICS[args.semantics]
    )
    steps = []
    current = view.answers()
    steps.append({"step": 0, "op": "initial",
                  "answers": sorted(list(a) for a in current)})
    i = 0
    for line in stream_text.splitlines():
        op = _parse_stream_line(line, vocab, order_names)
        if op is None:
            continue
        if not isinstance(op, Mutation):
            print(f"watch stream must contain only writes, got: {line.strip()}",
                  file=sys.stderr)
            return 2
        i += 1
        op.apply(session)
        updated = view.answers()
        steps.append({
            "step": i,
            "op": f"{op.kind} {'; '.join(str(a) for a in op.atoms)}",
            "added": sorted(list(a) for a in updated - current),
            "removed": sorted(list(a) for a in current - updated),
            "count": len(updated),
        })
        current = updated
    if wal is not None:
        wal.close()
    summary = {
        "full_refreshes": view.full_refreshes,
        "delta_refreshes": view.delta_refreshes,
        "delta_capable": view.delta_capable,
    }
    if args.json:
        print(json.dumps({"steps": steps, **summary}, sort_keys=True))
        return 0
    for step in steps:
        if step["op"] == "initial":
            print(f"[  0] initial: {len(step['answers'])} answers")
            continue
        delta = []
        for a in step["added"]:
            delta.append("+" + (",".join(a) if a else "()"))
        for a in step["removed"]:
            delta.append("-" + (",".join(a) if a else "()"))
        print(f"[{step['step']:>3}] {step['op']}: "
              f"{' '.join(delta) if delta else '(no change)'} "
              f"[{step['count']} answers]")
    print(f"refreshes: {summary['full_refreshes']} full, "
          f"{summary['delta_refreshes']} delta "
          f"(delta-capable: {summary['delta_capable']})")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Rebuild the session persisted in a write-ahead log; report it."""
    from repro.engine.wal import WalMark, WriteAheadLog, read_log, recover

    session = recover(args.wal)
    base, clean, records = read_log(args.wal)
    size = pathlib.Path(args.wal).stat().st_size
    gens = session._gens()
    deltas = [d for d in records if not isinstance(d, WalMark)]
    replayed = sum(1 for d in deltas if sum(d.gens) > base)
    payload = {
        "atoms": session.size(),
        "proper_atoms": len(session.db.proper_atoms),
        "order_atoms": len(session.db.order_atoms),
        "gens": list(gens),
        "log_records": len(records),
        "marks": len(records) - len(deltas),
        "replayed": replayed,
        "skipped": len(deltas) - replayed,
        "torn_bytes": size - clean,
        "compacted": bool(args.compact),
    }
    if args.compact:
        with WriteAheadLog(args.wal).attach(session) as wal:
            wal.compact()
    if args.json:
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(f"recovered session: {payload['atoms']} atoms "
          f"({payload['proper_atoms']} proper, "
          f"{payload['order_atoms']} order), generations {gens}")
    print(f"log: {payload['log_records']} records "
          f"({replayed} replayed, {payload['skipped']} below the "
          f"snapshot epoch, {payload['marks']} seq marks)")
    if payload["torn_bytes"]:
        print(f"torn tail ignored: {payload['torn_bytes']} byte(s)")
    if args.compact:
        print("compacted: log folded into a fresh snapshot")
    if args.dump:
        for atom in sorted(str(a) for a in session.db.atoms()):
            print(atom)
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    if not db.is_consistent():
        print("database is inconsistent: no models")
        return 1
    if args.list:
        shown = 0
        for model in iter_minimal_models(db):
            print(render_model(model))
            shown += 1
            if args.limit and shown >= args.limit:
                print(f"... (stopped at --limit {args.limit})")
                break
        print(f"listed {shown} minimal models")
    else:
        count = count_minimal_models(db.graph().normalize().graph)
        print(f"minimal models: {count}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    query = _load_query(args.query, db)
    print(classify(db, query).summary())
    return 0


def _cmd_width(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    graph = db.graph().normalize().graph
    antichain = graph.a_maximum_antichain()
    print(f"width: {len(antichain)}")
    print(f"a maximum antichain: {sorted(antichain)}")
    return 0


def _cmd_bench_session(args: argparse.Namespace) -> int:
    """Time repeated execution: prepared plan vs the one-shot wrappers.

    Between prepared executions the session absorbs an assert/retract
    pair on a scratch object fact, so every iteration re-executes the
    plan through the invalidation path instead of returning the
    memoized result of an unchanged database.
    """
    from repro.core.atoms import ProperAtom
    from repro.core.entailment import certain_answers, explain
    from repro.core.sorts import obj

    db = _load_database(args.database)
    query = _load_query(args.query, db)
    semantics = _SEMANTICS[args.semantics]
    free_vars = tuple(
        objvar(name) for name in args.free_vars.split(",") if name
    ) if args.free_vars else None
    repeat = args.repeat

    if free_vars is None:
        def one_shot():
            return explain(db, query, semantics=semantics,
                           method=args.method).holds
    else:
        def one_shot():
            return frozenset(
                certain_answers(db, query, free_vars, semantics=semantics)
            )

    session = Session(db)
    plan = session.prepare(
        query, semantics=semantics, method=args.method, free_vars=free_vars
    )

    t0 = time.perf_counter()
    expected = [one_shot() for _ in range(repeat)]
    one_shot_s = time.perf_counter() - t0

    tick = ProperAtom("BenchSessionTick", (obj("_bench_tick"),))
    t0 = time.perf_counter()
    got = []
    for _ in range(repeat):
        # Net no-op churn: invalidates the result memo, keeps the db equal
        # to the one-shot side's, and exercises the live execution path.
        session.assert_facts(tick)
        session.retract_facts(tick)
        result = plan.execute()
        got.append(result.holds if free_vars is None else result.answers)
    prepared_s = time.perf_counter() - t0

    match = expected == got
    speedup = one_shot_s / prepared_s if prepared_s else float("inf")
    print(f"repeats:   {repeat}")
    print(f"one-shot:  {one_shot_s * 1e3:9.2f} ms")
    print(f"prepared:  {prepared_s * 1e3:9.2f} ms")
    print(f"speedup:   {speedup:.1f}x")
    print(f"results:   {'match' if match else 'MISMATCH'}")
    return 0 if match else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query indefinite order databases (van der Meyden 1992/1997).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("query", help="decide D |= phi")
    q.add_argument("database", help="database file (text DSL)")
    q.add_argument("query", help="query string or file")
    q.add_argument("--semantics", choices=sorted(_SEMANTICS), default="fin")
    q.add_argument("--method", choices=_METHODS, default="auto")
    q.add_argument("--countermodel", action="store_true",
                   help="print a falsifying minimal model if any")
    q.add_argument("--json", action="store_true",
                   help="machine-readable JSON output")
    q.add_argument("--wal", metavar="PATH", default=None,
                   help="durable session: recover from / log to this "
                        "write-ahead log")
    q.add_argument("--connect", metavar="HOST:PORT[,...]", default=None,
                   help="run against a live `repro serve` instance "
                        "(DATABASE is ignored; pass -); a comma-separated "
                        "list routes reads over replicas (primary first)")
    q.set_defaults(func=_cmd_query)

    a = sub.add_parser("answers", help="certain answers of an open query")
    a.add_argument("database")
    a.add_argument("query")
    a.add_argument("--free-vars", default="",
                   help="comma-separated object variable names (e.g. x,y)")
    a.add_argument("--semantics", choices=sorted(_SEMANTICS), default="fin")
    a.add_argument("--json", action="store_true",
                   help="machine-readable JSON output")
    a.add_argument("--wal", metavar="PATH", default=None,
                   help="durable session: recover from / log to this "
                        "write-ahead log")
    a.add_argument("--connect", metavar="HOST:PORT[,...]", default=None,
                   help="run against a live `repro serve` instance "
                        "(DATABASE is ignored; pass -); a comma-separated "
                        "list routes reads over replicas (primary first)")
    a.set_defaults(func=_cmd_answers)

    bt = sub.add_parser(
        "batch",
        help="run a request-stream file through the batching engine",
    )
    bt.add_argument("database")
    bt.add_argument("stream", help="file of queries / answers(..) / "
                                   "assert: / retract: lines")
    bt.add_argument("--workers", type=int, default=1,
                    help="fan a write-free stream over N snapshot workers; "
                         "on mixed streams, pipeline read epochs over N "
                         "persistent daemon workers")
    bt.add_argument("--json", action="store_true",
                    help="machine-readable JSON output")
    bt.add_argument("--wal", metavar="PATH", default=None,
                    help="durable session: recover from / log to this "
                         "write-ahead log (stream writes are appended)")
    bt.add_argument("--connect", metavar="HOST:PORT[,...]", default=None,
                    help="run against a live `repro serve` instance "
                         "(DATABASE is ignored; pass -); a comma-separated "
                         "list routes reads over replicas (primary first)")
    bt.set_defaults(func=_cmd_batch)

    wt = sub.add_parser(
        "watch",
        help="maintain a materialized view of an open query over writes",
    )
    wt.add_argument("database")
    wt.add_argument("query")
    wt.add_argument("stream", help="file of assert:/retract: lines")
    wt.add_argument("--free-vars", default="",
                    help="comma-separated object variable names (e.g. x,y)")
    wt.add_argument("--semantics", choices=sorted(_SEMANTICS), default="fin")
    wt.add_argument("--json", action="store_true",
                    help="machine-readable JSON output")
    wt.add_argument("--wal", metavar="PATH", default=None,
                    help="durable session: recover from / log to this "
                         "write-ahead log (stream writes are appended)")
    wt.add_argument("--connect", metavar="HOST:PORT[,...]", default=None,
                    help="run against a live `repro serve` instance "
                         "(DATABASE is ignored; pass -); a comma-separated "
                         "list routes reads over replicas (primary first)")
    wt.set_defaults(func=_cmd_watch)

    sv = sub.add_parser(
        "serve",
        help="host the session behind the socket protocol "
             "(see repro.server)",
    )
    sv.add_argument("database", help="database file seeding the session")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=0,
                    help="TCP port (0 picks an ephemeral one, "
                         "announced on stdout)")
    sv.add_argument("--wal", metavar="PATH", default=None,
                    help="write-ahead log: recover from it if present, "
                         "else seed it from DATABASE")
    sv.add_argument("--sync", choices=("fsync", "group", "flush", "none"),
                    default="group",
                    help="WAL sync policy (default: group commit)")
    sv.add_argument("--workers", type=int, default=0,
                    help="daemon-pool workers for read batches "
                         "(0/1 = in-process)")
    sv.add_argument("--max-inflight", type=int, default=32,
                    help="per-connection inflight-op cap (backpressure)")
    sv.add_argument("--replica-of", metavar="WAL", default=None,
                    help="serve a read-only replica tailing this primary "
                         "WAL (DATABASE is ignored; pass -)")
    sv.add_argument("--poll-interval", type=float, default=0.05,
                    help="replica: background WAL poll period in seconds")
    sv.add_argument("--heartbeat-interval", type=float, default=1.0,
                    help="primary with --wal: seconds between liveness "
                         "marks appended to the log")
    sv.add_argument("--heartbeat-timeout", type=float, default=5.0,
                    help="replica: primary presumed dead after this many "
                         "seconds without log activity")
    sv.add_argument("--replica-wait", type=float, default=10.0,
                    help="replica: seconds to wait for the primary's WAL "
                         "snapshot to appear at startup")
    sv.add_argument("--json", action="store_true",
                    help="machine-readable listening/drained lines")
    sv.set_defaults(func=_cmd_serve)

    rc = sub.add_parser(
        "recover",
        help="rebuild the session persisted in a write-ahead log",
    )
    rc.add_argument("wal", help="write-ahead log path (with its .snap "
                                "sibling)")
    rc.add_argument("--compact", action="store_true",
                    help="fold the log into a fresh snapshot after "
                         "recovery")
    rc.add_argument("--dump", action="store_true",
                    help="print every recovered atom")
    rc.add_argument("--json", action="store_true",
                    help="machine-readable JSON output")
    rc.set_defaults(func=_cmd_recover)

    m = sub.add_parser("models", help="count or list minimal models")
    m.add_argument("database")
    m.add_argument("--list", action="store_true")
    m.add_argument("--limit", type=int, default=20)
    m.set_defaults(func=_cmd_models)

    c = sub.add_parser("classify", help="complexity profile (Tables 1-2)")
    c.add_argument("database")
    c.add_argument("query")
    c.set_defaults(func=_cmd_classify)

    w = sub.add_parser("width", help="database width and antichain")
    w.add_argument("database")
    w.set_defaults(func=_cmd_width)

    b = sub.add_parser(
        "bench-session",
        help="time prepared-plan execution vs the one-shot API",
    )
    b.add_argument("database")
    b.add_argument("query")
    b.add_argument("--repeat", type=int, default=50)
    b.add_argument("--semantics", choices=sorted(_SEMANTICS), default="fin")
    b.add_argument("--method", choices=_METHODS, default="auto")
    b.add_argument("--free-vars", default="",
                   help="benchmark certain_answers over these object vars")
    b.set_defaults(func=_cmd_bench_session)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
