"""Command-line interface: ``python -m repro.cli <command> ...``.

Commands:

* ``query DB QUERY``   — decide entailment (``--semantics fin|z|q``,
  ``--method auto|bruteforce|...``, ``--countermodel`` to print a witness
  when the query is not entailed);
* ``answers DB QUERY`` — certain answers of an open query
  (``--free-vars x,y`` names the object variables);
* ``models DB``        — count (or ``--list``) the minimal models;
* ``classify DB QUERY``— the Tables 1-2 complexity profile;
* ``width DB``         — the database's width and a maximum antichain;
* ``bench-session DB QUERY`` — time the prepared-plan path of a
  :class:`repro.api.Session` against the one-shot API on a
  repeated-query workload.

``DB`` is a path to a database file in the text DSL
(:mod:`repro.substrate.parser`); ``QUERY`` is a query string or a path to
a file containing one.  Every query-answering command runs through a
:class:`repro.api.Session`, so multi-query invocations share warm caches.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.analysis import classify
from repro.api import Session, render_model
from repro.core.database import IndefiniteDatabase
from repro.core.models import count_minimal_models, iter_minimal_models
from repro.core.semantics import Semantics
from repro.core.sorts import objvar
from repro.substrate.parser import parse_database, parse_query

_SEMANTICS = {"fin": Semantics.FIN, "z": Semantics.Z, "q": Semantics.Q}
_METHODS = [
    "auto", "bruteforce", "seq", "paths", "bounded_width", "theorem53",
    "basis",
]


def _load_database(path: str) -> IndefiniteDatabase:
    text = pathlib.Path(path).read_text()
    return parse_database(text)


def _load_query(source: str, db: IndefiniteDatabase):
    candidate = pathlib.Path(source)
    if candidate.exists():
        source = candidate.read_text()
    return parse_query(source, db)


def _cmd_query(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    session = Session(db)
    query = _load_query(args.query, db)
    result = session.prepare(
        query,
        semantics=_SEMANTICS[args.semantics],
        method=args.method,
    ).execute()
    print(f"entailed: {result.holds}")
    print(f"method:   {result.method}")
    if args.countermodel and not result.holds:
        if result.countermodel is None:
            print("countermodel: (not produced by this method; "
                  "try --method bruteforce)")
        else:
            print(f"countermodel: {result.render_countermodel()}")
    return 0 if result.holds else 1


def _cmd_answers(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    session = Session(db)
    query = _load_query(args.query, db)
    free_vars = tuple(
        objvar(name) for name in args.free_vars.split(",") if name
    )
    result = session.prepare(
        query,
        semantics=_SEMANTICS[args.semantics],
        free_vars=free_vars,
    ).execute()
    assert result.answers is not None
    for answer in sorted(result.answers):
        print(", ".join(answer) if answer else "()")
    print(f"certain answers: {len(result.answers)} [{result.method}]")
    return 0 if result.answers else 1


def _cmd_models(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    if not db.is_consistent():
        print("database is inconsistent: no models")
        return 1
    if args.list:
        shown = 0
        for model in iter_minimal_models(db):
            print(render_model(model))
            shown += 1
            if args.limit and shown >= args.limit:
                print(f"... (stopped at --limit {args.limit})")
                break
        print(f"listed {shown} minimal models")
    else:
        count = count_minimal_models(db.graph().normalize().graph)
        print(f"minimal models: {count}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    query = _load_query(args.query, db)
    print(classify(db, query).summary())
    return 0


def _cmd_width(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    graph = db.graph().normalize().graph
    antichain = graph.a_maximum_antichain()
    print(f"width: {len(antichain)}")
    print(f"a maximum antichain: {sorted(antichain)}")
    return 0


def _cmd_bench_session(args: argparse.Namespace) -> int:
    """Time repeated execution: prepared plan vs the one-shot wrappers.

    Between prepared executions the session absorbs an assert/retract
    pair on a scratch object fact, so every iteration re-executes the
    plan through the invalidation path instead of returning the
    memoized result of an unchanged database.
    """
    from repro.core.atoms import ProperAtom
    from repro.core.entailment import certain_answers, explain
    from repro.core.sorts import obj

    db = _load_database(args.database)
    query = _load_query(args.query, db)
    semantics = _SEMANTICS[args.semantics]
    free_vars = tuple(
        objvar(name) for name in args.free_vars.split(",") if name
    ) if args.free_vars else None
    repeat = args.repeat

    if free_vars is None:
        def one_shot():
            return explain(db, query, semantics=semantics,
                           method=args.method).holds
    else:
        def one_shot():
            return frozenset(
                certain_answers(db, query, free_vars, semantics=semantics)
            )

    session = Session(db)
    plan = session.prepare(
        query, semantics=semantics, method=args.method, free_vars=free_vars
    )

    t0 = time.perf_counter()
    expected = [one_shot() for _ in range(repeat)]
    one_shot_s = time.perf_counter() - t0

    tick = ProperAtom("BenchSessionTick", (obj("_bench_tick"),))
    t0 = time.perf_counter()
    got = []
    for _ in range(repeat):
        # Net no-op churn: invalidates the result memo, keeps the db equal
        # to the one-shot side's, and exercises the live execution path.
        session.assert_facts(tick)
        session.retract_facts(tick)
        result = plan.execute()
        got.append(result.holds if free_vars is None else result.answers)
    prepared_s = time.perf_counter() - t0

    match = expected == got
    speedup = one_shot_s / prepared_s if prepared_s else float("inf")
    print(f"repeats:   {repeat}")
    print(f"one-shot:  {one_shot_s * 1e3:9.2f} ms")
    print(f"prepared:  {prepared_s * 1e3:9.2f} ms")
    print(f"speedup:   {speedup:.1f}x")
    print(f"results:   {'match' if match else 'MISMATCH'}")
    return 0 if match else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query indefinite order databases (van der Meyden 1992/1997).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("query", help="decide D |= phi")
    q.add_argument("database", help="database file (text DSL)")
    q.add_argument("query", help="query string or file")
    q.add_argument("--semantics", choices=sorted(_SEMANTICS), default="fin")
    q.add_argument("--method", choices=_METHODS, default="auto")
    q.add_argument("--countermodel", action="store_true",
                   help="print a falsifying minimal model if any")
    q.set_defaults(func=_cmd_query)

    a = sub.add_parser("answers", help="certain answers of an open query")
    a.add_argument("database")
    a.add_argument("query")
    a.add_argument("--free-vars", default="",
                   help="comma-separated object variable names (e.g. x,y)")
    a.add_argument("--semantics", choices=sorted(_SEMANTICS), default="fin")
    a.set_defaults(func=_cmd_answers)

    m = sub.add_parser("models", help="count or list minimal models")
    m.add_argument("database")
    m.add_argument("--list", action="store_true")
    m.add_argument("--limit", type=int, default=20)
    m.set_defaults(func=_cmd_models)

    c = sub.add_parser("classify", help="complexity profile (Tables 1-2)")
    c.add_argument("database")
    c.add_argument("query")
    c.set_defaults(func=_cmd_classify)

    w = sub.add_parser("width", help="database width and antichain")
    w.add_argument("database")
    w.set_defaults(func=_cmd_width)

    b = sub.add_parser(
        "bench-session",
        help="time prepared-plan execution vs the one-shot API",
    )
    b.add_argument("database")
    b.add_argument("query")
    b.add_argument("--repeat", type=int, default=50)
    b.add_argument("--semantics", choices=sorted(_SEMANTICS), default="fin")
    b.add_argument("--method", choices=_METHODS, default="auto")
    b.add_argument("--free-vars", default="",
                   help="benchmark certain_answers over these object vars")
    b.set_defaults(func=_cmd_bench_session)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
