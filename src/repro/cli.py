"""Command-line interface: ``python -m repro.cli <command> ...``.

Commands:

* ``query DB QUERY``   — decide entailment (``--semantics fin|z|q``,
  ``--method auto|bruteforce|...``, ``--countermodel`` to print a witness
  when the query is not entailed);
* ``models DB``        — count (or ``--list``) the minimal models;
* ``classify DB QUERY``— the Tables 1-2 complexity profile;
* ``width DB``         — the database's width and a maximum antichain.

``DB`` is a path to a database file in the text DSL
(:mod:`repro.substrate.parser`); ``QUERY`` is a query string or a path to
a file containing one.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.analysis import classify
from repro.core.database import IndefiniteDatabase
from repro.core.entailment import explain
from repro.core.models import count_minimal_models, iter_minimal_models
from repro.core.semantics import Semantics
from repro.substrate.parser import parse_database, parse_query

_SEMANTICS = {"fin": Semantics.FIN, "z": Semantics.Z, "q": Semantics.Q}


def _load_database(path: str) -> IndefiniteDatabase:
    text = pathlib.Path(path).read_text()
    return parse_database(text)


def _load_query(source: str, db: IndefiniteDatabase):
    candidate = pathlib.Path(source)
    if candidate.exists():
        source = candidate.read_text()
    return parse_query(source, db)


def _cmd_query(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    query = _load_query(args.query, db)
    report = explain(
        db, query,
        semantics=_SEMANTICS[args.semantics],
        method=args.method,
    )
    print(f"entailed: {report.holds}")
    print(f"method:   {report.method}")
    if args.countermodel and not report.holds:
        if report.countermodel is None:
            print("countermodel: (not produced by this method; "
                  "try --method bruteforce)")
        else:
            print(f"countermodel: {_render_model(report.countermodel)}")
    return 0 if report.holds else 1


def _render_model(model) -> str:
    if isinstance(model, tuple):  # a word
        return " < ".join(
            "{" + ",".join(sorted(letter)) + "}" for letter in model
        ) or "(empty model)"
    return str(model)


def _cmd_models(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    if not db.is_consistent():
        print("database is inconsistent: no models")
        return 1
    if args.list:
        shown = 0
        for model in iter_minimal_models(db):
            print(model)
            shown += 1
            if args.limit and shown >= args.limit:
                print(f"... (stopped at --limit {args.limit})")
                break
        print(f"listed {shown} minimal models")
    else:
        count = count_minimal_models(db.graph().normalize().graph)
        print(f"minimal models: {count}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    query = _load_query(args.query, db)
    print(classify(db, query).summary())
    return 0


def _cmd_width(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    graph = db.graph().normalize().graph
    antichain = graph.a_maximum_antichain()
    print(f"width: {len(antichain)}")
    print(f"a maximum antichain: {sorted(antichain)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query indefinite order databases (van der Meyden 1992/1997).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("query", help="decide D |= phi")
    q.add_argument("database", help="database file (text DSL)")
    q.add_argument("query", help="query string or file")
    q.add_argument("--semantics", choices=sorted(_SEMANTICS), default="fin")
    q.add_argument(
        "--method",
        choices=["auto", "bruteforce", "seq", "paths", "bounded_width",
                 "theorem53"],
        default="auto",
    )
    q.add_argument("--countermodel", action="store_true",
                   help="print a falsifying minimal model if any")
    q.set_defaults(func=_cmd_query)

    m = sub.add_parser("models", help="count or list minimal models")
    m.add_argument("database")
    m.add_argument("--list", action="store_true")
    m.add_argument("--limit", type=int, default=20)
    m.set_defaults(func=_cmd_models)

    c = sub.add_parser("classify", help="complexity profile (Tables 1-2)")
    c.add_argument("database")
    c.add_argument("query")
    c.set_defaults(func=_cmd_classify)

    w = sub.add_parser("width", help="database width and antichain")
    w.add_argument("database")
    w.set_defaults(func=_cmd_width)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
