"""Query containment with inequalities (Proposition 2.10 / Klug's problem).

``Q1`` is *O-contained* in ``Q2`` when ``Ans(Q1, M)`` is a subset of
``Ans(Q2, M)`` for every relational database ``M`` whose order is of type
``O``.  Proposition 2.10 shows this problem is PTIME-equivalent to
combined-complexity query answering in indefinite order databases; with
Theorem 3.3 this pins containment of conjunctive queries with inequalities
at Pi2p-complete, resolving the open problem of Klug (JACM 1988).

Both reduction directions are implemented:

* :func:`contained` — decide containment by *freezing* ``Q1``'s body into
  an indefinite database (head variables become shared fresh constants)
  and asking whether it entails ``Q2``'s body with the same head
  substitution;
* :func:`entailment_to_containment` — the other direction: an entailment
  instance ``(D, phi)`` becomes a pair of boolean queries whose
  containment is equivalent.

When containment fails, :func:`counterexample` extracts a concrete
relational database and tuple witnessing the failure from the entailment
countermodel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.atoms import OrderAtom, ProperAtom
from repro.core.database import IndefiniteDatabase
from repro.core.entailment import explain
from repro.core.models import Structure
from repro.core.query import ConjunctiveQuery
from repro.core.semantics import Semantics
from repro.core.sorts import Term, obj, ordc
from repro.containment.relational import RelationalQuery, answer_set


def _freeze_terms(q: RelationalQuery, prefix: str) -> dict[Term, Term]:
    """Map every variable of ``q`` to a fresh constant of the same sort."""
    mapping: dict[Term, Term] = {}
    for v in sorted(q.variables(), key=lambda t: t.name):
        name = f"{prefix}{v.name}"
        mapping[v] = ordc(name) if v.is_order else obj(name)
    return mapping


def containment_to_entailment(
    q1: RelationalQuery, q2: RelationalQuery
) -> tuple[IndefiniteDatabase, ConjunctiveQuery]:
    """Proposition 2.10, direction containment -> entailment.

    Freeze ``Q1``'s body (variables become fresh constants ``a`` for the
    head and ``b`` for the rest); the database is the frozen body, the
    query is ``exists z . phi2(a, z)`` — ``Q2``'s body with its head
    variables replaced by ``Q1``'s frozen head constants.
    """
    if len(q1.head) != len(q2.head):
        raise ValueError("containment requires equal head arities")
    for v1, v2 in zip(q1.head, q2.head):
        if v1.sort is not v2.sort:
            raise ValueError("head sorts must agree position-wise")

    freeze = _freeze_terms(q1, "_c_")
    db_atoms = [a.substitute(freeze) for a in q1.atoms]
    db = IndefiniteDatabase.from_atoms(db_atoms)

    head_map = {v2: freeze[v1] for v1, v2 in zip(q1.head, q2.head)}
    query = ConjunctiveQuery.from_atoms(
        a.substitute(head_map) for a in q2.atoms
    )
    return db, query


def contained(
    q1: RelationalQuery,
    q2: RelationalQuery,
    semantics: Semantics = Semantics.FIN,
) -> bool:
    """Is ``Q1`` O-contained in ``Q2``?"""
    db, query = containment_to_entailment(q1, q2)
    if not db.is_consistent():
        return True  # Q1's body is unsatisfiable: empty answers everywhere
    return explain(db, query, semantics=semantics).holds


@dataclass(frozen=True)
class ContainmentCounterexample:
    """A witness that ``Q1`` is not contained in ``Q2``."""

    model: Structure
    tuple_: tuple[int | str, ...]


def counterexample(
    q1: RelationalQuery,
    q2: RelationalQuery,
    semantics: Semantics = Semantics.FIN,
) -> ContainmentCounterexample | None:
    """A relational database + answer tuple in ``Ans(Q1) \\ Ans(Q2)``.

    Returns None when ``Q1`` is contained in ``Q2``.  The witness is the
    entailment countermodel (a minimal model of the frozen body) with the
    frozen head constants read back off its constant interpretation; its
    correctness is checked with :func:`answer_set` before returning.
    """
    db, query = containment_to_entailment(q1, q2)
    if not db.is_consistent():
        return None
    report = explain(db, query, semantics=semantics, method="bruteforce")
    if report.holds:
        return None
    model = report.countermodel
    assert isinstance(model, Structure)
    interp = model.interpretation
    witness = tuple(interp[f"_c_{v.name}"] for v in q1.head)
    assert witness in answer_set(q1, model)
    assert witness not in answer_set(q2, model)
    return ContainmentCounterexample(model, witness)


def homomorphism_contained(q1: RelationalQuery, q2: RelationalQuery) -> bool:
    """The Chandra–Merlin test, extended soundly to order atoms.

    Searches for a mapping from ``Q2``'s terms to ``Q1``'s frozen body
    (head variables to the matching frozen head constants) such that every
    proper atom of ``Q2`` maps onto an atom of ``Q1`` and every order atom
    maps onto an order fact *entailed* by ``Q1``'s order atoms.

    For inequality-free conjunctive queries this decides containment
    exactly (Chandra–Merlin); with inequalities it remains **sound** but
    is **incomplete** — Klug's observation, reproduced by the tests and
    :mod:`examples.query_containment`: containments that hold only by a
    case analysis over the linear order (e.g. totality: ``u <= x`` or
    ``x <= u``) admit no single homomorphism.
    """
    freeze = _freeze_terms(q1, "_h_")
    frozen_atoms = [a.substitute(freeze) for a in q1.atoms]
    frozen_proper = [a for a in frozen_atoms if isinstance(a, ProperAtom)]
    frozen_order = [a for a in frozen_atoms if isinstance(a, OrderAtom)]

    from repro.core.ordergraph import OrderGraph

    graph = OrderGraph.from_atoms(
        frozen_order,
        extra_vertices=[
            t.name for a in frozen_proper for t in a.args if t.is_order
        ],
    )
    norm = graph.normalize()
    if not norm.consistent:
        return True  # Q1 unsatisfiable

    head_map = {v2: freeze[v1] for v1, v2 in zip(q1.head, q2.head)}
    q2_vars = sorted(
        {t for a in q2.atoms for t in (
            a.args if isinstance(a, ProperAtom) else (a.left, a.right)
        ) if t.is_var},
        key=lambda t: t.name,
    )
    q2_vars = [v for v in q2_vars if v not in head_map]

    frozen_terms = sorted(
        {t for a in frozen_atoms for t in (
            a.args if isinstance(a, ProperAtom) else (a.left, a.right)
        )},
        key=lambda t: t.name,
    )

    def order_entailed(atom: OrderAtom, h: dict[Term, Term]) -> bool:
        left = h.get(atom.left, atom.left)
        right = h.get(atom.right, atom.right)
        if left.is_var or right.is_var:
            return True  # not yet decided
        lu = norm.canon.get(left.name, left.name)
        ru = norm.canon.get(right.name, right.name)
        return norm.graph.entails_atom(lu, ru, atom.rel)

    def proper_ok(atom: ProperAtom, h: dict[Term, Term]) -> bool:
        image = atom.substitute(h)
        if any(t.is_var for t in image.args):
            return True
        return image in frozen_proper

    def search(h: dict[Term, Term], idx: int) -> bool:
        if idx == len(q2_vars):
            return all(
                proper_ok(a, h) for a in q2.atoms if isinstance(a, ProperAtom)
            ) and all(
                order_entailed(a, h) for a in q2.atoms
                if isinstance(a, OrderAtom)
            )
        var = q2_vars[idx]
        for target in frozen_terms:
            if target.sort is not var.sort:
                continue
            h[var] = target
            if all(
                proper_ok(a, h) for a in q2.atoms if isinstance(a, ProperAtom)
            ) and all(
                order_entailed(a, h) for a in q2.atoms
                if isinstance(a, OrderAtom)
            ):
                if search(h, idx + 1):
                    return True
            del h[var]
        return False

    return search(dict(head_map), 0)


def entailment_to_containment(
    db: IndefiniteDatabase, query: ConjunctiveQuery
) -> tuple[RelationalQuery, RelationalQuery]:
    """Proposition 2.10, direction entailment -> containment.

    ``Q1 = {() : A1 & ... & An}`` is the boolean query whose body conjoins
    the database's atoms (constants kept verbatim); ``Q2 = {() : phi}``.
    Then ``D |= phi`` iff ``Q1`` is contained in ``Q2``.
    """
    q1 = RelationalQuery(head=(), atoms=tuple(db.atoms()))
    q2 = RelationalQuery(head=(), atoms=tuple(query.atoms))
    return q1, q2


def boolean_containment_equals_entailment(
    db: IndefiniteDatabase,
    query: ConjunctiveQuery,
    semantics: Semantics = Semantics.FIN,
) -> tuple[bool, bool]:
    """Both sides of Proposition 2.10 evaluated independently.

    Returns ``(entailment, containment_of_round_trip)``; the proposition
    asserts they are always equal.  Containment of the boolean round-trip
    queries is decided by mapping back through
    :func:`containment_to_entailment` — which, composed with
    :func:`entailment_to_containment`, exercises both reductions.
    """
    direct = explain(db, query, semantics=semantics).holds
    q1, q2 = entailment_to_containment(db, query)
    via_containment = contained(q1, q2, semantics=semantics)
    return direct, via_containment
