"""Relational databases with order, and conjunctive queries with inequalities.

Section 2 of the paper connects indefinite-order query answering to the
optimization problem studied by Klug: *containment of relational
conjunctive queries with inequalities*.  A relational database with order
is a finite two-sorted structure whose order relation is a linear order on
(a superset of) its active order domain — i.e. exactly a model of an
indefinite order database with a finite object domain.

A relational conjunctive query with inequalities is ``{x : phi(x, y)}``
with ``phi`` a conjunction of proper and order atoms; its *answer set* in
a structure ``M`` is the set of tuples ``a`` with ``M |= exists y .
phi(a, y)``.  With ``x`` empty the answer set is ``{()}`` or ``{}`` — a
boolean query.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

from repro.core.atoms import Atom, ProperAtom
from repro.core.models import Structure
from repro.core.query import ConjunctiveQuery
from repro.core.sorts import Term


@dataclass(frozen=True)
class RelationalQuery:
    """``{head : exists (rest) . atoms}`` — head variables are free."""

    head: tuple[Term, ...]
    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        for v in self.head:
            if not v.is_var:
                raise ValueError("head terms must be variables")

    @property
    def body(self) -> ConjunctiveQuery:
        """The body as a conjunctive query (all variables existential)."""
        return ConjunctiveQuery.from_atoms(self.atoms)

    def variables(self) -> set[Term]:
        """All variables of the body plus head."""
        return self.body.variables() | set(self.head)

    def __str__(self) -> str:
        head = ", ".join(str(v) for v in self.head)
        body = " & ".join(str(a) for a in self.atoms)
        return f"{{({head}) : {body}}}"


def answer_set(
    query: RelationalQuery, model: Structure
) -> set[tuple[int | str, ...]]:
    """``Ans(Q, M)``: head-variable substitutions making the body true."""
    domains: list[Sequence[int | str]] = []
    for v in query.head:
        if v.is_order:
            domains.append(range(model.order_size))
        else:
            domains.append(sorted(model.objects))
    answers: set[tuple[int | str, ...]] = set()
    for combo in product(*domains):
        if _satisfies_with(model, query, dict(zip(query.head, combo))):
            answers.add(combo)
    return answers


def _satisfies_with(
    model: Structure, query: RelationalQuery, preassigned: dict[Term, int | str]
) -> bool:
    """Model-check the body with some variables preassigned.

    Implemented by enumerating assignments for the remaining variables the
    same way the naive checker does; small models only.
    """
    body = query.body
    variables = sorted(body.variables() | set(query.head), key=lambda t: t.name)
    free = [v for v in variables if v not in preassigned]

    def domain(v: Term) -> Sequence[int | str]:
        if v.is_order:
            return range(model.order_size)
        return sorted(model.objects)

    facts = model.fact_dict

    def holds(assignment: dict[Term, int | str]) -> bool:
        for atom in body.atoms:
            if isinstance(atom, ProperAtom):
                tup = tuple(
                    assignment[t] if t.is_var else model.interpretation[t.name]
                    for t in atom.args
                )
                if tup not in facts.get(atom.pred, frozenset()):
                    return False
            else:
                left = (
                    assignment[atom.left]
                    if atom.left.is_var
                    else model.interpretation[atom.left.name]
                )
                right = (
                    assignment[atom.right]
                    if atom.right.is_var
                    else model.interpretation[atom.right.name]
                )
                from repro.core.atoms import Rel

                if atom.rel is Rel.LT and not left < right:
                    return False
                if atom.rel is Rel.LE and not left <= right:
                    return False
                if atom.rel is Rel.NE and not left != right:
                    return False
        return True

    for combo in product(*(domain(v) for v in free)):
        assignment = {**preassigned, **dict(zip(free, combo))}
        if holds(assignment):
            return True
    return False
