"""Core data model: terms, atoms, databases, queries, models, semantics."""

from repro.core.atoms import OrderAtom, ProperAtom, Rel, chain, le, lt, ne
from repro.core.database import IndefiniteDatabase, LabeledDag, MonadicDatabase
from repro.core.entailment import certain_answers, entails, explain
from repro.core.errors import (
    InconsistentError,
    NotConjunctiveError,
    NotMonadicError,
    NotSequentialError,
    ParseError,
    ReproError,
    SortError,
)
from repro.core.ordergraph import OrderGraph
from repro.core.query import (
    ConjunctiveQuery,
    DisjunctiveQuery,
    Query,
    as_conjunctive,
    as_dnf,
    eliminate_constants,
)
from repro.core.semantics import Semantics, is_tight, transform
from repro.core.sorts import Sort, Term, obj, objvar, ordc, ordvar

__all__ = [
    "ConjunctiveQuery",
    "DisjunctiveQuery",
    "IndefiniteDatabase",
    "InconsistentError",
    "LabeledDag",
    "MonadicDatabase",
    "NotConjunctiveError",
    "NotMonadicError",
    "NotSequentialError",
    "OrderAtom",
    "OrderGraph",
    "ParseError",
    "ProperAtom",
    "Query",
    "Rel",
    "ReproError",
    "Semantics",
    "Sort",
    "SortError",
    "Term",
    "as_conjunctive",
    "as_dnf",
    "certain_answers",
    "chain",
    "eliminate_constants",
    "entails",
    "explain",
    "is_tight",
    "le",
    "lt",
    "ne",
    "obj",
    "objvar",
    "ordc",
    "ordvar",
    "transform",
]
