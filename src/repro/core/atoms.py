"""Atomic formulae: proper atoms and order atoms.

Following Section 2 of the paper, atomic formulae come in two kinds:

1. *proper atoms* ``P(a1, ..., an)`` where ``P`` is a predicate and each
   ``ai`` is a constant or variable of the appropriate sort;
2. *order atoms* ``u < v``, ``u <= v`` (and, in the Section 7 extension,
   ``u != v``) where ``u`` and ``v`` are order constants or variables.

Both kinds are immutable and hashable so they can live in sets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.errors import SortError
from repro.core.sorts import Term


class Rel(enum.Enum):
    """The order relations usable in order atoms.

    ``LT`` and ``LE`` are the paper's core relations '<' and '<='; ``NE`` is
    the inequality '!=' of the Section 7 extension.
    """

    LT = "<"
    LE = "<="
    NE = "!="

    def __str__(self) -> str:
        return self.value

    def __lt__(self, other: "Rel") -> bool:
        # Total order so atoms (dataclass order=True) sort deterministically.
        if not isinstance(other, Rel):
            return NotImplemented
        return self.value < other.value

    @property
    def is_strict(self) -> bool:
        """True for '<'."""
        return self is Rel.LT


@dataclass(frozen=True, order=True)
class ProperAtom:
    """A proper atom ``P(t1, ..., tn)``.

    Args may mix sorts (e.g. ``IC(u, v, A)`` has two order arguments and one
    object argument).  A predicate is *monadic* when it has exactly one
    argument; the monadic fast path of the paper additionally requires that
    argument to be of order sort (Section 4 shows object-sort monadic atoms
    factor out of the query).
    """

    pred: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.pred:
            raise ValueError("predicate name must be nonempty")

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def is_ground(self) -> bool:
        """True when every argument is a constant."""
        return all(t.is_const for t in self.args)

    def variables(self) -> Iterator[Term]:
        """Yield the variable arguments (with repetition)."""
        return (t for t in self.args if t.is_var)

    def constants(self) -> Iterator[Term]:
        """Yield the constant arguments (with repetition)."""
        return (t for t in self.args if t.is_const)

    def substitute(self, mapping: Mapping[Term, Term]) -> "ProperAtom":
        """Replace terms by ``mapping`` (identity on unmapped terms)."""
        return ProperAtom(self.pred, tuple(mapping.get(t, t) for t in self.args))

    def __str__(self) -> str:
        return f"{self.pred}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True, order=True)
class OrderAtom:
    """An order atom ``left REL right`` between order-sorted terms."""

    left: Term
    rel: Rel
    right: Term

    def __post_init__(self) -> None:
        if not (self.left.is_order and self.right.is_order):
            raise SortError(
                f"order atom requires order-sorted terms, got "
                f"{self.left!r} {self.rel} {self.right!r}"
            )

    @property
    def is_ground(self) -> bool:
        """True when both sides are constants."""
        return self.left.is_const and self.right.is_const

    def variables(self) -> Iterator[Term]:
        """Yield the variable sides (with repetition)."""
        return (t for t in (self.left, self.right) if t.is_var)

    def substitute(self, mapping: Mapping[Term, Term]) -> "OrderAtom":
        """Replace terms by ``mapping`` (identity on unmapped terms)."""
        return OrderAtom(
            mapping.get(self.left, self.left),
            self.rel,
            mapping.get(self.right, self.right),
        )

    def __str__(self) -> str:
        return f"{self.left} {self.rel} {self.right}"


Atom = ProperAtom | OrderAtom


def lt(left: Term, right: Term) -> OrderAtom:
    """The atom ``left < right``."""
    return OrderAtom(left, Rel.LT, right)


def le(left: Term, right: Term) -> OrderAtom:
    """The atom ``left <= right``."""
    return OrderAtom(left, Rel.LE, right)


def ne(left: Term, right: Term) -> OrderAtom:
    """The atom ``left != right`` (Section 7 extension)."""
    return OrderAtom(left, Rel.NE, right)


def chain(terms: Iterable[Term], rel: Rel = Rel.LT) -> list[OrderAtom]:
    """Order atoms linking consecutive ``terms`` by ``rel``.

    ``chain([u, v, w])`` is ``[u < v, v < w]`` — convenient for observer
    logs and sequential queries.
    """
    terms = list(terms)
    return [OrderAtom(a, rel, b) for a, b in zip(terms, terms[1:])]


def atom_variables(atoms: Iterable[Atom]) -> set[Term]:
    """The set of variables occurring in ``atoms``."""
    out: set[Term] = set()
    for atom in atoms:
        out.update(atom.variables())
    return out


def atom_constants(atoms: Iterable[Atom]) -> set[Term]:
    """The set of constants occurring in ``atoms``."""
    out: set[Term] = set()
    for atom in atoms:
        if isinstance(atom, ProperAtom):
            out.update(atom.constants())
        else:
            out.update(t for t in (atom.left, atom.right) if t.is_const)
    return out
