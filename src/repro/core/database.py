"""Indefinite order databases and their labelled-dag (monadic) view.

An :class:`IndefiniteDatabase` is a finite set of ground proper atoms plus
ground order atoms over order constants (Section 2).  Under the open-world
semantics its models are all structures, over any compatible linear order,
supporting the atoms; query answering is entailment over all of them.

For monadic predicates the paper identifies databases with *vertex-labelled
dags* (Section 4): vertices are the order constants, each labelled with the
set ``D[u]`` of predicates asserted at ``u``.  :class:`LabeledDag` is that
representation; it is shared with monadic conjunctive queries (whose
vertices are order variables), exactly as the paper switches freely between
the two readings.  ``MonadicDatabase`` is an alias of :class:`LabeledDag`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.atoms import OrderAtom, ProperAtom, Rel
from repro.core.errors import InconsistentError, NotMonadicError, SortError
from repro.core.ordergraph import OrderGraph
from repro.core.sorts import Sort, Term, ordc
from repro.flexiwords.flexiword import FlexiWord


@dataclass(frozen=True)
class IndefiniteDatabase:
    """A finite set of ground proper atoms and ground order atoms."""

    proper_atoms: frozenset[ProperAtom]
    order_atoms: frozenset[OrderAtom]

    def __post_init__(self) -> None:
        order_names: set[str] = set()
        object_names: set[str] = set()
        for atom in self.proper_atoms:
            if not atom.is_ground:
                raise SortError(f"database proper atom must be ground: {atom}")
            for t in atom.args:
                (order_names if t.is_order else object_names).add(t.name)
        for atom in self.order_atoms:
            if not atom.is_ground:
                raise SortError(f"database order atom must be ground: {atom}")
            order_names.add(atom.left.name)
            order_names.add(atom.right.name)
        clash = order_names & object_names
        if clash:
            # One spelling, two sorts: the minimal-model constant map is
            # keyed by name, so this would silently corrupt verdicts.
            raise SortError(
                "constant name(s) used at both sorts: "
                + ", ".join(sorted(clash))
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def of(cls, *atoms: ProperAtom | OrderAtom) -> "IndefiniteDatabase":
        """Build a database from a flat sequence of atoms."""
        return cls.from_atoms(atoms)

    @classmethod
    def from_atoms(
        cls, atoms: Iterable[ProperAtom | OrderAtom]
    ) -> "IndefiniteDatabase":
        """Build a database from any iterable of atoms."""
        proper: set[ProperAtom] = set()
        order: set[OrderAtom] = set()
        for atom in atoms:
            if isinstance(atom, ProperAtom):
                proper.add(atom)
            else:
                order.add(atom)
        return cls(frozenset(proper), frozenset(order))

    @classmethod
    def empty(cls) -> "IndefiniteDatabase":
        """The empty database (its unique minimal model is empty)."""
        return cls(frozenset(), frozenset())

    # -- inspection ---------------------------------------------------------

    def atoms(self) -> Iterator[ProperAtom | OrderAtom]:
        """All atoms, proper first (deterministic order)."""
        yield from sorted(self.proper_atoms)
        yield from sorted(self.order_atoms)

    @property
    def order_constants(self) -> set[str]:
        """Names of all order constants appearing anywhere in the database."""
        out: set[str] = set()
        for atom in self.proper_atoms:
            out.update(t.name for t in atom.args if t.is_order)
        for atom in self.order_atoms:
            out.add(atom.left.name)
            out.add(atom.right.name)
        return out

    @property
    def object_constants(self) -> set[str]:
        """Names of all object constants appearing in proper atoms."""
        out: set[str] = set()
        for atom in self.proper_atoms:
            out.update(t.name for t in atom.args if t.is_object)
        return out

    @property
    def predicates(self) -> dict[str, int]:
        """Map predicate name to arity."""
        return {a.pred: a.arity for a in self.proper_atoms}

    @property
    def has_neq(self) -> bool:
        """True when some order atom uses '!=' (Section 7 extension)."""
        return any(a.rel is Rel.NE for a in self.order_atoms)

    def size(self) -> int:
        """Total number of atoms."""
        return len(self.proper_atoms) + len(self.order_atoms)

    def graph(self) -> OrderGraph:
        """The order graph over this database's order constants."""
        extra = set()
        for atom in self.proper_atoms:
            extra.update(t.name for t in atom.args if t.is_order)
        return OrderGraph.from_atoms(sorted(self.order_atoms), extra)

    def width(self) -> int:
        """The width of the (normalized) order graph (Section 2)."""
        return self.graph().normalize().graph.width()

    def is_consistent(self) -> bool:
        """True when the order atoms admit a compatible linear order."""
        return self.graph().is_consistent()

    # -- normalization --------------------------------------------------------

    def normalized(self) -> tuple["IndefiniteDatabase", dict[str, str]]:
        """Apply rules N1/N2, rewriting proper atoms through the identification.

        Returns the normalized database and the canonical-name mapping.
        Raises :class:`InconsistentError` when the database has no model.
        """
        norm = self.graph().normalize()
        if not norm.consistent:
            raise InconsistentError("database order atoms are inconsistent")
        term_map = {
            ordc(old): ordc(new) for old, new in norm.canon.items() if old != new
        }
        proper = frozenset(a.substitute(term_map) for a in self.proper_atoms)
        term_of = {v: ordc(v) for v in norm.graph.vertices}
        order = frozenset(norm.graph.to_atoms(term_of))
        return IndefiniteDatabase(proper, order), norm.canon

    # -- monadic view ------------------------------------------------------------

    def is_monadic(self) -> bool:
        """True when every proper atom is unary over an order constant."""
        return all(
            a.arity == 1 and a.args[0].is_order for a in self.proper_atoms
        )

    def monadic(self) -> "LabeledDag":
        """The labelled-dag view (requires :meth:`is_monadic`)."""
        if not self.is_monadic():
            raise NotMonadicError(
                "database has non-monadic or object-argument predicates"
            )
        graph = self.graph()
        labels: dict[str, set[str]] = {v: set() for v in graph.vertices}
        for atom in self.proper_atoms:
            labels[atom.args[0].name].add(atom.pred)
        return LabeledDag(graph, {v: frozenset(s) for v, s in labels.items()})

    # -- combination ----------------------------------------------------------------

    def union(self, other: "IndefiniteDatabase") -> "IndefiniteDatabase":
        """The union of the two atom sets (constants shared by name)."""
        return IndefiniteDatabase(
            self.proper_atoms | other.proper_atoms,
            self.order_atoms | other.order_atoms,
        )

    def __or__(self, other: "IndefiniteDatabase") -> "IndefiniteDatabase":
        return self.union(other)

    def renamed(self, suffix: str) -> "IndefiniteDatabase":
        """Rename every order constant by appending ``suffix``.

        Object constants are left alone (gadget constructions share them).
        Used to take disjoint unions of gadget components.
        """
        def rn(t: Term) -> Term:
            if t.is_order and t.is_const:
                return ordc(t.name + suffix)
            return t

        proper = frozenset(
            ProperAtom(a.pred, tuple(rn(t) for t in a.args))
            for a in self.proper_atoms
        )
        order = frozenset(
            OrderAtom(rn(a.left), a.rel, rn(a.right)) for a in self.order_atoms
        )
        return IndefiniteDatabase(proper, order)

    def __str__(self) -> str:
        return "; ".join(str(a) for a in self.atoms())


class LabeledDag:
    """A vertex-labelled order dag: the monadic database/query representation.

    Attributes:
        graph: the underlying :class:`OrderGraph`.
        labels: maps each vertex to its set ``D[u]`` of predicate names.
    """

    def __init__(
        self, graph: OrderGraph, labels: Mapping[str, frozenset[str]]
    ) -> None:
        self.graph = graph
        self.labels: dict[str, frozenset[str]] = {
            v: frozenset(labels.get(v, frozenset())) for v in graph.vertices
        }

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_flexiword(cls, word: FlexiWord, prefix: str = "w") -> "LabeledDag":
        """The width-one database corresponding to a flexi-word."""
        graph = OrderGraph()
        names = [f"{prefix}{i}" for i in range(len(word.letters))]
        for name in names:
            graph.add_vertex(name)
        for i, rel in enumerate(word.rels):
            graph.add_edge(names[i], names[i + 1], rel)
        labels = {name: word.letters[i] for i, name in enumerate(names)}
        return cls(graph, labels)

    @classmethod
    def from_chains(
        cls, chains: Iterable[FlexiWord], prefix: str = "c"
    ) -> "LabeledDag":
        """Disjoint union of width-one databases — a k-observer database."""
        graph = OrderGraph()
        labels: dict[str, frozenset[str]] = {}
        for ci, word in enumerate(chains):
            sub = cls.from_flexiword(word, prefix=f"{prefix}{ci}_")
            for v in sub.graph.vertices:
                graph.add_vertex(v)
                labels[v] = sub.labels[v]
            for u, v, rel in sub.graph.edges():
                graph.add_edge(u, v, rel)
        return cls(graph, labels)

    # -- inspection ---------------------------------------------------------

    @property
    def vertices(self) -> set[str]:
        """The vertex set."""
        return self.graph.vertices

    @property
    def predicates(self) -> frozenset[str]:
        """All predicate names used in labels."""
        out: set[str] = set()
        for s in self.labels.values():
            out |= s
        return frozenset(out)

    def label(self, v: str) -> frozenset[str]:
        """The label set ``D[v]``."""
        return self.labels[v]

    def is_empty(self) -> bool:
        """True when there are no vertices."""
        return not self.graph.vertices

    def size(self) -> int:
        """Vertices plus edges plus label entries (a |D| proxy)."""
        return (
            len(self.graph.vertices)
            + sum(1 for _ in self.graph.edges())
            + sum(len(s) for s in self.labels.values())
        )

    def width(self) -> int:
        """Width of the underlying graph."""
        return self.graph.width()

    # -- transformation ---------------------------------------------------------

    def normalized(self) -> "LabeledDag":
        """Contract '<='-cycles, unioning the labels of identified vertices.

        Raises :class:`InconsistentError` on a '<' cycle.
        """
        norm = self.graph.normalize()
        if not norm.consistent:
            raise InconsistentError("labelled dag has a '<' cycle")
        labels: dict[str, set[str]] = {v: set() for v in norm.graph.vertices}
        for old, new in norm.canon.items():
            labels[new] |= self.labels.get(old, frozenset())
        return LabeledDag(norm.graph, {v: frozenset(s) for v, s in labels.items()})

    def restrict(self, keep: Iterable[str]) -> "LabeledDag":
        """The induced sub-dag on ``keep``."""
        keep = set(keep)
        return LabeledDag(
            self.graph.induced(keep),
            {v: self.labels[v] for v in keep if v in self.labels},
        )

    def to_database(self) -> IndefiniteDatabase:
        """Back to an :class:`IndefiniteDatabase` (vertices become constants)."""
        term_of = {v: ordc(v) for v in self.graph.vertices}
        proper = frozenset(
            ProperAtom(p, (term_of[v],))
            for v, preds in self.labels.items()
            for p in preds
        )
        order = frozenset(self.graph.to_atoms(term_of))
        return IndefiniteDatabase(proper, order)

    # -- paths (Section 4) ---------------------------------------------------------

    def iter_paths(self) -> Iterator[FlexiWord]:
        """The paths of the dag: maximal sequential sub-dags, as flexi-words.

        A path runs from a source to a sink along edges; an isolated vertex
        is a one-letter path.  The number of paths can be exponential in the
        dag size (the paper notes this); this is a generator.
        """
        graph = self.graph
        sources = sorted(graph.minimal_vertices())

        def walk(v: str) -> Iterator[tuple[list[str], list[Rel]]]:
            succs = sorted(graph.successors(v))
            if not succs:
                yield [v], []
                return
            for w in succs:
                rel = graph.edge_label(v, w)
                for verts, rels in walk(w):
                    yield [v] + verts, [rel] + rels

        for s in sources:
            for verts, rels in walk(s):
                yield FlexiWord(
                    tuple(self.labels[v] for v in verts), tuple(rels)
                )

    def paths(self) -> list[FlexiWord]:
        """All paths as a list (see :meth:`iter_paths` for the caveat)."""
        return list(self.iter_paths())

    def to_flexiword(self) -> FlexiWord:
        """The flexi-word of a width-<=1 dag (raises otherwise).

        The dag is normalized first; width one means every two vertices
        are comparable, so the vertices form a chain.  The separator
        between consecutive vertices is '<' when a path through a '<'
        edge connects them (redundant transitive edges are tolerated) and
        '<=' otherwise.
        """
        dag = self.normalized()
        if not dag.graph.vertices:
            return FlexiWord.empty()
        if dag.graph.width() > 1:
            raise ValueError("dag has width > 1; it is not sequential")
        reach = dag.graph.reachability()
        chain = sorted(dag.graph.vertices, key=lambda v: -len(reach[v]))
        strict = dag.graph.strict_reachability()
        letters = tuple(dag.labels[v] for v in chain)
        rels = tuple(
            Rel.LT if b in strict[a] else Rel.LE
            for a, b in zip(chain, chain[1:])
        )
        return FlexiWord(letters, rels)

    def __str__(self) -> str:
        return str(self.to_database())


MonadicDatabase = LabeledDag
