"""Top-level one-shot query answering: ``entails(db, query)`` and friends.

These are thin wrappers over the session/prepared-plan API
(:mod:`repro.api`): each call spins up a throwaway
:class:`~repro.api.session.Session`, compiles the query once and
executes it.  The pipeline they run (each step a construction from the
paper, now split between the planner and the executor in
:mod:`repro.api.plan`):

1. vacuous truth for inconsistent databases (no models);
2. constant elimination (Section 2's ``P_u`` trick) so the query is
   constant-free;
3. semantics reduction (Propositions 2.2/2.3, Corollary 2.6) down to the
   finite-model semantics;
4. query normalization (rules N1/N2), dropping inconsistent disjuncts;
5. '!=' expansion for queries (Section 7: ``u != v  ->  u < v  v  v < u``);
6. dispatch:
   - monadic databases and queries (after the Section 4 object/order
     split) route to the PTIME machinery — SEQ for sequential queries,
     path decomposition or the Theorem 4.7 search for conjunctive ones,
     the Theorem 5.3 search for disjunctions;
   - everything else (n-ary predicates, '!=' in the database) runs the
     minimal-model brute force, which is the generic co-NP procedure of
     Proposition 3.1.

Long-running callers — anything answering more than one query, or
re-querying a database that changes in place — should hold a
:class:`~repro.api.session.Session` instead: the warm order-graph
closures and region caches then carry over between calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.database import IndefiniteDatabase
from repro.core.models import Structure
from repro.core.query import Query
from repro.core.semantics import Semantics
from repro.core.sorts import Term
from repro.flexiwords.flexiword import Word


@dataclass(frozen=True)
class EntailmentReport:
    """Result of :func:`explain`: the verdict plus how it was obtained."""

    holds: bool
    method: str
    countermodel: Structure | Word | None = None

    def __bool__(self) -> bool:
        return self.holds


def entails(
    db: IndefiniteDatabase,
    query: Query,
    semantics: Semantics = Semantics.FIN,
    method: str = "auto",
) -> bool:
    """Does every model of ``db`` (under ``semantics``) satisfy ``query``?"""
    return explain(db, query, semantics=semantics, method=method).holds


def explain(
    db: IndefiniteDatabase,
    query: Query,
    semantics: Semantics = Semantics.FIN,
    method: str = "auto",
) -> EntailmentReport:
    """Like :func:`entails`, reporting the algorithm used and a countermodel.

    ``method`` may be ``auto``, ``bruteforce``, ``paths``,
    ``bounded_width``, ``theorem53``, ``basis`` or ``seq`` (the last five
    require monadic inputs and, for ``seq``, a sequential conjunctive
    query).
    """
    from repro.api.session import Session

    result = Session(db).prepare(query, semantics, method).execute()
    return EntailmentReport(result.holds, result.method, result.countermodel)


def certain_answers(
    db: IndefiniteDatabase,
    query: Query,
    free_vars: tuple[Term, ...],
    semantics: Semantics = Semantics.FIN,
) -> set[tuple[str, ...]]:
    """Certain answers of an open query: tuples ``c`` with ``D |= phi[c]``.

    Free variables must be object-sorted; candidates range over the
    database's object constants (the usual active-domain convention).
    """
    from repro.api.session import Session

    return Session(db).certain_answers(query, free_vars, semantics=semantics)


def _dag_to_query(dag):
    """Back-compat alias (the implementation moved to the planner)."""
    from repro.api.plan import dag_to_query

    return dag_to_query(dag)
