"""Top-level query answering: ``entails(db, query)`` and friends.

This is the public entry point tying the whole paper together.  The
pipeline (each step a construction from the paper):

1. vacuous truth for inconsistent databases (no models);
2. constant elimination (Section 2's ``P_u`` trick) so the query is
   constant-free;
3. semantics reduction (Propositions 2.2/2.3, Corollary 2.6) down to the
   finite-model semantics;
4. query normalization (rules N1/N2), dropping inconsistent disjuncts;
5. '!=' expansion for queries (Section 7: ``u != v  ->  u < v  v  v < u``);
6. dispatch:
   - monadic databases and queries (after the Section 4 object/order
     split) route to the PTIME machinery — SEQ for sequential queries,
     path decomposition or the Theorem 4.7 search for conjunctive ones,
     the Theorem 5.3 search for disjunctions;
   - everything else (n-ary predicates, '!=' in the database) runs the
     minimal-model brute force, which is the generic co-NP procedure of
     Proposition 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product

from repro.algorithms.bruteforce import entails_bruteforce
from repro.algorithms.conjunctive import bounded_width_entails_dag, paths_entails_dag
from repro.algorithms.disjunctive import theorem53
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.models import Structure
from repro.core.query import (
    ConjunctiveQuery,
    DisjunctiveQuery,
    Query,
    as_dnf,
    eliminate_constants,
)
from repro.core.semantics import Semantics, transform
from repro.core.sorts import Term
from repro.flexiwords.flexiword import Word
from repro.inequality.neq import expand_query_neq

#: Databases at most this wide use the Theorem 5.3 search for disjunctive
#: monadic queries; wider ones fall back to model enumeration (both are
#: exponential in the width, but the state graph is gentler in practice).
_WIDTH_CUTOFF = 6

#: Disjunct-count cutoff for the Theorem 5.3 search, whose state graph is
#: exponential in the number of disjuncts (Proposition 5.4).
_DISJUNCT_CUTOFF = 4


@dataclass(frozen=True)
class EntailmentReport:
    """Result of :func:`explain`: the verdict plus how it was obtained."""

    holds: bool
    method: str
    countermodel: Structure | Word | None = None

    def __bool__(self) -> bool:
        return self.holds


def entails(
    db: IndefiniteDatabase,
    query: Query,
    semantics: Semantics = Semantics.FIN,
    method: str = "auto",
) -> bool:
    """Does every model of ``db`` (under ``semantics``) satisfy ``query``?"""
    return explain(db, query, semantics=semantics, method=method).holds


def explain(
    db: IndefiniteDatabase,
    query: Query,
    semantics: Semantics = Semantics.FIN,
    method: str = "auto",
) -> EntailmentReport:
    """Like :func:`entails`, reporting the algorithm used and a countermodel.

    ``method`` may be ``auto``, ``bruteforce``, ``paths``,
    ``bounded_width``, ``theorem53`` or ``seq`` (the last four require
    monadic inputs and, for ``seq``, a sequential conjunctive query).
    """
    if not db.is_consistent():
        return EntailmentReport(True, "vacuous")

    dnf = as_dnf(query)
    if dnf.constants():
        db, dnf = eliminate_constants(db, dnf)
    db, dnf = transform(db, dnf, semantics)
    dnf = dnf.normalized()
    if dnf.has_neq:
        dnf = expand_query_neq(dnf).normalized()
    if not dnf.disjuncts:
        witness = _first_minimal_model(db)
        return EntailmentReport(False, "unsatisfiable-query", witness)
    if any(d.is_empty() for d in dnf.disjuncts):
        return EntailmentReport(True, "trivial")

    if method == "bruteforce":
        result = entails_bruteforce(db, dnf)
        return EntailmentReport(result.holds, "bruteforce", result.countermodel)

    split = _monadic_split(db, dnf) if not db.has_neq else None
    if split is None:
        if method != "auto":
            raise ValueError(
                f"method {method!r} requires monadic, '!='-free inputs"
            )
        result = entails_bruteforce(db, dnf)
        return EntailmentReport(result.holds, "bruteforce", result.countermodel)

    dag, disjuncts = split
    if not disjuncts:
        # Every disjunct's definite object part already fails.
        witness = _first_minimal_model(db)
        return EntailmentReport(False, "object-part", witness)
    if any(not d.graph.vertices for d in disjuncts):
        return EntailmentReport(True, "object-part")

    mq = DisjunctiveQuery(
        tuple(_dag_to_query(d) for d in disjuncts)
    )

    if method == "seq":
        if len(disjuncts) != 1:
            raise ValueError("method 'seq' needs a single sequential disjunct")
        from repro.algorithms.seq import seq_countermodel

        counter = seq_countermodel(dag, disjuncts[0].to_flexiword())
        return EntailmentReport(counter is None, "seq", counter)
    if method == "paths":
        if len(disjuncts) != 1:
            raise ValueError("method 'paths' needs a conjunctive query")
        return EntailmentReport(
            paths_entails_dag(dag, disjuncts[0]), "paths"
        )
    if method == "bounded_width":
        if len(disjuncts) != 1:
            raise ValueError("method 'bounded_width' needs a conjunctive query")
        return EntailmentReport(
            bounded_width_entails_dag(dag, disjuncts[0]), "bounded_width"
        )
    if method == "theorem53":
        result = theorem53(dag, mq)
        return EntailmentReport(result.holds, "theorem53", result.countermodel)
    if method == "basis":
        # Section 6: D |= Phi iff D_Phi <= D in the dominance order.
        if len(disjuncts) != 1:
            raise ValueError("method 'basis' needs a conjunctive query")
        from repro.flexiwords.wqo import dominates

        return EntailmentReport(dominates(disjuncts[0], dag), "basis")
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")

    # -- auto dispatch over the monadic fast paths -------------------------
    if len(disjuncts) == 1:
        qdag = disjuncts[0]
        if qdag.width() <= 1:
            from repro.algorithms.seq import seq_countermodel

            counter = seq_countermodel(dag, qdag.to_flexiword())
            return EntailmentReport(counter is None, "seq", counter)
        if dag.width() <= _WIDTH_CUTOFF:
            holds = bounded_width_entails_dag(dag, qdag)
            return EntailmentReport(holds, "bounded_width")
        return EntailmentReport(paths_entails_dag(dag, qdag), "paths")
    # The Theorem 5.3 state graph is exponential in the number of disjuncts
    # (Proposition 5.4 shows this is unavoidable); for large disjunctions
    # enumerate minimal models with the Corollary 5.1 checker instead.
    if len(disjuncts) <= _DISJUNCT_CUTOFF and dag.width() <= _WIDTH_CUTOFF:
        result = theorem53(dag, mq)
        return EntailmentReport(result.holds, "theorem53", result.countermodel)
    from repro.algorithms.bruteforce import entails_bruteforce_monadic

    result = entails_bruteforce_monadic(dag, mq)
    return EntailmentReport(
        result.holds, "bruteforce-monadic", result.countermodel
    )


def _first_minimal_model(db: IndefiniteDatabase) -> Structure | None:
    from repro.core.models import iter_minimal_models

    for model in iter_minimal_models(db):
        return model
    return None


def _dag_to_query(dag: LabeledDag) -> ConjunctiveQuery:
    from repro.core.atoms import ProperAtom
    from repro.core.sorts import ordvar

    atoms = []
    for v, preds in dag.labels.items():
        for p in sorted(preds):
            atoms.append(ProperAtom(p, (ordvar(v),)))
    term_of = {v: ordvar(v) for v in dag.graph.vertices}
    atoms.extend(dag.graph.to_atoms(term_of))
    return ConjunctiveQuery.from_atoms(
        atoms, {ordvar(v) for v in dag.graph.vertices}
    )


def _monadic_split(
    db: IndefiniteDatabase, dnf: DisjunctiveQuery
) -> tuple[LabeledDag, list[LabeledDag]] | None:
    """The Section 4 object/order split for monadic inputs.

    Splits each disjunct into a definite *object part* (unary predicates
    over object constants — identical in every model, so evaluated directly
    against the database facts) and an order-sorted monadic part.  Returns
    the database's labelled dag plus the order-part dags of the disjuncts
    whose object part succeeds; None when the inputs are not monadic.
    """
    object_facts: dict[str, set[str]] = {}
    order_label: dict[str, set[str]] = {}
    for atom in db.proper_atoms:
        if atom.arity != 1:
            return None
        arg = atom.args[0]
        if arg.is_object:
            object_facts.setdefault(atom.pred, set()).add(arg.name)
        else:
            order_label.setdefault(arg.name, set()).add(atom.pred)

    graph = db.graph()
    dag = LabeledDag(
        graph,
        {v: frozenset(order_label.get(v, set())) for v in graph.vertices},
    )

    surviving: list[LabeledDag] = []
    for d in dnf.disjuncts:
        object_atoms = []
        order_atoms = []
        for atom in d.proper_atoms:
            if atom.arity != 1:
                return None
            if atom.args[0].is_object:
                object_atoms.append(atom)
            else:
                order_atoms.append(atom)
        if not _object_part_holds(object_atoms, object_facts, db):
            continue
        order_part = ConjunctiveQuery.from_atoms(
            order_atoms + list(d.order_atoms), d.extra_order_vars
        )
        normalized = order_part.normalized()
        if normalized is None:
            continue
        surviving.append(normalized.monadic_dag())
    return dag, surviving


def _object_part_holds(
    object_atoms: list,
    object_facts: dict[str, set[str]],
    db: IndefiniteDatabase,
) -> bool:
    """Evaluate the definite object part directly against the facts."""
    if not object_atoms:
        return True
    variables = sorted(
        {a.args[0] for a in object_atoms if a.args[0].is_var},
        key=lambda t: t.name,
    )
    domain = sorted(db.object_constants)

    def ok(assignment: dict[Term, str]) -> bool:
        for atom in object_atoms:
            arg = atom.args[0]
            value = assignment[arg] if arg.is_var else arg.name
            if value not in object_facts.get(atom.pred, set()):
                return False
        return True

    for combo in iter_product(domain, repeat=len(variables)):
        if ok(dict(zip(variables, combo))):
            return True
    # A query with object atoms but an empty object domain cannot hold.
    return not variables and ok({})


def certain_answers(
    db: IndefiniteDatabase,
    query: Query,
    free_vars: tuple[Term, ...],
    semantics: Semantics = Semantics.FIN,
) -> set[tuple[str, ...]]:
    """Certain answers of an open query: tuples ``c`` with ``D |= phi[c]``.

    Free variables must be object-sorted; candidates range over the
    database's object constants (the usual active-domain convention).
    """
    from repro.core.sorts import obj

    if any(v.is_order for v in free_vars):
        raise ValueError("free variables must be object-sorted")
    dnf = as_dnf(query)
    answers: set[tuple[str, ...]] = set()
    domain = sorted(db.object_constants)
    for combo in iter_product(domain, repeat=len(free_vars)):
        mapping = {v: obj(c) for v, c in zip(free_vars, combo)}
        if entails(db, dnf.substitute(mapping), semantics=semantics):
            answers.add(combo)
    return answers
