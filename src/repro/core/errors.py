"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SortError(ReproError):
    """A term was used at a position of the wrong sort.

    Raised, for example, when an order constant appears as the argument of a
    proper predicate position typed as object, or when the two sides of an
    order atom are not both of order sort.
    """


class InconsistentError(ReproError):
    """A database or query is inconsistent (its order graph has a '<' cycle).

    Section 2 of the paper: a normalized database or conjunctive query is
    inconsistent if and only if its order graph contains a cycle through an
    edge labelled '<' (cycles of only '<=' edges are contracted by rule N1).
    """


class NotMonadicError(ReproError):
    """An operation requiring monadic predicates was applied to n-ary data."""


class NotSequentialError(ReproError):
    """An operation requiring a sequential query received a branching one."""


class NotConjunctiveError(ReproError):
    """An operation requiring a conjunctive query received a disjunction."""


class ParseError(ReproError):
    """The textual database/query DSL could not be parsed."""
