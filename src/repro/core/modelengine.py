"""Bitset minimal-model engine: region-DAG dynamic programming.

The seed minimal-model machinery (:mod:`repro.core.models`) enumerates the
valid blocks of every region by walking *all* subsets of its minor vertices
(``itertools.combinations``) and filtering, then materializes and checks
each block sequence independently.  This module replaces that with two
mask-level ideas:

* **direct block generation** — a valid block is a nonempty subset of the
  region's minor vertices that is closed under '<='-predecessors (S2) and
  contains no '!=' pair.  Every in-region predecessor of a minor vertex is
  itself minor (a tainting path through the predecessor would taint the
  vertex), so valid blocks are exactly the '!='-free *downsets* of the
  minor poset.  :meth:`ModelEngine.blocks` walks those downsets directly —
  one include/exclude decision per vertex, each an O(1) mask test —
  instead of filtering ``2^k`` subsets, and memoizes the result per region
  bitmask.  Block lists come out in the seed's enumeration order (size
  ascending, then lexicographic), so the sequence enumeration order is
  bit-for-bit identical to the naive oracle.

* **region-DAG dynamic programming** — distinct block-sequence prefixes
  revisit the same remaining-vertex region; :class:`RegionDP` memoizes,
  per ``(region, query-satisfaction state)`` pair, whether some completion
  falsifies the query (and how many do).  The satisfaction state is
  supplied by a *machine* (see :mod:`repro.algorithms.modelcheck`):
  the monadic machine carries the earliest-feasible-point frontier of each
  query dag, the n-ary machine the still-viable grounding set of the
  candidate pool.  Machines signal the two absorbing outcomes with the
  :data:`SATISFIED` / :data:`ALL_FAIL` sentinels, which let entailment,
  countermodel counting and countermodel enumeration short-circuit whole
  subtrees (``ALL_FAIL`` regions contribute ``count(region)`` falsifying
  models in one arithmetic step, with the witness materialized lazily).

Regions are plain ``int`` bitmasks over the engine's vertex interning.
A :class:`ModelEngine` is purely structural (it depends only on the
graph), so :class:`repro.core.regions.RegionCache` memoizes one per graph
and shares it across snapshot forks like the other structural memos; its
tables are append-only and must be treated as read-only shared objects.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

from repro.core.ordergraph import OrderGraph
from repro.core.atoms import Rel

#: Absorbing machine outcome: the query is satisfied by *every* completion
#: of the current prefix — the subtree contains no countermodel.
SATISFIED = object()

#: Absorbing machine outcome: the query is falsified by *every* completion
#: of the current prefix — every sequence below is a countermodel.
ALL_FAIL = object()


class ModelEngine:
    """Mask-level minimal-model tables over one fixed order graph.

    The graph must not be mutated while the engine is alive (the same
    contract as :class:`repro.core.regions.RegionCache`, which owns the
    shared instances).  All memo dicts are append-only; instances handed
    out by a cache are shared and read-only.
    """

    __slots__ = (
        "graph",
        "verts",
        "index",
        "n",
        "full",
        "succ",
        "lepred",
        "lt_edges",
        "neq",
        "_minors",
        "_blocks",
        "_counts",
        "_names",
        "_keys",
    )

    def __init__(self, graph: OrderGraph) -> None:
        self.graph = graph
        verts = sorted(graph.vertices)
        index = {v: i for i, v in enumerate(verts)}
        n = len(verts)
        succ = [0] * n
        lepred = [0] * n
        lt_edges: list[tuple[int, int]] = []
        for u, v, rel in graph.edges():
            ui, vi = index[u], index[v]
            succ[ui] |= 1 << vi
            if rel is Rel.LE:
                lepred[vi] |= 1 << ui
            else:
                lt_edges.append((ui, vi))
        neq = [0] * n
        for pair in graph.neq_pairs:
            names = sorted(pair)
            if len(names) == 2:
                i, j = index[names[0]], index[names[1]]
                neq[i] |= 1 << j
                neq[j] |= 1 << i
        self.verts = verts
        self.index = index
        self.n = n
        self.full = (1 << n) - 1
        self.succ = succ
        self.lepred = lepred
        self.lt_edges = lt_edges
        self.neq = neq
        self._minors: dict[int, int] = {}
        self._blocks: dict[int, tuple[int, ...]] = {}
        self._counts: dict[int, int] = {}
        self._names: dict[int, frozenset[str]] = {}
        self._keys: dict[int, tuple[str, ...]] = {}

    # -- decoding ----------------------------------------------------------

    def mask_of(self, vertices) -> int:
        """Encode an iterable of vertex names as a region bitmask."""
        m = 0
        for v in vertices:
            m |= 1 << self.index[v]
        return m

    def names(self, mask: int) -> frozenset[str]:
        """Decode a bitmask into a frozenset of vertex names (memoized)."""
        try:
            return self._names[mask]
        except KeyError:
            verts = self.verts
            out = []
            m = mask
            while m:
                low = m & -m
                out.append(verts[low.bit_length() - 1])
                m ^= low
            value = self._names[mask] = frozenset(out)
            return value

    def _key(self, mask: int) -> tuple[str, ...]:
        """The seed enumeration sort key of a block: its sorted name tuple."""
        try:
            return self._keys[mask]
        except KeyError:
            value = self._keys[mask] = tuple(sorted(self.names(mask)))
            return value

    # -- per-region structure ----------------------------------------------

    def minors(self, region: int) -> int:
        """Minor vertices of ``region``: not reachable from an in-region
        '<'-edge head (memoized bitmask BFS)."""
        try:
            return self._minors[region]
        except KeyError:
            pass
        heads = 0
        for ui, vi in self.lt_edges:
            if (region >> ui) & 1 and (region >> vi) & 1:
                heads |= 1 << vi
        succ = self.succ
        seen = heads
        frontier = heads
        while frontier:
            nxt = 0
            m = frontier
            while m:
                low = m & -m
                nxt |= succ[low.bit_length() - 1]
                m ^= low
            frontier = nxt & region & ~seen
            seen |= frontier
        value = self._minors[region] = region & ~seen
        return value

    def blocks(self, region: int) -> tuple[int, ...]:
        """All valid blocks of ``region``, in the seed's enumeration order.

        Generated by walking the '!='-free downsets of the minor poset
        (each in-region '<='-predecessor of a minor is minor, so closure
        under S2 never leaves the minor set), then sorted by (size,
        lexicographic names) to match the seed's combinations order.
        Memoized per region bitmask.
        """
        try:
            return self._blocks[region]
        except KeyError:
            pass
        minors = self.minors(region)
        lepred = self.lepred
        # topological order of the minors under in-region '<=' edges
        order: list[int] = []
        placed = 0
        remaining = minors
        stuck = False
        while remaining:
            avail = 0
            m = remaining
            while m:
                low = m & -m
                v = low.bit_length() - 1
                m ^= low
                if lepred[v] & region & ~placed == 0:
                    avail |= low
            if not avail:
                stuck = True  # '<='-cycle (unnormalized input)
                break
            m = avail
            while m:
                low = m & -m
                order.append(low.bit_length() - 1)
                m ^= low
            placed |= avail
            remaining &= ~avail
        if stuck:
            found = self._blocks_fallback(region, minors)
        else:
            found = []
            lp = [lepred[v] & region for v in order]
            nq = [self.neq[v] & minors for v in order]
            k = len(order)

            def walk(pos: int, chosen: int) -> None:
                if pos == k:
                    if chosen:
                        found.append(chosen)
                    return
                walk(pos + 1, chosen)
                if lp[pos] & ~chosen == 0 and nq[pos] & chosen == 0:
                    walk(pos + 1, chosen | (1 << order[pos]))

            walk(0, 0)
        found.sort(key=lambda b: (b.bit_count(), self._key(b)))
        value = self._blocks[region] = tuple(found)
        return value

    def _blocks_fallback(self, region: int, minors: int) -> list[int]:
        """Subset-filter block generation for '<='-cyclic (unnormalized)
        regions — the seed semantics, kept for exactness on odd inputs."""
        ids = []
        m = minors
        while m:
            low = m & -m
            ids.append(low.bit_length() - 1)
            m ^= low
        lepred = self.lepred
        neq = self.neq
        out = []
        for r in range(1, len(ids) + 1):
            for combo in combinations(ids, r):
                mask = 0
                for v in combo:
                    mask |= 1 << v
                if any(lepred[v] & region & ~mask for v in combo):
                    continue
                if any(neq[v] & mask for v in combo):
                    continue
                out.append(mask)
        return out

    # -- counting and enumeration ------------------------------------------

    def count(self, region: int) -> int:
        """The number of block sequences (minimal models) of ``region``."""
        try:
            return self._counts[region]
        except KeyError:
            pass
        if region == 0:
            value = 1
        else:
            value = sum(self.count(region & ~b) for b in self.blocks(region))
        self._counts[region] = value
        return value

    def iter_sequences(self, region: int) -> Iterator[tuple[int, ...]]:
        """All block sequences of ``region`` as mask tuples (seed order)."""
        if region == 0:
            yield ()
            return
        for b in self.blocks(region):
            for rest in self.iter_sequences(region & ~b):
                yield (b,) + rest

    def first_sequence(self, region: int) -> tuple[int, ...]:
        """The DFS-first block sequence of ``region``."""
        out: list[int] = []
        while region:
            b = self.blocks(region)[0]
            out.append(b)
            region &= ~b
        return tuple(out)


def engine_for(graph: OrderGraph, caches=None) -> ModelEngine:
    """The shared engine for ``graph`` from a region-cache hub, or a fresh
    one when no hub is supplied."""
    if caches is not None:
        return caches.get(graph).model_engine()
    return ModelEngine(graph)


class RegionDP:
    """Dynamic programming over the region DAG for one satisfaction machine.

    ``machine`` supplies ``initial(full_region)`` and
    ``advance(state, region, block)``; both return a hashable state or one
    of the absorbing sentinels :data:`SATISFIED` / :data:`ALL_FAIL`.
    States must be pure functions of the *placement history they encode*
    (which is what makes ``(region, state)`` a sound memo key): a pair of
    prefixes reaching the same region with the same state has exactly the
    same completion outcomes.
    """

    __slots__ = ("engine", "machine", "_init", "_fails", "_counts")

    def __init__(self, engine: ModelEngine, machine) -> None:
        self.engine = engine
        self.machine = machine
        self._init = machine.initial(engine.full)
        self._fails: dict[tuple[int, object], bool] = {}
        self._counts: dict[tuple[int, object], int] = {}

    # -- existence ---------------------------------------------------------

    def fails(self, region: int, state) -> bool:
        """Does some completion of ``(region, state)`` falsify the query?"""
        if state is SATISFIED:
            return False
        if state is ALL_FAIL:
            return True  # every nonempty region has a completion
        if region == 0:
            return True  # all constraints resolved, nothing satisfied
        key = (region, state)
        try:
            return self._fails[key]
        except KeyError:
            pass
        result = False
        machine = self.machine
        for b in self.engine.blocks(region):
            if self.fails(region & ~b, machine.advance(state, region, b)):
                result = True
                break
        self._fails[key] = result
        return result

    def entailed(self) -> bool:
        """True when every minimal model satisfies the query."""
        return not self.fails(self.engine.full, self._init)

    def countermodel_blocks(self) -> tuple[int, ...] | None:
        """The DFS-first falsifying block sequence (the seed's first
        countermodel), or None when the query is entailed."""
        state = self._init
        region = self.engine.full
        if not self.fails(region, state):
            return None
        out: list[int] = []
        machine = self.machine
        while True:
            if state is ALL_FAIL:
                return tuple(out) + self.engine.first_sequence(region)
            if region == 0:
                return tuple(out)
            for b in self.engine.blocks(region):
                nxt = machine.advance(state, region, b)
                if self.fails(region & ~b, nxt):
                    out.append(b)
                    state = nxt
                    region &= ~b
                    break
            else:  # pragma: no cover - fails() promised a witness
                raise AssertionError("lost the countermodel trail")

    # -- counting ----------------------------------------------------------

    def count_failures(self, region: int | None = None, state=None) -> int:
        """How many completions falsify the query (one pass per distinct
        ``(region, state)``; ``ALL_FAIL`` regions count arithmetically)."""
        if region is None:
            region, state = self.engine.full, self._init
        if state is SATISFIED:
            return 0
        if state is ALL_FAIL:
            return self.engine.count(region)
        if region == 0:
            return 1
        key = (region, state)
        try:
            return self._counts[key]
        except KeyError:
            pass
        machine = self.machine
        value = sum(
            self.count_failures(region & ~b, machine.advance(state, region, b))
            for b in self.engine.blocks(region)
        )
        self._counts[key] = value
        return value

    # -- enumeration -------------------------------------------------------

    def iter_failing_sequences(self) -> Iterator[tuple[int, ...]]:
        """Every falsifying block sequence, in the seed enumeration order.

        Satisfied subtrees are pruned wholesale; dead subtrees stream
        their sequences straight off the structural tables.
        """
        engine = self.engine
        machine = self.machine

        def walk(region: int, state, prefix: tuple[int, ...]):
            if state is SATISFIED:
                return
            if state is ALL_FAIL:
                for rest in engine.iter_sequences(region):
                    yield prefix + rest
                return
            if region == 0:
                yield prefix
                return
            for b in engine.blocks(region):
                yield from walk(
                    region & ~b,
                    machine.advance(state, region, b),
                    prefix + (b,),
                )

        yield from walk(engine.full, self._init, ())


__all__ = [
    "ALL_FAIL",
    "SATISFIED",
    "ModelEngine",
    "RegionDP",
    "engine_for",
]
