"""Minimal models of indefinite order databases (Section 2).

The minimal models of a database are obtained by *generalized topological
sorting* of its (normalized) order graph: repeatedly choose a nonempty set
``S`` of unsorted vertices subject to

* **S1** — every element of ``S`` is *minor* in the subgraph of unsorted
  vertices (no ascending path through a '<' edge ends in it), and
* **S2** — ``S`` is closed under '<='-predecessors among unsorted vertices,

and map the whole of ``S`` to the next point of the linear order being
built.  Proposition 2.8 shows these models are minimal in the homomorphism
order, and Corollary 2.9 reduces all three semantics (through the
Section 2 transformations) to truth in all minimal models.

This module enumerates block sequences, materializes them as two-sorted
first-order :class:`Structure` objects, counts them (with memoization), and
provides homomorphism checking for the Proposition 2.8 tests.

The Section 7 extension is supported natively: a block may not contain two
vertices related by '!='.

Enumeration and counting run on the bitset
:class:`~repro.core.modelengine.ModelEngine` — valid blocks are generated
per region by walking the '!='-free downsets of the minor poset and the
results are memoized on the region bitmask, instead of filtering all
subsets of the minors at every visit.  Under
:func:`repro.substrate.reference.naive_mode` every entry point reroutes to
the retained seed algorithms (:func:`_valid_blocks` plus the subset-filter
recursion), which the differential suite and the benchmarks use as the
oracle; both paths enumerate sequences in exactly the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.modelengine import engine_for
from repro.core.ordergraph import OrderGraph
from repro.core.regions import RegionCache, RegionCacheHub
from repro.substrate import reference
from repro.flexiwords.flexiword import Word

Block = frozenset[str]
BlockSequence = tuple[Block, ...]


def _valid_blocks(graph: OrderGraph) -> Iterator[Block]:
    """All valid choices of the set S for the current unsorted graph.

    S ranges over nonempty subsets of the minor vertices that are closed
    under '<='-predecessors (conditions S1 and S2) and contain no '!=' pair.
    Enumeration is exponential in the number of minor vertices — this is
    the seed algorithm, retained as the differential oracle for the bitset
    engine's direct downset generation.
    """
    minors = sorted(graph.minor_vertices())
    neq = {p for p in graph.neq_pairs if len(p) == 2}
    for r in range(1, len(minors) + 1):
        for combo in combinations(minors, r):
            s = frozenset(combo)
            if graph.le_predecessor_closure(s) != s:
                continue
            if any(pair <= s for pair in neq):
                continue
            yield s


def _no_models(graph: OrderGraph) -> bool:
    """True when the graph admits no block sequence at all."""
    if any(len(p) == 1 for p in graph.neq_pairs):
        return True
    return not graph.normalize().consistent


def iter_block_sequences(
    graph: OrderGraph, caches: RegionCacheHub | None = None
) -> Iterator[BlockSequence]:
    """All generalized topological sorts of a normalized, consistent graph.

    Each yielded sequence is the list of vertex blocks mapped to successive
    points.  Distinct sequences are distinct minimal models (the block
    sequence *is* the interpretation of the order constants).

    For a graph with a '<=<'-cycle or an ``x != x`` pair, nothing is
    yielded (no models).  The empty graph yields the empty sequence.
    """
    if _no_models(graph):
        return
    if reference.NAIVE:
        yield from _naive_block_sequences(graph, caches)
        return
    engine = engine_for(graph, caches)
    names = engine.names
    for masks in engine.iter_sequences(engine.full):
        yield tuple(names(b) for b in masks)


def _naive_block_sequences(
    graph: OrderGraph, caches: RegionCacheHub | None = None
) -> Iterator[BlockSequence]:
    """The seed recursion: subset-filter block generation per visit."""
    # Residual graphs are regions of the input graph; distinct prefixes
    # reach the same remaining-vertex set, so the induced subgraphs (and
    # their cached minors) are shared through a RegionCache.
    regions = caches.get(graph) if caches is not None else RegionCache(graph)

    def rec(region: frozenset[str], prefix: list[Block]) -> Iterator[BlockSequence]:
        if not region:
            yield tuple(prefix)
            return
        for s in _valid_blocks(regions.induced(region)):
            prefix.append(s)
            yield from rec(region - s, prefix)
            prefix.pop()

    yield from rec(frozenset(graph.vertices), [])


def count_minimal_models(
    graph: OrderGraph, caches: RegionCacheHub | None = None
) -> int:
    """The number of minimal models: one arithmetic pass per region."""
    if _no_models(graph):
        return 0
    if not reference.NAIVE:
        engine = engine_for(graph, caches)
        return engine.count(engine.full)
    regions = caches.get(graph) if caches is not None else RegionCache(graph)
    cache: dict[frozenset[str], int] = {}

    def count(region: frozenset[str]) -> int:
        if not region:
            return 1
        if region in cache:
            return cache[region]
        total = 0
        for s in _valid_blocks(regions.induced(region)):
            total += count(region - s)
        cache[region] = total
        return total

    return count(frozenset(graph.vertices))


@dataclass(frozen=True)
class Structure:
    """A finite two-sorted structure: a (minimal) model of a database.

    Attributes:
        order_size: the order domain is ``0 .. order_size - 1`` with the
            usual integer order.
        objects: the object domain (object-constant names).
        facts: ``pred -> set of tuples``; tuple entries are ints (points)
            or strs (objects).
        const_map: interpretation of the database's constants — order
            constants map to points, object constants to themselves.
    """

    order_size: int
    objects: frozenset[str]
    facts: tuple[tuple[str, frozenset[tuple]], ...]
    const_map: tuple[tuple[str, int | str], ...]

    @property
    def fact_dict(self) -> dict[str, frozenset[tuple]]:
        """Facts as a dict."""
        return dict(self.facts)

    @property
    def interpretation(self) -> dict[str, int | str]:
        """Constant interpretation as a dict."""
        return dict(self.const_map)

    def word(self) -> Word:
        """The word representation of a *monadic* structure.

        Letter ``i`` is the set of unary predicates holding at point ``i``.
        (Only meaningful when all facts are unary over points.)
        """
        letters: list[set[str]] = [set() for _ in range(self.order_size)]
        for pred, tuples in self.facts:
            for tup in tuples:
                if len(tup) == 1 and isinstance(tup[0], int):
                    letters[tup[0]].add(pred)
        return tuple(frozenset(s) for s in letters)

    def __str__(self) -> str:
        parts = []
        for pred, tuples in sorted(self.facts):
            for tup in sorted(tuples, key=repr):
                parts.append(f"{pred}({', '.join(map(str, tup))})")
        return f"<order 0..{self.order_size - 1}; {'; '.join(parts)}>"


def structure_from_blocks(
    db: IndefiniteDatabase, blocks: BlockSequence, canon: dict[str, str]
) -> Structure:
    """Materialize the minimal model given by a block sequence.

    Args:
        db: the *original* database (atoms are read off it).
        blocks: a generalized topological sort of the normalized graph.
        canon: the normalization's canonical-name map (original constant
            name -> normalized vertex).
    """
    point_of: dict[str, int] = {}
    for i, block in enumerate(blocks):
        for v in block:
            point_of[v] = i

    const_map: dict[str, int | str] = {}
    for c in db.order_constants:
        const_map[c] = point_of[canon.get(c, c)]
    for c in db.object_constants:
        const_map[c] = c

    facts: dict[str, set[tuple]] = {}
    for atom in db.proper_atoms:
        tup = tuple(const_map[t.name] for t in atom.args)
        facts.setdefault(atom.pred, set()).add(tup)

    return Structure(
        order_size=len(blocks),
        objects=frozenset(db.object_constants),
        facts=tuple(
            sorted((p, frozenset(ts)) for p, ts in facts.items())
        ),
        const_map=tuple(sorted(const_map.items())),
    )


def iter_minimal_models(
    db: IndefiniteDatabase,
    caches: RegionCacheHub | None = None,
    graph: OrderGraph | None = None,
) -> Iterator[Structure]:
    """All minimal models of ``db`` (empty when ``db`` is inconsistent).

    ``caches`` shares the engine's per-region block tables across calls;
    ``graph`` reuses a prebuilt order graph of ``db`` (a session's
    long-lived instance) instead of rebuilding one per call.
    """
    if graph is None:
        graph = db.graph()
    norm = graph.normalize()
    if not norm.consistent:
        return
    for blocks in iter_block_sequences(norm.graph, caches):
        yield structure_from_blocks(db, blocks, norm.canon)


def iter_minimal_words(
    dag: LabeledDag, caches: RegionCacheHub | None = None
) -> Iterator[Word]:
    """All minimal models of a monadic database, as words.

    Each block sequence yields the word whose i-th letter is the union of
    the labels of the i-th block.
    """
    norm_dag = dag.normalized()
    for blocks in iter_block_sequences(norm_dag.graph, caches):
        yield tuple(
            frozenset().union(*(norm_dag.labels[v] for v in block))
            for block in blocks
        )


# -- homomorphisms (Proposition 2.8) -----------------------------------------


def is_homomorphism(
    h: dict[int | str, int | str], source: Structure, target: Structure
) -> bool:
    """Check the homomorphism conditions of Section 2.

    ``h`` maps the source domain (points and objects) into the target
    domain.  Points must map to points monotonically with respect to '<',
    objects to objects, constants to matching interpretations, and facts to
    facts.
    """
    for i in range(source.order_size):
        if not isinstance(h.get(i), int):
            return False
    for o in source.objects:
        v = h.get(o)
        if not isinstance(v, str) or v not in target.objects:
            return False
    for i in range(source.order_size - 1):
        if not h[i] < h[i + 1]:  # '<' must be preserved
            return False
    src_int = source.interpretation
    tgt_int = target.interpretation
    for c, val in src_int.items():
        if c not in tgt_int or tgt_int[c] != h[val]:
            return False
    tgt_facts = target.fact_dict
    for pred, tuples in source.facts:
        for tup in tuples:
            image = tuple(h[x] for x in tup)
            if image not in tgt_facts.get(pred, frozenset()):
                return False
    return True


def find_homomorphism(
    source: Structure, target: Structure
) -> dict[int | str, int | str] | None:
    """Search for a homomorphism (small instances only: exponential search).

    Objects map by identity on shared names (the database interpretation
    fixes them anyway); the search is over monotone injections-or-not of
    points constrained by the constant interpretations.
    """
    src_int = source.interpretation
    tgt_int = target.interpretation
    h: dict[int | str, int | str] = {}
    for c, val in src_int.items():
        if c not in tgt_int:
            return None
        if isinstance(val, str):
            h[val] = tgt_int[c]
        else:
            existing = h.get(val)
            if existing is not None and existing != tgt_int[c]:
                return None
            h[val] = tgt_int[c]
    for o in source.objects:
        h.setdefault(o, o)

    points = [i for i in range(source.order_size)]

    def assign(idx: int) -> dict | None:
        if idx == len(points):
            return dict(h) if is_homomorphism(h, source, target) else None
        p = points[idx]
        if p in h:
            return assign(idx + 1)
        lo = 0
        for q in range(p - 1, -1, -1):
            if q in h:
                lo = h[q] + 1
                break
        hi = target.order_size - 1
        for q in range(p + 1, source.order_size):
            if q in h:
                hi = h[q] - 1
                break
        for candidate in range(lo, hi + 1):
            h[p] = candidate
            result = assign(idx + 1)
            if result is not None:
                return result
            del h[p]
        return None

    return assign(0)
