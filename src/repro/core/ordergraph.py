"""The order graph of a database or conjunctive query (Section 2).

The order atoms of a database (or the order atoms of a conjunctive query)
induce a directed graph whose vertices are the order constants (variables)
and whose edges are labelled '<' or '<='.  This module implements every
graph-theoretic notion the paper builds on that structure:

* **normalization** (rules N1 and N2): contract cycles of '<='-edges into a
  single vertex, drop reflexive '<=' atoms; a normalized graph is
  inconsistent iff it still has a cycle (necessarily through a '<' edge);
* **fullness**: closure under the two derivation rules (u <= v for every
  path u ~> v, u < v for every path through a '<' edge);
* **minimal** vertices (no in-edge) and **minor** vertices (no ascending
  path ending in the vertex that passes through a '<' edge) — the building
  blocks of generalized topological sorts;
* **width**: the maximum cardinality of an antichain, computed exactly via
  Dilworth's theorem and Hopcroft–Karp matching;
* inequality pairs (``u != v``) for the Section 7 extension, carried along
  but not participating in the dag structure.

Vertices are plain strings (order-constant or order-variable names).

Caching contract
----------------

The derived relations — :meth:`~OrderGraph.reachability`,
:meth:`~OrderGraph.strict_reachability`, :meth:`~OrderGraph.minor_vertices`
and :meth:`~OrderGraph.normalize` — are computed once per *generation* and
memoized on the instance.  Every mutating method (:meth:`add_vertex`,
:meth:`add_edge`, :meth:`remove_edge`, :meth:`remove_vertices`) bumps the
generation counter, invalidating all cached views, so
:meth:`~OrderGraph.entails_atom` and :meth:`~OrderGraph.reduced` cost an
amortized dict lookup between mutations.  The dicts returned by
``reachability()`` / ``strict_reachability()`` and the
:class:`Normalization` returned by ``normalize()`` are shared cached
objects: treat them as **read-only** (copy before mutating).
``minor_vertices()`` returns a fresh set.  Under
:func:`repro.substrate.reference.naive_mode` all caching is bypassed and
queries recompute with the seed's naive algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, TypeVar

from repro.core.atoms import OrderAtom, Rel
from repro.core.errors import InconsistentError
from repro.core.sorts import Term
from repro.substrate import reference
from repro.substrate.digraph import Digraph
from repro.substrate.matching import maximum_antichain

_T = TypeVar("_T")


@dataclass
class Normalization:
    """Result of normalizing an :class:`OrderGraph`.

    Attributes:
        graph: the normalized graph (vertices are canonical representatives).
        canon: maps every original vertex to its representative.
        consistent: False when normalization found a '<' cycle.
    """

    graph: "OrderGraph"
    canon: dict[str, str]
    consistent: bool


class OrderGraph:
    """A labelled order graph over string vertices.

    Edge labels are :class:`Rel.LT` or :class:`Rel.LE`; when both are
    asserted for the same pair the strictly stronger '<' is kept.
    Inequality constraints (``!=``) are stored separately as unordered
    pairs since they impose no direction.
    """

    def __init__(self) -> None:
        self._edges: dict[tuple[str, str], Rel] = {}
        self._digraph = Digraph()
        self._neq: set[frozenset[str]] = set()
        self._version = 0
        self._cache: dict[str, object] = {}
        self._cache_version = -1
        self._probes = 0  # cold entails_atom probes since the last mutation

    # -- caching -----------------------------------------------------------

    def _bump(self) -> None:
        self._version += 1
        self._probes = 0

    def _cached(self, key: str, compute: Callable[[], _T]) -> _T:
        if self._cache_version != self._version:
            self._cache.clear()
            self._cache_version = self._version
        try:
            return self._cache[key]  # type: ignore[return-value]
        except KeyError:
            value = compute()
            self._cache[key] = value
            return value

    def _lt_edges(self) -> list[tuple[str, str]]:
        return [(u, v) for (u, v), rel in self._edges.items() if rel is Rel.LT]

    # -- construction ------------------------------------------------------

    def add_vertex(self, v: str) -> None:
        """Add vertex ``v`` (idempotent)."""
        if v not in self._digraph:
            self._digraph.add_vertex(v)
            self._bump()

    def add_edge(self, u: str, v: str, rel: Rel) -> None:
        """Add an atom ``u rel v``.

        ``NE`` atoms become unordered pairs; a '<' edge overrides an
        existing '<=' edge on the same pair (it is strictly stronger).
        """
        if rel is Rel.NE:
            self.add_vertex(u)
            self.add_vertex(v)
            # u != u is unsatisfiable: record as an inconsistency marker.
            pair = frozenset((u,)) if u == v else frozenset((u, v))
            if pair not in self._neq:
                self._neq.add(pair)
                self._bump()
            return
        before = self._digraph.version
        self._digraph.add_edge(u, v)
        changed = self._digraph.version != before
        current = self._edges.get((u, v))
        if current is None or (current is Rel.LE and rel is Rel.LT):
            self._edges[(u, v)] = rel
            changed = True
        if changed:
            self._bump()

    def remove_edge(self, u: str, v: str) -> None:
        """Delete the order edge ``u -> v`` if present; vertices remain."""
        if (u, v) in self._edges:
            del self._edges[(u, v)]
            self._digraph.remove_edge(u, v)
            self._bump()

    def _replace_neq(self, pairs: set[frozenset[str]]) -> None:
        """Install a new '!=' pair set (internal; invalidates caches)."""
        self._neq = pairs
        self._bump()

    @classmethod
    def from_atoms(
        cls, atoms: Iterable[OrderAtom], extra_vertices: Iterable[str] = ()
    ) -> "OrderGraph":
        """Build the order graph of a set of order atoms.

        ``extra_vertices`` adds isolated vertices — order constants that
        occur only in proper atoms must still appear in the graph.
        """
        g = cls()
        for v in extra_vertices:
            g.add_vertex(v)
        for atom in atoms:
            g.add_edge(atom.left.name, atom.right.name, atom.rel)
        return g

    def copy(self) -> "OrderGraph":
        """An independent copy."""
        g = OrderGraph()
        g._digraph = self._digraph.copy()
        g._edges = dict(self._edges)
        g._neq = set(self._neq)
        g._bump()
        return g

    # -- inspection ---------------------------------------------------------

    @property
    def vertices(self) -> set[str]:
        """The vertex set (fresh set)."""
        return self._digraph.vertices

    @property
    def neq_pairs(self) -> set[frozenset[str]]:
        """The ``!=`` pairs (singleton frozenset marks ``u != u``)."""
        return set(self._neq)

    def edges(self) -> Iterator[tuple[str, str, Rel]]:
        """Iterate over labelled edges ``(u, v, rel)``."""
        for (u, v), rel in self._edges.items():
            yield u, v, rel

    def edge_label(self, u: str, v: str) -> Rel | None:
        """The label of edge ``(u, v)`` or None."""
        return self._edges.get((u, v))

    def successors(self, v: str) -> set[str]:
        """Direct successors of ``v``."""
        return self._digraph.successors(v)

    def predecessors(self, v: str) -> set[str]:
        """Direct predecessors of ``v``."""
        return self._digraph.predecessors(v)

    def to_atoms(self, term_of: dict[str, Term]) -> list[OrderAtom]:
        """Rebuild order atoms, mapping vertex names through ``term_of``."""
        atoms = [
            OrderAtom(term_of[u], rel, term_of[v])
            for (u, v), rel in sorted(self._edges.items())
        ]
        for pair in sorted(self._neq, key=sorted):
            names = sorted(pair)
            if len(names) == 1:
                atoms.append(OrderAtom(term_of[names[0]], Rel.NE, term_of[names[0]]))
            else:
                atoms.append(OrderAtom(term_of[names[0]], Rel.NE, term_of[names[1]]))
        return atoms

    def __len__(self) -> int:
        return len(self._digraph)

    def __contains__(self, v: str) -> bool:
        return v in self._digraph

    # -- normalization (rules N1, N2) ----------------------------------------

    def normalize(self) -> Normalization:
        """Apply rules N1 and N2, reporting consistency.

        N1: if ``u1 <= u2, ..., u_{n-1} <= u_n, u_n <= u1`` then identify
        ``u1, ..., un``.  N2: delete atoms ``u <= u``.  A cycle through a
        '<' edge (including a direct ``u < u``) makes the graph
        inconsistent; so does a recorded ``u != u`` or a ``!=`` pair whose
        two sides get identified by N1.

        Implementation: contract the strongly connected components of the
        whole graph.  An SCC with an internal '<' edge witnesses a '<'
        cycle.  The representative of each SCC is its lexicographically
        least member, so normalization is deterministic.

        The result is cached until the next mutation; callers share one
        :class:`Normalization` object and must not mutate ``.graph``.
        """
        if reference.NAIVE:
            return self._compute_normalize()
        return self._cached("normalize", self._compute_normalize)

    def _compute_normalize(self) -> Normalization:
        if reference.NAIVE:
            components = reference.naive_strongly_connected_components(
                self._digraph
            )
        else:
            components = self._digraph.strongly_connected_components()
        canon: dict[str, str] = {}
        consistent = True
        for comp in components:
            rep = min(comp)
            for v in comp:
                canon[v] = rep
        # internal '<' edge inside one component -> '<' cycle -> inconsistent
        for (u, v), rel in self._edges.items():
            if canon[u] == canon[v] and rel is Rel.LT:
                consistent = False

        g = OrderGraph()
        for v in self._digraph.vertices:
            g.add_vertex(canon[v])
        for (u, v), rel in self._edges.items():
            cu, cv = canon[u], canon[v]
            if cu == cv:
                continue  # rule N2 (and contracted N1 edges)
            g.add_edge(cu, cv, rel)
        neq: set[frozenset[str]] = set()
        for pair in self._neq:
            names = sorted(pair)
            if len(names) == 1 or canon[names[0]] == canon[names[1]]:
                consistent = False
                neq.add(frozenset((canon[names[0]],)))
            else:
                neq.add(frozenset((canon[names[0]], canon[names[1]])))
        g._replace_neq(neq)
        # The contracted graph can still contain '<' cycles spanning
        # components only if SCCs were computed wrongly; by construction the
        # condensation is acyclic, so `consistent` is final.
        return Normalization(graph=g, canon=canon, consistent=consistent)

    def is_consistent(self) -> bool:
        """True when the graph admits a compatible linear order.

        Note: ``!=`` pairs between distinct, non-identified vertices never
        cause inconsistency on their own (a linear order can always pull the
        two apart unless forced equal).
        """
        return self.normalize().consistent

    def require_consistent(self) -> None:
        """Raise :class:`InconsistentError` unless consistent."""
        if not self.is_consistent():
            raise InconsistentError("order graph contains a '<' cycle")

    # -- derived relations / fullness ----------------------------------------

    def reachability(self) -> dict[str, set[str]]:
        """``reach[v]`` = vertices strictly reachable from ``v`` (any labels).

        Cached until the next mutation — the returned dict is shared, treat
        it as read-only.
        """
        if reference.NAIVE:
            return reference.naive_transitive_closure(self._digraph)
        return self._cached("reach", self._digraph.transitive_closure)

    def strict_reachability(self) -> dict[str, set[str]]:
        """``sreach[v]`` = vertices reachable via a path through a '<' edge.

        These are exactly the pairs with derived atom ``v < w``.  Computed
        by a single DP sweep over the SCC condensation (see
        :meth:`_compute_strict`); cached until the next mutation — the
        returned dict is shared, treat it as read-only.
        """
        if reference.NAIVE:
            return reference.naive_strict_reachability(
                self._digraph, self._lt_edges()
            )
        return self._cached("strict", self._compute_strict)

    def _compute_strict(self) -> dict[str, set[str]]:
        """One pass over the condensation, successor components first.

        For each component ``C``: if ``C`` contains an internal '<' edge,
        every member strictly reaches the whole weak down-set of ``C``;
        otherwise the strict set is the union, over cross-component edges
        ``C -> C'``, of the weak down-set of ``C'`` (edge labelled '<') or
        the strict set of ``C'`` (edge labelled '<=').
        """
        d = self._digraph
        _verts, index = d.bit_index()
        comp_of, comps = d.condensation()
        ncomp = len(comps)
        comp_mask = [0] * ncomp
        for cid, members in enumerate(comps):
            m = 0
            for vid in members:
                m |= 1 << vid
            comp_mask[cid] = m
        tainted = [False] * ncomp
        cross: list[list[tuple[int, bool]]] = [[] for _ in range(ncomp)]
        for (u, v), rel in self._edges.items():
            cu, cv = comp_of[index[u]], comp_of[index[v]]
            if cu == cv:
                if rel is Rel.LT:
                    tainted[cu] = True
            else:
                cross[cu].append((cv, rel is Rel.LT))
        weak_down = [0] * ncomp
        strict_down = [0] * ncomp
        for cid in range(ncomp):  # reverse topological: successors first
            wd = comp_mask[cid]
            sd = 0
            for cv, is_lt in cross[cid]:
                wd |= weak_down[cv]
                sd |= weak_down[cv] if is_lt else strict_down[cv]
            weak_down[cid] = wd
            strict_down[cid] = wd if tainted[cid] else sd
        out: dict[str, set[str]] = {}
        for v, vid in index.items():
            out[v] = d.set_from_mask(strict_down[comp_of[vid]])
        return out

    def full(self) -> "OrderGraph":
        """The full closure: add every derivable ``<=`` and ``<`` edge.

        Rule 1: path u ~> v (u != v) adds ``u <= v``.  Rule 2: a path through
        a '<' edge adds ``u < v``.  ``!=`` pairs are copied unchanged (the
        paper's fullness does not derive inequalities).
        """
        reach = self.reachability()
        strict = self.strict_reachability()
        g = OrderGraph()
        for v in self.vertices:
            g.add_vertex(v)
        for u in self.vertices:
            su = strict[u]
            for v in reach[u]:
                if u == v:
                    continue
                g.add_edge(u, v, Rel.LT if v in su else Rel.LE)
        g._replace_neq(set(self._neq))
        return g

    # How many cold single-pair probes to answer point-wise before paying
    # for the full cached closure.  Mutation-heavy loops (reduced()) stay on
    # cheap one-source BFS probes; query-heavy static use warms the cache.
    _PROBE_LIMIT = 4

    def _probe_ready(self, u: str, v: str) -> bool:
        """True when a single-pair probe beats building the full closure."""
        if reference.NAIVE:
            return False
        if u not in self._digraph or v not in self._digraph:
            return False  # let the dict path raise KeyError as the seed did
        if self._cache_version == self._version and (
            "reach" in self._cache or "strict" in self._cache
        ):
            return False  # closure already paid for — use it
        if self._probes >= self._PROBE_LIMIT:
            return False
        self._probes += 1
        return True

    def _probe_le(self, u: str, v: str) -> bool:
        """Is ``v`` reachable from ``u`` by a nonempty path?  (``u != v``)"""
        d = self._digraph
        return bool(d.reachable_mask(d.mask_from((u,))) & d.mask_from((v,)))

    def _probe_lt(self, u: str, v: str) -> bool:
        """Is ``v`` reachable from ``u`` via a path through a '<' edge?"""
        d = self._digraph
        fwd = d.reachable_mask(d.mask_from((u,)))
        bwd = d.reachable_mask(d.mask_from((v,)), reverse=True)
        _verts, index = d.bit_index()
        for a, b in self._lt_edges():
            if (fwd >> index[a]) & 1 and (bwd >> index[b]) & 1:
                return True
        return False

    def entails_atom(self, u: str, v: str, rel: Rel) -> bool:
        """Does every compatible linear order satisfy ``u rel v``?

        For a *normalized, consistent* graph: ``u <= v`` is entailed iff
        there is a path from u to v (or u == v); ``u < v`` iff some such path
        passes through a '<' edge; ``u != v`` iff ``u < v`` or ``v < u`` is
        entailed or the pair is recorded as ``!=``.

        On a warm cache this is a dict lookup; right after a mutation the
        first few calls run as single-pair bitset probes instead of
        rebuilding the whole closure (the ``reduced()`` hot path).
        """
        if rel is Rel.LE:
            if u == v:
                return True
            if self._probe_ready(u, v):
                return self._probe_le(u, v)
            return v in self.reachability()[u]
        if rel is Rel.LT:
            if u == v:
                return False
            if self._probe_ready(u, v):
                return self._probe_lt(u, v)
            return v in self.strict_reachability()[u]
        if u == v:
            return False
        if frozenset((u, v)) in self._neq:
            return True
        if self._probe_ready(u, v):
            return self._probe_lt(u, v) or self._probe_lt(v, u)
        strict = self.strict_reachability()
        return v in strict[u] or u in strict[v]

    # -- minimal and minor vertices ------------------------------------------

    def minimal_vertices(self) -> set[str]:
        """Vertices with no in-edge."""
        return self._digraph.sources()

    def minor_vertices(self) -> set[str]:
        """Vertices with no ascending path into them through a '<' edge.

        A vertex v is *minor* iff no path ending at v passes through an edge
        labelled '<'.  Equivalently: v is not (weakly) reachable from the
        head of any '<' edge.  Cached until the next mutation; returns a
        fresh set.
        """
        if reference.NAIVE:
            return reference.naive_minor_vertices(
                self._digraph, self._lt_edges()
            )
        return set(self._cached("minors", self._compute_minors))

    def _compute_minors(self) -> frozenset[str]:
        d = self._digraph
        if len(d) <= 16:
            # below one or two machine words the interning setup costs more
            # than the plain DFS it replaces
            return frozenset(
                reference.naive_minor_vertices(d, self._lt_edges())
            )
        heads = d.mask_from(v for _u, v in self._lt_edges())
        tainted = d.reachable_mask(heads)
        untainted = ~tainted & ((1 << len(d)) - 1)
        return frozenset(d.set_from_mask(untainted))

    def le_predecessor_closure(self, seed: Iterable[str]) -> set[str]:
        """Close ``seed`` under '<='-predecessors (constraint S2).

        If u is in the set and there is an edge ``v <= u`` then v joins the
        set.  Used when constructing generalized topological sorts.
        """
        out = set(seed)
        stack = list(out)
        while stack:
            u = stack.pop()
            for v in self._digraph.predecessors(u):
                if self._edges[(v, u)] is Rel.LE and v not in out:
                    out.add(v)
                    stack.append(v)
        return out

    # -- width ----------------------------------------------------------------

    def is_antichain(self, subset: Iterable[str]) -> bool:
        """True when no vertex of ``subset`` reaches another."""
        subset = set(subset)
        reach = self.reachability()
        for u in subset:
            if reach[u] & (subset - {u}):
                return False
        return True

    def a_maximum_antichain(self) -> set[str]:
        """Some maximum-cardinality antichain (Dilworth via matching)."""
        if not self.vertices:
            return set()
        return maximum_antichain(self.vertices, self.reachability())

    def width(self) -> int:
        """The width: maximum cardinality of an antichain.

        Note: the Section 7 convention applies — ``!=`` pairs are ignored
        when measuring width.
        """
        return len(self.a_maximum_antichain())

    # -- restriction ------------------------------------------------------------

    def induced(self, keep: Iterable[str]) -> "OrderGraph":
        """The subgraph induced by ``keep`` (labels and ``!=`` restricted)."""
        keep = set(keep)
        g = OrderGraph()
        g._digraph = self._digraph.induced_subgraph(keep)
        g._edges = {
            (u, v): rel
            for (u, v), rel in self._edges.items()
            if u in keep and v in keep
        }
        g._replace_neq({p for p in self._neq if p <= keep})
        return g

    def up_set(self, sources: Iterable[str]) -> set[str]:
        """Vertices weakly reachable from ``sources`` (the paper's ``D ^ S``)."""
        if reference.NAIVE:
            return reference.naive_reachable_from(self._digraph, sources)
        return self._digraph.reachable_from(sources)

    def reduced(self) -> "OrderGraph":
        """Drop redundant edges (the Section 2 remark on successor counts).

        An edge ``u rel v`` is redundant when the remaining atoms already
        entail it (e.g. ``u < w`` with ``u < v``, ``v <= w`` present).
        Edges are examined in deterministic order and removed greedily;
        the result entails exactly the same order atoms.  The paper notes
        that in a width-``k`` database the reduced graph has at most
        ``2k`` successors per vertex (``k`` immediate '<='-successors plus
        ``k`` immediate '<'-successors) — property-tested in the suite.
        """
        g = self.copy()
        for (a, b), rel in sorted(self._edges.items()):
            current = g._edges.get((a, b))
            if current is None:
                continue
            # try removing the edge; keep it only if no longer entailed
            g.remove_edge(a, b)
            if not g.entails_atom(a, b, current):
                g.add_edge(a, b, current)
        return g

    def remove_vertices(self, drop: Iterable[str]) -> None:
        """Delete ``drop`` and all incident edges / '!=' pairs, in place."""
        drop = set(drop)
        for v in drop:
            if v in self._digraph:
                self._digraph.remove_vertex(v)
        self._edges = {
            (u, v): rel
            for (u, v), rel in self._edges.items()
            if u not in drop and v not in drop
        }
        self._neq = {p for p in self._neq if not (p & drop)}
        self._bump()
