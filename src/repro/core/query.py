"""Positive existential queries: conjunctive and disjunctive (DNF) forms.

Queries (Section 2) are positive existential sentences built from proper
atoms and order atoms with conjunction, disjunction and existential
quantification.  For complexity analysis the paper assumes disjunctive
normal form; :class:`DisjunctiveQuery` is a disjunction of
:class:`ConjunctiveQuery` instances.  All variables are implicitly
existentially quantified; closed-query entailment of open formulas is
handled by substitution (see ``certain_answers`` in
:mod:`repro.core.entailment`).

Implemented notions from the paper:

* normalization rules N1/N2 applied to a query's order variables;
* *fullness* (closure under derived order atoms) and the Q-semantics
  *tightening* transformation (Lemma 2.5);
* *tight* queries (every order variable occurs in a proper atom);
* *sequential* queries (order variables linearly ordered by the order
  atoms — width one);
* *paths*: the maximal sequential subqueries of a monadic conjunctive
  query (Lemma 4.1);
* the constant-elimination construction (new predicate ``P_u`` per
  constant) that justifies the constant-free assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Union

from repro.core.atoms import (
    Atom,
    OrderAtom,
    ProperAtom,
    Rel,
    atom_constants,
    atom_variables,
)
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.errors import NotConjunctiveError, NotMonadicError, SortError
from repro.core.ordergraph import OrderGraph
from repro.core.sorts import Term, fresh_names, objvar, ordvar
from repro.flexiwords.flexiword import FlexiWord


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunction of atoms, all variables existentially quantified.

    ``extra_order_vars`` carries order variables that occur in *no* atom
    (e.g. the query "there exists a point"); they still quantify over a
    point of the model, which matters over the empty model and for
    nontight-query semantics.
    """

    atoms: tuple[Atom, ...]
    extra_order_vars: frozenset[Term] = frozenset()

    @classmethod
    def of(cls, *atoms: Atom) -> "ConjunctiveQuery":
        """Build from a flat sequence of atoms (dedupe, deterministic order)."""
        return cls.from_atoms(atoms)

    @classmethod
    def from_atoms(
        cls, atoms: Iterable[Atom], extra_order_vars: Iterable[Term] = ()
    ) -> "ConjunctiveQuery":
        """Build from any iterable of atoms (dedupe, deterministic order).

        ``extra_order_vars`` not actually occurring in the atoms are kept;
        occurring ones are dropped so equality stays canonical.
        """
        atoms = list(atoms)
        proper = sorted({a for a in atoms if isinstance(a, ProperAtom)})
        order = sorted({a for a in atoms if isinstance(a, OrderAtom)})
        occurring = atom_variables(atoms)
        extras = frozenset(
            v for v in extra_order_vars if v.is_var and v not in occurring
        )
        return cls(tuple(proper) + tuple(order), extras)

    # -- pieces -------------------------------------------------------------

    @property
    def proper_atoms(self) -> tuple[ProperAtom, ...]:
        """The proper atoms."""
        return tuple(a for a in self.atoms if isinstance(a, ProperAtom))

    @property
    def order_atoms(self) -> tuple[OrderAtom, ...]:
        """The order atoms."""
        return tuple(a for a in self.atoms if isinstance(a, OrderAtom))

    def variables(self) -> set[Term]:
        """All variables (including atom-free extra order variables)."""
        return atom_variables(self.atoms) | set(self.extra_order_vars)

    def order_variables(self) -> set[Term]:
        """Variables of order sort."""
        return {v for v in self.variables() if v.is_order}

    def object_variables(self) -> set[Term]:
        """Variables of object sort."""
        return {v for v in self.variables() if v.is_object}

    def constants(self) -> set[Term]:
        """All constants (the paper assumes none; see elimination below)."""
        return atom_constants(self.atoms)

    @property
    def predicates(self) -> dict[str, int]:
        """Map predicate name to arity."""
        return {a.pred: a.arity for a in self.proper_atoms}

    @property
    def has_neq(self) -> bool:
        """True when some order atom uses '!=' (Section 7)."""
        return any(a.rel is Rel.NE for a in self.order_atoms)

    def size(self) -> int:
        """Number of atoms."""
        return len(self.atoms)

    def is_empty(self) -> bool:
        """The empty conjunction (trivially true, even in the empty model)."""
        return not self.atoms and not self.extra_order_vars

    # -- the order graph -----------------------------------------------------

    def order_graph(self) -> OrderGraph:
        """Order graph over the *order variables* (Section 2).

        Raises :class:`SortError` when order constants occur in order atoms
        — eliminate constants first (:func:`eliminate_constants`).
        """
        for a in self.order_atoms:
            if a.left.is_const or a.right.is_const:
                raise SortError(
                    "query order atoms must be constant-free; apply "
                    "eliminate_constants first"
                )
        extra = {
            t.name
            for a in self.proper_atoms
            for t in a.args
            if t.is_var and t.is_order
        }
        extra.update(v.name for v in self.extra_order_vars)
        return OrderGraph.from_atoms(self.order_atoms, extra)

    def width(self) -> int:
        """Width of the normalized order graph."""
        return self.order_graph().normalize().graph.width()

    def is_consistent(self) -> bool:
        """True when the order atoms admit a satisfying linear order."""
        return self.order_graph().is_consistent()

    # -- transformations ----------------------------------------------------------

    def substitute(self, mapping: Mapping[Term, Term]) -> "ConjunctiveQuery":
        """Apply a term substitution and re-canonicalize."""
        extras = {mapping.get(v, v) for v in self.extra_order_vars}
        return ConjunctiveQuery.from_atoms(
            (a.substitute(mapping) for a in self.atoms), extras
        )

    def normalized(self) -> "ConjunctiveQuery | None":
        """Rules N1/N2 on order variables; ``None`` when inconsistent.

        N1 identifies variables joined in a '<='-cycle (deleting the
        collapsed quantifiers); N2 drops ``t <= t``.
        """
        norm = self.order_graph().normalize()
        if not norm.consistent:
            return None
        mapping = {
            ordvar(old): ordvar(new)
            for old, new in norm.canon.items()
            if old != new
        }
        atoms: list[Atom] = [
            a.substitute(mapping) for a in self.proper_atoms
        ]
        term_of = {v: ordvar(v) for v in norm.graph.vertices}
        atoms.extend(norm.graph.to_atoms(term_of))
        extras = {ordvar(v) for v in norm.graph.vertices}
        return ConjunctiveQuery.from_atoms(atoms, extras)

    def full(self) -> "ConjunctiveQuery":
        """Close the order atoms under the two derivation rules (Section 2)."""
        graph = self.order_graph().full()
        term_of = {v: ordvar(v) for v in graph.vertices}
        atoms: list[Atom] = list(self.proper_atoms)
        atoms.extend(graph.to_atoms(term_of))
        return ConjunctiveQuery.from_atoms(atoms, self.extra_order_vars)

    def tightened(self) -> "ConjunctiveQuery":
        """The Lemma 2.5 transformation: full closure, then delete order
        variables that occur in no proper atom (with their atoms).

        For a full query Phi, ``D |=_Q Phi  iff  D |=_Fin tightened(Phi)``
        (Corollary 2.6).  This method performs the full closure itself.
        """
        full = self.full()
        keep = {
            t for a in full.proper_atoms for t in a.args if t.is_var and t.is_order
        }
        atoms: list[Atom] = list(full.proper_atoms)
        for a in full.order_atoms:
            if all(t in keep for t in (a.left, a.right)):
                atoms.append(a)
        return ConjunctiveQuery.from_atoms(atoms)

    # -- classification ---------------------------------------------------------

    def is_tight(self) -> bool:
        """Every order variable occurs in some proper atom (Section 2)."""
        in_proper = {
            t for a in self.proper_atoms for t in a.args if t.is_var
        }
        return all(v in in_proper for v in self.order_variables())

    def is_sequential(self) -> bool:
        """Order variables linearly ordered by the order atoms (Section 4).

        Decided on the normalized order graph: sequential iff its width is
        at most one (every two order variables comparable).  An
        inconsistent query is not sequential.
        """
        if self.has_neq:
            return False
        normalized = self.normalized()
        if normalized is None:
            return False
        return normalized.order_graph().width() <= 1

    def is_monadic(self) -> bool:
        """All proper atoms unary over order-sorted arguments."""
        return all(
            a.arity == 1 and a.args[0].is_order for a in self.proper_atoms
        )

    # -- monadic dag view ------------------------------------------------------------

    def monadic_dag(self) -> LabeledDag:
        """The labelled dag over order variables (requires monadic, no '!=')."""
        if not self.is_monadic():
            raise NotMonadicError("query is not monadic")
        if self.has_neq:
            raise NotMonadicError(
                "labelled-dag view does not support '!=' atoms; expand first"
            )
        graph = self.order_graph()
        labels: dict[str, set[str]] = {v: set() for v in graph.vertices}
        for a in self.proper_atoms:
            labels[a.args[0].name].add(a.pred)
        return LabeledDag(graph, {v: frozenset(s) for v, s in labels.items()})

    def paths(self) -> list[FlexiWord]:
        """Paths of a monadic conjunctive query: maximal sequential subqueries."""
        return self.monadic_dag().paths()

    def to_flexiword(self) -> FlexiWord:
        """The flexi-word of a sequential monadic query."""
        return self.monadic_dag().to_flexiword()

    @classmethod
    def from_flexiword(cls, word: FlexiWord, prefix: str = "t") -> "ConjunctiveQuery":
        """The sequential query corresponding to a flexi-word."""
        names = [f"{prefix}{i}" for i in range(len(word.letters))]
        atoms: list[Atom] = []
        for i, a in enumerate(word.letters):
            for p in sorted(a):
                atoms.append(ProperAtom(p, (ordvar(names[i]),)))
        for i, rel in enumerate(word.rels):
            atoms.append(OrderAtom(ordvar(names[i]), rel, ordvar(names[i + 1])))
        return cls.from_atoms(atoms, {ordvar(n) for n in names})

    def __str__(self) -> str:
        if not self.atoms and not self.extra_order_vars:
            return "TRUE"
        body = " & ".join(str(a) for a in self.atoms) if self.atoms else "TRUE"
        variables = sorted(v.name for v in self.variables())
        if variables:
            return f"exists {' '.join(variables)}. {body}"
        return body


@dataclass(frozen=True)
class DisjunctiveQuery:
    """A disjunction of conjunctive queries (disjunctive normal form)."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    @classmethod
    def of(cls, *disjuncts: ConjunctiveQuery) -> "DisjunctiveQuery":
        """Build from conjunctive disjuncts."""
        return cls(tuple(disjuncts))

    def normalized(self) -> "DisjunctiveQuery":
        """Normalize each disjunct, dropping inconsistent ones."""
        kept = []
        for d in self.disjuncts:
            n = d.normalized()
            if n is not None:
                kept.append(n)
        return DisjunctiveQuery(tuple(kept))

    def or_(self, other: "Query") -> "DisjunctiveQuery":
        """Disjunction with another query.

        This implements the paper's integrity-constraint technique
        (Example 1.1): to enforce ``not Psi`` as a constraint, query
        ``Psi v Phi`` instead of ``Phi``.
        """
        return DisjunctiveQuery(self.disjuncts + as_dnf(other).disjuncts)

    def is_monadic(self) -> bool:
        """All disjuncts monadic."""
        return all(d.is_monadic() for d in self.disjuncts)

    @property
    def has_neq(self) -> bool:
        """Some disjunct contains '!='."""
        return any(d.has_neq for d in self.disjuncts)

    def constants(self) -> set[Term]:
        """Constants across all disjuncts."""
        out: set[Term] = set()
        for d in self.disjuncts:
            out |= d.constants()
        return out

    @property
    def predicates(self) -> dict[str, int]:
        """Predicate name to arity across all disjuncts."""
        out: dict[str, int] = {}
        for d in self.disjuncts:
            out.update(d.predicates)
        return out

    def size(self) -> int:
        """Total number of atoms."""
        return sum(d.size() for d in self.disjuncts)

    def substitute(self, mapping: Mapping[Term, Term]) -> "DisjunctiveQuery":
        """Apply a substitution to every disjunct."""
        return DisjunctiveQuery(tuple(d.substitute(mapping) for d in self.disjuncts))

    def __str__(self) -> str:
        if not self.disjuncts:
            return "FALSE"
        return " | ".join(f"({d})" for d in self.disjuncts)


Query = Union[ConjunctiveQuery, DisjunctiveQuery]


def as_dnf(query: Query) -> DisjunctiveQuery:
    """Coerce a query to disjunctive normal form."""
    if isinstance(query, ConjunctiveQuery):
        return DisjunctiveQuery((query,))
    return query


def as_conjunctive(query: Query) -> ConjunctiveQuery:
    """Coerce to conjunctive; raise when genuinely disjunctive."""
    if isinstance(query, ConjunctiveQuery):
        return query
    if len(query.disjuncts) == 1:
        return query.disjuncts[0]
    raise NotConjunctiveError("query has more than one disjunct")


def eliminate_constants(
    db: IndefiniteDatabase, query: Query
) -> tuple[IndefiniteDatabase, DisjunctiveQuery]:
    """The paper's constant-elimination construction (Section 2).

    For each constant ``u`` occurring in the query, introduce a fresh
    monadic predicate ``P_u``, add the fact ``P_u(u)`` to the database, and
    replace ``u`` in the query by a fresh variable ``t`` constrained by
    ``P_u(t)``.  The resulting query is constant-free and is entailed by
    the new database iff the original was entailed by the original.
    """
    dnf = as_dnf(query)
    consts = sorted(dnf.constants())
    if not consts:
        return db, dnf

    taken = set(db.predicates) | set(dnf.predicates)
    pred_of: dict[Term, str] = {}
    for c in consts:
        name = f"Const_{c.name}"
        while name in taken:
            name += "_"
        taken.add(name)
        pred_of[c] = name

    new_facts = [ProperAtom(pred_of[c], (c,)) for c in consts]
    new_db = db.union(IndefiniteDatabase.from_atoms(new_facts))

    new_disjuncts = []
    for d in dnf.disjuncts:
        var_names: set[str] = {v.name for v in d.variables()}
        mapping: dict[Term, Term] = {}
        guard_atoms: list[Atom] = []
        for c in sorted(d.constants()):
            fresh = fresh_names(f"v_{c.name}_", 1, var_names)[0]
            var = ordvar(fresh) if c.is_order else objvar(fresh)
            mapping[c] = var
            guard_atoms.append(ProperAtom(pred_of[c], (var,)))
        replaced = d.substitute(mapping)
        new_disjuncts.append(
            ConjunctiveQuery.from_atoms(list(replaced.atoms) + guard_atoms)
        )
    return new_db, DisjunctiveQuery(tuple(new_disjuncts))
