"""Memoized per-region views of an order graph.

The bounded-width decision procedures (Theorem 4.7, Theorem 5.3) and the
minimal-model enumerators all explore state spaces whose states are
*regions* — subsets of a fixed order graph's vertices, usually up-sets
``D ^ S`` of some antichain ``S``.  Different states routinely denote the
same region, and the seed implementation rebuilt the induced subgraph, its
minor vertices and its minimal vertices from scratch at every visit.

:class:`RegionCache` memoizes exactly those per-region artifacts, keyed on
the frozen vertex set:

* :meth:`~RegionCache.up_set` — the weak up-set of a source set;
* :meth:`~RegionCache.induced` — the induced subgraph (one shared,
  **read-only** :class:`~repro.core.ordergraph.OrderGraph` per region,
  which in turn carries its own cached closures);
* :meth:`~RegionCache.minors` / :meth:`~RegionCache.minimal` — the minor
  and minimal vertices of the induced subgraph;
* :meth:`~RegionCache.block_labels` — the label union of a block (when the
  cache was built with a label map);
* :meth:`~RegionCache.model_engine` — the shared
  :class:`~repro.core.modelengine.ModelEngine`, whose per-region valid-
  block, model-count and minor tables are keyed on *region bitmasks* over
  the graph's interned vertex ids (the minimal-model paths run entirely
  on those mask-keyed tables; the frozenset-keyed memos above remain for
  the theorem searches, which manipulate named vertex sets).

Under :func:`repro.substrate.reference.naive_mode` every call recomputes
without storing, reproducing the seed's cost model for benchmarks and
differential tests.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.modelengine import ModelEngine
from repro.core.ordergraph import OrderGraph
from repro.substrate import reference


class RegionCache:
    """Memoized region artifacts over one fixed :class:`OrderGraph`.

    The underlying graph must not be mutated while the cache is alive;
    graphs returned by :meth:`induced` are shared across lookups and must
    be treated as read-only.
    """

    __slots__ = (
        "graph",
        "labels",
        "_all",
        "_up",
        "_induced",
        "_minors",
        "_minimal",
        "_block_labels",
        "_engine",
    )

    def __init__(
        self,
        graph: OrderGraph,
        labels: Mapping[str, frozenset[str]] | None = None,
    ) -> None:
        self.graph = graph
        self.labels = labels
        self._all = frozenset(graph.vertices)
        self._up: dict[frozenset[str], frozenset[str]] = {}
        self._induced: dict[frozenset[str], OrderGraph] = {}
        self._minors: dict[frozenset[str], frozenset[str]] = {}
        self._minimal: dict[frozenset[str], frozenset[str]] = {}
        self._block_labels: dict[frozenset[str], frozenset[str]] = {}
        self._engine: ModelEngine | None = None

    def model_engine(self) -> ModelEngine:
        """The shared bitset minimal-model engine over this cache's graph.

        The engine is purely structural (its valid-block, minor and
        count tables depend only on the graph), so one instance is
        memoized per cache and — like the other structural memos —
        shared with forks.  Its tables are append-only: treat the
        returned engine as a read-only shared object.
        """
        if reference.NAIVE:
            return ModelEngine(self.graph)
        if self._engine is None:
            self._engine = ModelEngine(self.graph)
        return self._engine

    def up_set(self, sources: Iterable[str]) -> frozenset[str]:
        """The weak up-set ``D ^ S`` of ``sources`` (memoized)."""
        key = (
            sources
            if isinstance(sources, frozenset)
            else frozenset(sources)
        )
        if reference.NAIVE:
            return frozenset(self.graph.up_set(key))
        try:
            return self._up[key]
        except KeyError:
            value = self._up[key] = frozenset(self.graph.up_set(key))
            return value

    def induced(self, region: frozenset[str]) -> OrderGraph:
        """The induced subgraph on ``region`` (shared instance; read-only)."""
        if reference.NAIVE:
            return self.graph.induced(region)
        if region == self._all:
            return self.graph
        try:
            return self._induced[region]
        except KeyError:
            value = self._induced[region] = self.graph.induced(region)
            return value

    def minors(self, region: frozenset[str]) -> frozenset[str]:
        """Minor vertices of the induced subgraph on ``region``."""
        if reference.NAIVE:
            return frozenset(self.induced(region).minor_vertices())
        try:
            return self._minors[region]
        except KeyError:
            value = self._minors[region] = frozenset(
                self.induced(region).minor_vertices()
            )
            return value

    def minimal(self, region: frozenset[str]) -> frozenset[str]:
        """Minimal (source) vertices of the induced subgraph on ``region``."""
        if reference.NAIVE:
            return frozenset(self.induced(region).minimal_vertices())
        try:
            return self._minimal[region]
        except KeyError:
            value = self._minimal[region] = frozenset(
                self.induced(region).minimal_vertices()
            )
            return value

    def block_labels(self, block: frozenset[str]) -> frozenset[str]:
        """The union of the labels of ``block`` (requires a label map)."""
        if self.labels is None:
            raise ValueError("RegionCache was built without labels")
        if reference.NAIVE:
            return self._compute_block_labels(block)
        try:
            return self._block_labels[block]
        except KeyError:
            value = self._block_labels[block] = self._compute_block_labels(
                block
            )
            return value

    def _compute_block_labels(self, block: frozenset[str]) -> frozenset[str]:
        assert self.labels is not None
        out: set[str] = set()
        for v in block:
            out |= self.labels[v]
        return frozenset(out)

    def fork(self) -> "RegionCache":
        """A twin cache over the same graph, sharing the structural memos.

        The up-set / induced-subgraph / minor / minimal dicts depend only
        on the graph, which is immutable while any cache over it is
        alive, and entries are only ever *added* — so the fork shares
        those dicts with its parent and both sides keep warming them for
        each other.  The label map and block-label memos are
        label-generation state and stay private per side: the
        ``_block_labels`` dict is copied, and ``labels`` is shared as a
        reference under a **replace-only invariant** — label churn goes
        through :meth:`RegionCacheHub.invalidate_labels` /
        :meth:`RegionCacheHub.get`, which *reassign* ``entry.labels``
        and never mutate the mapping in place (in-place label updates
        would corrupt verdicts across forks).  This is what lets a live
        :class:`~repro.api.session.Session` and its read-only snapshots
        share one set of region artifacts.
        """
        twin = RegionCache.__new__(RegionCache)
        twin.graph = self.graph
        twin.labels = self.labels
        twin._all = self._all
        twin._up = self._up
        twin._induced = self._induced
        twin._minors = self._minors
        twin._minimal = self._minimal
        twin._block_labels = dict(self._block_labels)
        twin._engine = self._engine
        return twin


class RegionCacheHub:
    """An identity-keyed registry of :class:`RegionCache` instances.

    The decision procedures normalize their input dag internally, so the
    graph a :class:`RegionCache` must be built over only exists *inside*
    the algorithm.  Normalization results are memoized per generation on
    the source graph, so across repeated calls against an unmutated
    database the algorithms land on the *same* normalized graph object —
    the hub hands back the same cache for it, letting a
    :class:`~repro.api.session.Session` share region artifacts across
    queries.  Entries hold a strong reference to their graph, so an id is
    never reused while its entry is alive.  The hub must be discarded
    (:meth:`clear`) whenever the underlying database graph mutates.
    """

    __slots__ = ("_caches",)

    def __init__(self) -> None:
        self._caches: dict[int, RegionCache] = {}

    def get(
        self,
        graph: OrderGraph,
        labels: Mapping[str, frozenset[str]] | None = None,
    ) -> RegionCache:
        """The shared cache for ``graph``, created on first use."""
        entry = self._caches.get(id(graph))
        if entry is None or entry.graph is not graph:
            entry = RegionCache(graph, labels)
            self._caches[id(graph)] = entry
        elif entry.labels is None and labels is not None:
            entry.labels = labels
        return entry

    def fork(self) -> "RegionCacheHub":
        """A hub whose entries share structural memos with this one.

        Every entry is forked (:meth:`RegionCache.fork`), so both hubs
        keep reading and extending the same up-set/induced/minor caches
        while label invalidation and :meth:`clear` stay private to each
        side.  Used when a session hands its execution context to a
        read-only snapshot.
        """
        twin = RegionCacheHub()
        twin._caches = {
            gid: entry.fork() for gid, entry in self._caches.items()
        }
        return twin

    def invalidate_labels(self) -> None:
        """Detach label maps and block-label memos from every entry.

        Called when database facts over existing order constants change:
        the structural region artifacts (up-sets, induced subgraphs,
        minors) only depend on the graph and stay warm; callers reattach
        fresh labels through :meth:`get`.
        """
        for entry in self._caches.values():
            entry.labels = None
            entry._block_labels.clear()

    def clear(self) -> None:
        """Drop every cached entry (call after mutating the base graph)."""
        self._caches.clear()
