"""The three semantics and the Section 2 reductions between them.

``D |=_O phi`` quantifies over models whose order is of type ``O``:

* ``FIN`` — all finite linear orders;
* ``Z``  — orders isomorphic to the integers;
* ``Q``  — dense orders isomorphic to the rationals.

Proposition 2.1 gives the containments ``|=_Fin  <=  |=_Z  <=  |=_Q``; they
coincide on *tight* queries (Proposition 2.2).  For nontight queries the
paper reduces both infinite semantics to the finite one:

* **Z** (Proposition 2.3): pad the database with fresh chains
  ``l1 < ... < ln`` below and ``r1 < ... < rn`` above every order constant,
  where ``n`` is the number of order variables in the query.  Then
  ``D |=_Z phi  iff  D' |=_Fin phi``.
* **Q** (Lemma 2.5 / Corollary 2.6): replace each disjunct by its full
  closure with the order variables occurring in no proper atom deleted.
  The result is tight, and ``D |=_Q phi  iff  D |=_Fin phi'``.

These transformations are pure functions from (database, query) to
(database, query); the dispatcher in :mod:`repro.core.entailment` applies
them before running any finite-semantics algorithm.
"""

from __future__ import annotations

import enum

from repro.core.atoms import OrderAtom, Rel
from repro.core.database import IndefiniteDatabase
from repro.core.query import DisjunctiveQuery, Query, as_dnf
from repro.core.sorts import fresh_names, ordc


class Semantics(enum.Enum):
    """Which class of linear orders models range over."""

    FIN = "fin"
    Z = "z"
    Q = "q"


def is_tight(query: Query) -> bool:
    """Tightness: in each disjunct every order variable occurs in a proper
    atom (Section 2).  Tight queries are semantics-independent
    (Proposition 2.2)."""
    return all(d.is_tight() for d in as_dnf(query).disjuncts)


def pad_for_integers(
    db: IndefiniteDatabase, query: Query
) -> IndefiniteDatabase:
    """The Proposition 2.3 database transformation ``D -> D'`` for Z.

    Adds chains of ``n`` fresh order constants strictly below and strictly
    above every existing order constant, where ``n`` is the number of
    distinct order variables of the query.  (With no order constants in
    ``D`` the two chains are still linked to each other so the padded
    database has the intended shape.)
    """
    dnf = as_dnf(query)
    n = max(
        (len(d.order_variables()) for d in dnf.disjuncts),
        default=0,
    )
    if n == 0:
        return db
    taken = set(db.order_constants) | set(db.object_constants)
    lows = [ordc(x) for x in fresh_names("_zlo", n, taken)]
    highs = [ordc(x) for x in fresh_names("_zhi", n, taken)]
    atoms: list[OrderAtom] = []
    atoms.extend(OrderAtom(a, Rel.LT, b) for a, b in zip(lows, lows[1:]))
    atoms.extend(OrderAtom(a, Rel.LT, b) for a, b in zip(highs, highs[1:]))
    atoms.append(OrderAtom(lows[-1], Rel.LT, highs[0]))
    for u in sorted(db.order_constants):
        atoms.append(OrderAtom(lows[-1], Rel.LT, ordc(u)))
        atoms.append(OrderAtom(ordc(u), Rel.LT, highs[0]))
    return db.union(IndefiniteDatabase.from_atoms(atoms))


def tighten_for_rationals(query: Query) -> DisjunctiveQuery:
    """The Lemma 2.5 query transformation ``phi -> phi'`` for Q.

    Each disjunct is replaced by its full closure with the order variables
    occurring in no proper atom (and all atoms mentioning them) removed.
    The result is tight, so by Corollary 2.6 finite-model evaluation of the
    transformed query decides the dense-order semantics of the original.
    """
    dnf = as_dnf(query)
    return DisjunctiveQuery(tuple(d.tightened() for d in dnf.disjuncts))


def transform(
    db: IndefiniteDatabase, query: Query, semantics: Semantics
) -> tuple[IndefiniteDatabase, DisjunctiveQuery]:
    """Reduce ``(db, query, semantics)`` to an equivalent FIN instance."""
    dnf = as_dnf(query)
    if semantics is Semantics.FIN or is_tight(dnf):
        return db, dnf
    if semantics is Semantics.Z:
        return pad_for_integers(db, dnf), dnf
    return db, tighten_for_rationals(dnf)
