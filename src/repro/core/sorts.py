"""Two-sorted terms: constants and variables of object and order sort.

The paper works in a two-sorted first-order language: a sort of *objects*
(agents, propositional letters, truth-value constants, ...) and an *order*
sort representing points of a linearly ordered domain.  Terms are constants
or variables, each carrying its sort.  The language has no function symbols.

Use the module-level constructors rather than instantiating :class:`Term`
directly::

    from repro.core.sorts import obj, ordc, objvar, ordvar

    a  = obj("A")        # object constant
    u  = ordc("u")       # order constant
    x  = objvar("x")     # object variable
    t1 = ordvar("t1")    # order variable
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Sort(enum.Enum):
    """The two sorts of the language."""

    OBJECT = "object"
    ORDER = "order"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sort.{self.name}"


@dataclass(frozen=True, order=True)
class Term:
    """A constant or variable of a given sort.

    Attributes:
        name: the symbol's name. Names are the identity of a term together
            with its sort and variable-ness; two terms with equal fields are
            the same term.
        sort: :class:`Sort.OBJECT` or :class:`Sort.ORDER`.
        is_var: True for variables, False for constants.
    """

    name: str
    sort: Sort
    is_var: bool = False

    @property
    def is_const(self) -> bool:
        """True when this term is a constant."""
        return not self.is_var

    @property
    def is_order(self) -> bool:
        """True when this term is of order sort."""
        return self.sort is Sort.ORDER

    @property
    def is_object(self) -> bool:
        """True when this term is of object sort."""
        return self.sort is Sort.OBJECT

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        kind = "var" if self.is_var else "const"
        return f"{self.sort.value}-{kind}({self.name})"


def obj(name: str) -> Term:
    """An object constant."""
    return Term(name, Sort.OBJECT, is_var=False)


def ordc(name: str) -> Term:
    """An order constant (the paper's "special sort of null value")."""
    return Term(name, Sort.ORDER, is_var=False)


def objvar(name: str) -> Term:
    """An object variable."""
    return Term(name, Sort.OBJECT, is_var=True)


def ordvar(name: str) -> Term:
    """An order variable."""
    return Term(name, Sort.ORDER, is_var=True)


def fresh_names(prefix: str, count: int, taken: set[str]) -> list[str]:
    """Generate ``count`` names starting with ``prefix`` avoiding ``taken``.

    Used by the constant-elimination construction and by the Z-semantics
    reduction (Proposition 2.3), both of which need constants/variables that
    do not clash with those already in a database or query.

    The returned names are added to ``taken`` so repeated calls stay fresh.
    """
    out: list[str] = []
    i = 0
    while len(out) < count:
        candidate = f"{prefix}{i}"
        if candidate not in taken:
            taken.add(candidate)
            out.append(candidate)
        i += 1
    return out
