"""The execution engine: batched, snapshot-parallel, incrementally viewed.

Everything in :mod:`repro.api` answers one query at a time against one
mutable session.  This subsystem turns that library into an engine for
request *streams*:

* :mod:`repro.engine.batch` — :func:`~repro.engine.batch.execute_many`
  groups a batch of requests by compiled plan and pools the
  minimal-model sweeps; :func:`~repro.engine.batch.execute_stream`
  interleaves batched reads with writes in stream order, and with
  ``workers=``/``pool=`` pipelines a mixed stream across write
  boundaries: one epoch's reads execute on a daemon pool while the main
  process applies the next epoch's writes.
* :mod:`repro.engine.snapshot` — cheap read-only
  :class:`~repro.engine.snapshot.SessionSnapshot` copies (shared frozen
  database + warm closures) safe to ship to workers.
* :mod:`repro.engine.pool` — :class:`~repro.engine.pool.WorkerPool`
  shards plan groups across per-batch processes;
  :class:`~repro.engine.pool.DaemonPool` keeps *persistent* workers
  alive across batches, resyncing them to newer session state with
  incremental snapshot deltas.  Both merge deterministically and both
  degrade to in-process sequential execution in restricted sandboxes.
* :mod:`repro.engine.views` — :class:`~repro.engine.views.MaterializedView`
  keeps a registered certain-answers query up to date across mutations,
  re-evaluating only the delta the bumped generation permits.
* :mod:`repro.engine.wal` — :class:`~repro.engine.wal.WriteAheadLog`
  makes a session durable (checksummed per-mutation records, snapshot
  compaction, ``Session.recover``) and doubles as a cross-process change
  feed via :class:`~repro.engine.wal.WalFollower`.
* :mod:`repro.engine.faults` — deterministic, seedable fault injection
  (worker crash/hang/delay, torn WAL writes, lost resync deltas) behind
  the ``REPRO_FAULTS`` env knob, driving the pool's timeout / degrade /
  self-heal hardening.

Quickstart::

    from repro.api import Session
    from repro.engine import MaterializedView, QueryRequest, execute_many

    session = Session(db)
    results = execute_many(session, [QueryRequest(q) for q in queries])
    view = MaterializedView(session, open_query, free_vars=(x,))
    session.assert_facts(fact)        # view tracks the delta
    current = view.answers()
"""

from repro.engine.batch import (
    Mutation,
    QueryRequest,
    execute_many,
    execute_stream,
)
from repro.engine.pool import DaemonPool, WorkerPool, execute_parallel
from repro.engine.snapshot import SessionSnapshot, SnapshotMutationError
from repro.engine.views import MaterializedView
from repro.engine.wal import WalError, WalFollower, WriteAheadLog, recover

__all__ = [
    "DaemonPool",
    "MaterializedView",
    "Mutation",
    "QueryRequest",
    "SessionSnapshot",
    "SnapshotMutationError",
    "WalError",
    "WalFollower",
    "WorkerPool",
    "WriteAheadLog",
    "execute_many",
    "execute_parallel",
    "execute_stream",
    "recover",
]
