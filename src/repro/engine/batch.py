"""Batched query execution: one sweep per plan group, not per query.

A service fronting an indefinite database does not see one query at a
time — it sees a *stream* of requests, many of them textually identical
(dashboards re-asking the same question, clients polling the same view)
and many sharing the expensive part of their evaluation.
:func:`execute_many` exploits both:

* **plan grouping** — requests are grouped by their compiled-plan key
  (query, semantics, method, free variables); each group is executed
  once against the session's warm caches and the single
  :class:`~repro.api.result.Result` is fanned back out to every request
  in the group;
* **a combined minimal-model sweep** — every query that takes the
  model-enumeration path needs a pass over the minimal models of the
  database: open plans one per candidate substitution, *closed*
  bruteforce-path plans one per query ("does every model satisfy?").
  In a batch, all such plan groups pool into one
  :func:`~repro.algorithms.bruteforce.entailment_sweep`: the region/
  valid-block tables are built *once for the whole batch*, candidate
  tuples from different requests that substitute to the same ground
  query are deduplicated and decided together, and closed queries ride
  the same sweep with their countermodels reconstructed from it.

:func:`execute_stream` extends this to mixed read/write traffic: maximal
runs of reads between two writes form one batch, and writes are applied
through the session's granular-invalidation mutators in stream order, so
the observable results are exactly those of a sequential one-at-a-time
loop.  Consecutive writes of the same polarity (asserts, or retracts)
are coalesced into a single mutator call — one invalidation round —
before the next read batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Iterable

from repro.algorithms.bruteforce import entailment_sweep
from repro.api.plan import PreparedQuery
from repro.api.result import Result
from repro.api.session import Session
from repro.core.atoms import OrderAtom, ProperAtom
from repro.core.query import Query
from repro.core.semantics import Semantics
from repro.core.sorts import Term, obj


@dataclass(frozen=True)
class QueryRequest:
    """One read in a request stream (closed, or open via ``free_vars``)."""

    query: Query
    semantics: Semantics = Semantics.FIN
    method: str = "auto"
    free_vars: tuple[Term, ...] | None = None

    @property
    def plan_key(self) -> tuple:
        """Requests with equal keys share one compiled plan and result."""
        return (self.query, self.semantics, self.method, self.free_vars)

    def prepare(self, session: Session) -> PreparedQuery:
        """The session's (memoized) plan for this request."""
        return session.prepare(
            self.query, self.semantics, self.method, free_vars=self.free_vars
        )


#: Mutation kinds understood by :class:`Mutation` — exactly the Session
#: mutator names.
MUTATION_KINDS = (
    "assert_facts",
    "retract_facts",
    "assert_order",
    "retract_order",
)


@dataclass(frozen=True)
class Mutation:
    """One write in a request stream."""

    kind: str
    atoms: tuple[ProperAtom | OrderAtom, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise ValueError(f"unknown mutation kind {self.kind!r}")

    def apply(self, session: Session) -> None:
        """Apply this write through the session's invalidation machinery."""
        getattr(session, self.kind)(*self.atoms)


def _poolable(plan: PreparedQuery):
    """The shared pooling guard: ``(static, ctx)`` when the plan is
    constant-free, unpadded (so it binds to the session's shared base
    context), consistent and has a live non-trivial DNF — the
    preconditions every early return of ``PreparedQuery._run_closed`` /
    ``_run_answers`` handles before the model path; ``None`` otherwise.
    """
    if plan._has_constants:
        return None
    if not plan.session.context().consistent:
        return None
    static, ctx = plan._bind()
    if static.pad_dnf is not None:
        return None
    if not static.dnf.disjuncts or static.any_empty:
        return None
    return static, ctx


def _sweepable(plan: PreparedQuery) -> bool:
    """Would this open plan take the minimal-model path on this database?

    Mirrors the dispatch of ``PreparedQuery._run_answers``: a poolable
    open plan that does *not* qualify for the Section 4 split (the split
    path is memoized and cheap; the model path is the one worth pooling
    across the batch).
    """
    if plan.free_vars is None:
        return False
    bound = _poolable(plan)
    if bound is None:
        return False
    static, ctx = bound
    if plan._splits_apply(static, ctx):
        return False
    return plan.method in ("auto", "bruteforce")


def _closed_sweepable(plan: PreparedQuery) -> bool:
    """Would this *closed* plan take the bruteforce model path?

    Mirrors the dispatch of ``PreparedQuery._run_closed``: a poolable
    closed plan that either asks for ``bruteforce`` explicitly or
    auto-dispatches to it (n-ary atoms, a '!=' database, or a
    non-splittable fact set — the
    :meth:`~repro.api.plan.PreparedQuery._closed_bruteforce_path`
    predicate ``_run_closed`` itself uses).  Each such query needs only
    "does every minimal model satisfy?" — so a batch of them shares one
    model sweep with the open plans.
    """
    if plan.free_vars is not None:
        return False
    bound = _poolable(plan)
    if bound is None:
        return False
    static, ctx = bound
    return plan._closed_bruteforce_path(static, ctx)


def execute_many(
    session: Session, requests: Iterable[QueryRequest]
) -> list[Result]:
    """Execute a batch of reads, sharing work across the whole batch.

    Returns one :class:`~repro.api.result.Result` per request, in
    request order; requests with equal plan keys receive the *same*
    result object.  Results are identical in verdict, answers and
    countermodels to executing each request's plan individually (the
    batched model sweep reports its method as ``"batched-models"``).
    """
    requests = list(requests)
    groups: dict[tuple, list[int]] = {}
    for i, request in enumerate(requests):
        groups.setdefault(request.plan_key, []).append(i)

    results: list[Result | None] = [None] * len(requests)
    open_pool: list[tuple[list[int], PreparedQuery]] = []
    closed_pool: list[tuple[list[int], PreparedQuery]] = []
    for key, indices in groups.items():
        plan = requests[indices[0]].prepare(session)
        if _sweepable(plan):
            open_pool.append((indices, plan))
        elif _closed_sweepable(plan):
            closed_pool.append((indices, plan))
        else:
            result = plan.execute()
            for i in indices:
                results[i] = result

    if len(open_pool) + len(closed_pool) <= 1:
        # a lone model-path plan gains nothing from pooling (and keeps
        # its per-generation result memo and native method tag)
        for indices, plan in open_pool + closed_pool:
            result = plan.execute()
            for i in indices:
                results[i] = result
    else:
        # Pool every model-path plan into ONE sweep over shared minimal-
        # model tables.  Open plans contribute their candidate tuples'
        # substituted queries; closed plans contribute their DNF directly
        # (identical substituted queries from different plans merge into
        # one satisfiability check).  Closed verdicts come back with the
        # sweep's countermodel witness.
        base = session.context()
        per_plan: list[tuple[list[int], PreparedQuery, dict]] = []
        queries: set = set()
        for indices, plan in open_pool:
            static, ctx = plan._bind()
            domain = ctx.object_domain
            combos = iter_product(domain, repeat=len(plan.free_vars))
            groups_of = plan.candidate_queries(static, combos)
            per_plan.append((indices, plan, groups_of))
            queries.update(groups_of)
        closed_queries: dict = {}
        for indices, plan in closed_pool:
            static, _ctx = plan._bind()
            closed_queries.setdefault(static.dnf, []).append(indices)
        queries.update(closed_queries)
        outcome = entailment_sweep(
            base.db,
            queries,
            caches=base.hub,
            graph=base.graph,
            witness_queries=closed_queries,
        )
        for indices, _plan, groups_of in per_plan:
            answers = frozenset(
                combo
                for q, combos in groups_of.items()
                if outcome[q].holds
                for combo in combos
            )
            result = Result(bool(answers), "batched-models", answers=answers)
            for i in indices:
                results[i] = result
        for dnf, index_groups in closed_queries.items():
            witness = outcome[dnf]
            result = Result(
                witness.holds, "batched-models", witness.countermodel
            )
            for indices in index_groups:
                for i in indices:
                    results[i] = result

    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def execute_stream(
    session: Session, ops: Iterable[QueryRequest | Mutation]
) -> list[Result | None]:
    """Run a mixed read/write stream with reads batched between writes.

    ``ops`` interleaves :class:`QueryRequest` and :class:`Mutation`; the
    returned list aligns with ``ops`` — a :class:`Result` for each read,
    ``None`` for each write.  Writes are applied in stream order, so
    every read observes exactly the database a sequential loop would
    have shown it; maximal runs of consecutive reads share one
    :func:`execute_many` batch, and maximal runs of consecutive writes
    of one polarity coalesce into a single mutator call (asserts route
    order atoms ahead of proper facts exactly like a one-at-a-time
    replay, and assert/retract boundaries are preserved, so the final
    state and the invalidation generations are those of the sequential
    loop — minus the redundant intermediate invalidations).
    """
    ops = list(ops)
    out: list[Result | None] = [None] * len(ops)
    pending: list[int] = []
    writes: list[Mutation] = []

    def flush_writes() -> None:
        pending_writes = writes[:]
        writes.clear()
        polarity = None
        staged: list = []
        for mutation in pending_writes:
            asserting = mutation.kind.startswith("assert")
            if asserting and not all(a.is_ground for a in mutation.atoms):
                # The assert mutators reject non-ground atoms; apply the
                # offending write alone so it raises with exactly the
                # prefix state a sequential one-at-a-time loop would
                # leave behind (retracts never validate: they no-op on
                # unknown atoms and coalesce safely).
                _apply_run(session, polarity, staged)
                polarity, staged = None, []
                mutation.apply(session)
                continue
            if polarity is not None and asserting is not polarity:
                _apply_run(session, polarity, staged)
                staged = []
            polarity = asserting
            staged.extend(mutation.atoms)
        _apply_run(session, polarity, staged)

    def flush_reads() -> None:
        if not pending:
            return
        batch = [ops[i] for i in pending]
        for i, result in zip(pending, execute_many(session, batch)):
            out[i] = result
        pending.clear()

    for i, op in enumerate(ops):
        if isinstance(op, QueryRequest):
            flush_writes()
            pending.append(i)
        elif isinstance(op, Mutation):
            flush_reads()
            writes.append(op)
        else:
            raise TypeError(f"stream op must be QueryRequest or Mutation: {op!r}")
    flush_writes()
    flush_reads()
    return out


def _apply_run(session: Session, asserting: bool | None, atoms: list) -> None:
    """Apply one coalesced same-polarity write run as a single mutation."""
    if asserting is None or not atoms:
        return
    if asserting:
        session.assert_facts(*atoms)
    else:
        session.retract_facts(*atoms)


__all__ = [
    "MUTATION_KINDS",
    "Mutation",
    "QueryRequest",
    "execute_many",
    "execute_stream",
]
