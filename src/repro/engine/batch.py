"""Batched query execution: one sweep per plan group, not per query.

A service fronting an indefinite database does not see one query at a
time — it sees a *stream* of requests, many of them textually identical
(dashboards re-asking the same question, clients polling the same view)
and many sharing the expensive part of their evaluation.
:func:`execute_many` exploits both:

* **plan grouping** — requests are grouped by their compiled-plan key
  (query, semantics, method, free variables); each group is executed
  once against the session's warm caches and the single
  :class:`~repro.api.result.Result` is fanned back out to every request
  in the group;
* **a combined minimal-model sweep** — open queries that take the
  model-enumeration path each need one pass over the minimal models of
  the database.  In a batch, all such plan groups pool their candidate
  substitutions into one :func:`~repro.api.plan.prune_candidates_by_models`
  sweep: the models are enumerated *once for the whole batch*, and
  candidate tuples from different requests that substitute to the same
  ground query are deduplicated and decided together.

:func:`execute_stream` extends this to mixed read/write traffic: maximal
runs of reads between two writes form one batch, and writes are applied
through the session's granular-invalidation mutators in stream order, so
the observable results are exactly those of a sequential one-at-a-time
loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Iterable

from repro.api.plan import PreparedQuery, prune_candidates_by_models
from repro.api.result import Result
from repro.api.session import Session
from repro.core.atoms import OrderAtom, ProperAtom
from repro.core.query import Query
from repro.core.semantics import Semantics
from repro.core.sorts import Term, obj


@dataclass(frozen=True)
class QueryRequest:
    """One read in a request stream (closed, or open via ``free_vars``)."""

    query: Query
    semantics: Semantics = Semantics.FIN
    method: str = "auto"
    free_vars: tuple[Term, ...] | None = None

    @property
    def plan_key(self) -> tuple:
        """Requests with equal keys share one compiled plan and result."""
        return (self.query, self.semantics, self.method, self.free_vars)

    def prepare(self, session: Session) -> PreparedQuery:
        """The session's (memoized) plan for this request."""
        return session.prepare(
            self.query, self.semantics, self.method, free_vars=self.free_vars
        )


#: Mutation kinds understood by :class:`Mutation` — exactly the Session
#: mutator names.
MUTATION_KINDS = (
    "assert_facts",
    "retract_facts",
    "assert_order",
    "retract_order",
)


@dataclass(frozen=True)
class Mutation:
    """One write in a request stream."""

    kind: str
    atoms: tuple[ProperAtom | OrderAtom, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise ValueError(f"unknown mutation kind {self.kind!r}")

    def apply(self, session: Session) -> None:
        """Apply this write through the session's invalidation machinery."""
        getattr(session, self.kind)(*self.atoms)


def _sweepable(plan: PreparedQuery) -> bool:
    """Would this open plan take the minimal-model path on this database?

    Mirrors the dispatch of ``PreparedQuery._run_answers``: the plan must
    be open, constant-free and unpadded (so it binds to the session's
    shared base context), have a live non-trivial DNF, and *not* qualify
    for the Section 4 split (the split path is memoized and cheap; the
    model path is the one worth pooling across the batch).
    """
    if plan.free_vars is None or plan._has_constants:
        return False
    if not plan.session.context().consistent:
        return False
    static, ctx = plan._bind()
    if static.pad_dnf is not None:
        return False
    if not static.dnf.disjuncts or static.any_empty:
        return False
    if plan._splits_apply(static, ctx):
        return False
    return plan.method in ("auto", "bruteforce")


def execute_many(
    session: Session, requests: Iterable[QueryRequest]
) -> list[Result]:
    """Execute a batch of reads, sharing work across the whole batch.

    Returns one :class:`~repro.api.result.Result` per request, in
    request order; requests with equal plan keys receive the *same*
    result object.  Results are identical in verdict and answers to
    executing each request's plan individually (the batched model sweep
    reports its method as ``"batched-models"``).
    """
    requests = list(requests)
    groups: dict[tuple, list[int]] = {}
    for i, request in enumerate(requests):
        groups.setdefault(request.plan_key, []).append(i)

    results: list[Result | None] = [None] * len(requests)
    sweep: list[tuple[list[int], PreparedQuery]] = []
    for key, indices in groups.items():
        plan = requests[indices[0]].prepare(session)
        if _sweepable(plan):
            sweep.append((indices, plan))
            continue
        result = plan.execute()
        for i in indices:
            results[i] = result

    if len(sweep) == 1:
        # a lone model-path plan gains nothing from pooling
        indices, plan = sweep[0]
        result = plan.execute()
        for i in indices:
            results[i] = result
    elif sweep:
        # Pool every model-path plan's candidates into ONE enumeration of
        # the minimal models.  Tokens are (entry, combo) pairs so each
        # plan gets its own answers back; identical substituted queries
        # from different plans merge into one satisfiability check.
        candidates: dict = {}
        entries = []
        for entry, (indices, plan) in enumerate(sweep):
            static, ctx = plan._bind()
            domain = ctx.object_domain
            combos = iter_product(domain, repeat=len(plan.free_vars))
            for q, cs in plan.candidate_queries(static, combos).items():
                candidates.setdefault(q, []).extend(
                    (entry, combo) for combo in cs
                )
            entries.append((indices, plan))
        surviving = prune_candidates_by_models(
            session.context().db, candidates
        )
        answers_of: dict[int, set] = {e: set() for e in range(len(entries))}
        for entry, combo in surviving:
            answers_of[entry].add(combo)
        for entry, (indices, _plan) in enumerate(entries):
            answers = frozenset(answers_of[entry])
            result = Result(bool(answers), "batched-models", answers=answers)
            for i in indices:
                results[i] = result

    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def execute_stream(
    session: Session, ops: Iterable[QueryRequest | Mutation]
) -> list[Result | None]:
    """Run a mixed read/write stream with reads batched between writes.

    ``ops`` interleaves :class:`QueryRequest` and :class:`Mutation`; the
    returned list aligns with ``ops`` — a :class:`Result` for each read,
    ``None`` for each write.  Writes are applied in stream order, so
    every read observes exactly the database a sequential loop would
    have shown it; maximal runs of consecutive reads share one
    :func:`execute_many` batch.
    """
    ops = list(ops)
    out: list[Result | None] = [None] * len(ops)
    pending: list[int] = []

    def flush() -> None:
        if not pending:
            return
        batch = [ops[i] for i in pending]
        for i, result in zip(pending, execute_many(session, batch)):
            out[i] = result
        pending.clear()

    for i, op in enumerate(ops):
        if isinstance(op, QueryRequest):
            pending.append(i)
        elif isinstance(op, Mutation):
            flush()
            op.apply(session)
        else:
            raise TypeError(f"stream op must be QueryRequest or Mutation: {op!r}")
    flush()
    return out


__all__ = [
    "MUTATION_KINDS",
    "Mutation",
    "QueryRequest",
    "execute_many",
    "execute_stream",
]
