"""Batched query execution: one sweep per plan group, not per query.

A service fronting an indefinite database does not see one query at a
time — it sees a *stream* of requests, many of them textually identical
(dashboards re-asking the same question, clients polling the same view)
and many sharing the expensive part of their evaluation.
:func:`execute_many` exploits both:

* **plan grouping** — requests are grouped by their compiled-plan key
  (query, semantics, method, free variables); each group is executed
  once against the session's warm caches and the single
  :class:`~repro.api.result.Result` is fanned back out to every request
  in the group;
* **a combined minimal-model sweep** — every query that takes the
  model-enumeration path needs a pass over the minimal models of the
  database: open plans one per candidate substitution, *closed*
  bruteforce-path plans one per query ("does every model satisfy?").
  In a batch, all such plan groups pool into one
  :func:`~repro.algorithms.bruteforce.entailment_sweep`: the region/
  valid-block tables are built *once for the whole batch*, candidate
  tuples from different requests that substitute to the same ground
  query are deduplicated and decided together, and closed queries ride
  the same sweep with their countermodels reconstructed from it.

:func:`execute_stream` extends this to mixed read/write traffic: maximal
runs of reads between two writes form one batch, and writes are applied
through the session's granular-invalidation mutators in stream order, so
the results are exactly — byte for byte — those of a sequential
one-at-a-time loop.  Consecutive writes of the same polarity (asserts,
or retracts) are coalesced into a single mutator call — one invalidation
round — before the next read batch; if a coalesced call raises, the run
is replayed one mutation at a time so the exception surfaces with
exactly the prefix state a sequential loop would have left behind.

Passing ``workers=N`` (or a live :class:`~repro.engine.pool.DaemonPool`
via ``pool=``) turns on the **write-boundary epoch pipeline**: the
stream splits into epochs at write boundaries, each boundary ships one
incremental snapshot delta to the pool's persistent workers, and epoch
*N*'s reads execute on the pool while the main process is already
applying epoch *N+1*'s writes.  Sequential semantics are preserved by
construction — every read runs against the exact snapshot a sequential
loop would have shown it — and the merge is the same deterministic
per-plan fan-out, so pipelined results equal sequential ones exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Iterable

from repro.algorithms.bruteforce import entailment_sweep
from repro.api.plan import PreparedQuery
from repro.api.result import Result
from repro.api.session import Session
from repro.core.atoms import OrderAtom, ProperAtom
from repro.core.query import Query
from repro.core.semantics import Semantics
from repro.core.sorts import Term, obj


@dataclass(frozen=True)
class QueryRequest:
    """One read in a request stream (closed, or open via ``free_vars``)."""

    query: Query
    semantics: Semantics = Semantics.FIN
    method: str = "auto"
    free_vars: tuple[Term, ...] | None = None

    @property
    def plan_key(self) -> tuple:
        """Requests with equal keys share one compiled plan and result."""
        return (self.query, self.semantics, self.method, self.free_vars)

    def prepare(self, session: Session) -> PreparedQuery:
        """The session's (memoized) plan for this request."""
        return session.prepare(
            self.query, self.semantics, self.method, free_vars=self.free_vars
        )


#: Mutation kinds understood by :class:`Mutation` — exactly the Session
#: mutator names.
MUTATION_KINDS = (
    "assert_facts",
    "retract_facts",
    "assert_order",
    "retract_order",
)


@dataclass(frozen=True)
class Mutation:
    """One write in a request stream."""

    kind: str
    atoms: tuple[ProperAtom | OrderAtom, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise ValueError(f"unknown mutation kind {self.kind!r}")

    def apply(self, session: Session) -> None:
        """Apply this write through the session's invalidation machinery."""
        getattr(session, self.kind)(*self.atoms)


def _poolable(plan: PreparedQuery):
    """The shared pooling guard: ``(static, ctx)`` when the plan is
    constant-free, unpadded (so it binds to the session's shared base
    context), consistent and has a live non-trivial DNF — the
    preconditions every early return of ``PreparedQuery._run_closed`` /
    ``_run_answers`` handles before the model path; ``None`` otherwise.
    """
    if plan._has_constants:
        return None
    if not plan.session.context().consistent:
        return None
    static, ctx = plan._bind()
    if static.pad_dnf is not None:
        return None
    if not static.dnf.disjuncts or static.any_empty:
        return None
    return static, ctx


def _sweepable(plan: PreparedQuery) -> bool:
    """Would this open plan take the minimal-model path on this database?

    Mirrors the dispatch of ``PreparedQuery._run_answers``: a poolable
    open plan that does *not* qualify for the Section 4 split (the split
    path is memoized and cheap; the model path is the one worth pooling
    across the batch).
    """
    if plan.free_vars is None:
        return False
    bound = _poolable(plan)
    if bound is None:
        return False
    static, ctx = bound
    if plan._splits_apply(static, ctx):
        return False
    return plan.method in ("auto", "bruteforce")


def _closed_sweepable(plan: PreparedQuery) -> bool:
    """Would this *closed* plan take the bruteforce model path?

    Mirrors the dispatch of ``PreparedQuery._run_closed``: a poolable
    closed plan that either asks for ``bruteforce`` explicitly or
    auto-dispatches to it (n-ary atoms, a '!=' database, or a
    non-splittable fact set — the
    :meth:`~repro.api.plan.PreparedQuery._closed_bruteforce_path`
    predicate ``_run_closed`` itself uses).  Each such query needs only
    "does every minimal model satisfy?" — so a batch of them shares one
    model sweep with the open plans.
    """
    if plan.free_vars is not None:
        return False
    bound = _poolable(plan)
    if bound is None:
        return False
    static, ctx = bound
    return plan._closed_bruteforce_path(static, ctx)


def execute_many(
    session: Session, requests: Iterable[QueryRequest]
) -> list[Result]:
    """Execute a batch of reads, sharing work across the whole batch.

    Returns one :class:`~repro.api.result.Result` per request, in
    request order; requests with equal plan keys receive the *same*
    result object.  Results are byte-for-byte identical — verdict,
    method tag, countermodel and answers — to executing each request's
    plan individually: plans decided by the combined sweep come back
    with the method tag and witness their own execution would have
    produced, so batched, pooled and sequential execution can never be
    told apart from the results.
    """
    requests = list(requests)
    groups: dict[tuple, list[int]] = {}
    for i, request in enumerate(requests):
        groups.setdefault(request.plan_key, []).append(i)

    results: list[Result | None] = [None] * len(requests)
    open_pool: list[tuple[list[int], PreparedQuery]] = []
    closed_pool: list[tuple[list[int], PreparedQuery]] = []
    for key, indices in groups.items():
        plan = requests[indices[0]].prepare(session)
        if _sweepable(plan):
            open_pool.append((indices, plan))
        elif _closed_sweepable(plan):
            closed_pool.append((indices, plan))
        else:
            result = plan.execute()
            for i in indices:
                results[i] = result

    if len(open_pool) + len(closed_pool) <= 1:
        # a lone model-path plan gains nothing from pooling (and keeps
        # its per-generation result memo and native method tag)
        for indices, plan in open_pool + closed_pool:
            result = plan.execute()
            for i in indices:
                results[i] = result
    else:
        # Pool every model-path plan into ONE sweep over shared minimal-
        # model tables.  Open plans contribute their candidate tuples'
        # substituted queries; closed plans contribute their DNF directly
        # (identical substituted queries from different plans merge into
        # one satisfiability check).  Closed verdicts come back with the
        # sweep's countermodel witness — the same DFS-first witness a
        # solo `entails_bruteforce` reconstructs — and every result
        # carries the method tag its plan's own execution would have.
        base = session.context()
        per_plan: list[tuple[list[int], PreparedQuery, dict]] = []
        queries: set = set()
        for indices, plan in open_pool:
            static, ctx = plan._bind()
            domain = ctx.object_domain
            combos = iter_product(domain, repeat=len(plan.free_vars))
            groups_of = plan.candidate_queries(static, combos)
            per_plan.append((indices, plan, groups_of))
            queries.update(groups_of)
        closed_queries: dict = {}
        for indices, plan in closed_pool:
            static, _ctx = plan._bind()
            closed_queries.setdefault(static.dnf, []).append(indices)
        queries.update(closed_queries)
        outcome = entailment_sweep(
            base.db,
            queries,
            caches=base.hub,
            graph=base.graph,
            witness_queries=closed_queries,
        )
        for indices, _plan, groups_of in per_plan:
            answers = frozenset(
                combo
                for q, combos in groups_of.items()
                if outcome[q].holds
                for combo in combos
            )
            result = Result(bool(answers), "prepared-models", answers=answers)
            for i in indices:
                results[i] = result
        for dnf, index_groups in closed_queries.items():
            witness = outcome[dnf]
            result = Result(
                witness.holds, "bruteforce", witness.countermodel
            )
            for indices in index_groups:
                for i in indices:
                    results[i] = result

    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def _epochs(ops: list):
    """Split a stream into ``(write_run, read_indices)`` epochs, in order.

    Every op lands in exactly one epoch: a maximal run of consecutive
    writes followed by the maximal run of consecutive reads after it
    (either side may be empty at the stream's edges).
    """
    idx, n = 0, len(ops)
    while idx < n:
        writes: list[Mutation] = []
        while idx < n and isinstance(ops[idx], Mutation):
            writes.append(ops[idx])
            idx += 1
        reads: list[int] = []
        while idx < n and isinstance(ops[idx], QueryRequest):
            reads.append(idx)
            idx += 1
        yield writes, reads


def _apply_writes(session: Session, mutations: list[Mutation]) -> None:
    """Apply a run of consecutive writes in stream order.

    Maximal same-polarity sub-runs (asserts, or retracts) coalesce into
    a single mutator call — one invalidation round.  The session
    mutators validate the whole call before mutating anything, so when a
    coalesced call raises the session is untouched: the run falls back
    to a one-mutation-at-a-time replay, which applies the earlier writes
    and re-raises at exactly the op — with exactly the prefix state — a
    sequential loop would have raised at.
    """
    runs: list[tuple[bool, list[Mutation]]] = []
    for mutation in mutations:
        asserting = mutation.kind.startswith("assert")
        if runs and runs[-1][0] is asserting:
            runs[-1][1].append(mutation)
        else:
            runs.append((asserting, [mutation]))
    for asserting, run in runs:
        if len(run) == 1:
            run[0].apply(session)
            continue
        atoms = [a for m in run for a in m.atoms]
        try:
            if asserting:
                session.assert_facts(*atoms)
            else:
                session.retract_facts(*atoms)
        except Exception:
            # Atomic mutators left no trace; the sequential replay
            # either raises at the true offending mutation (with the
            # prefix applied) or proves the failure was a coalescing
            # artifact and completes the run.
            for mutation in run:
                mutation.apply(session)


def execute_stream(
    session: Session,
    ops: Iterable[QueryRequest | Mutation],
    *,
    pool=None,
    workers: int | None = None,
) -> list[Result | None]:
    """Run a mixed read/write stream with reads batched between writes.

    ``ops`` interleaves :class:`QueryRequest` and :class:`Mutation`; the
    returned list aligns with ``ops`` — a :class:`Result` for each read,
    ``None`` for each write.  Writes are applied in stream order, so
    every read observes exactly the database a sequential loop would
    have shown it; maximal runs of consecutive reads share one
    :func:`execute_many` batch, and maximal runs of consecutive writes
    of one polarity coalesce into a single mutator call (asserts route
    order atoms ahead of proper facts exactly like a one-at-a-time
    replay, assert/retract boundaries are preserved, and a raising
    coalesced call falls back to the sequential replay — see
    :func:`_apply_writes` — so the final state, and the state at any
    raised exception, are those of the sequential loop, minus the
    redundant intermediate invalidations).

    **Pipelined mode** — pass ``workers=N`` (a private
    :class:`~repro.engine.pool.DaemonPool` is created for the stream and
    closed afterwards) or ``pool=`` (a live daemon pool, left resynced
    to the final state): reads execute on the pool's persistent workers
    one write-boundary epoch behind the main process's writes.  Results
    are byte-for-byte those of the sequential mode; only the wall-clock
    changes.  Reads are pre-validated at submit time
    (:meth:`repro.api.plan.PreparedQuery.validate`), so an invalid read
    raises before later epochs' writes are applied — both raising
    reads and raising writes keep exact raise-point parity with the
    sequential loop (same exception, same session state at the raise).
    """
    ops = list(ops)
    for op in ops:
        if not isinstance(op, (QueryRequest, Mutation)):
            raise TypeError(
                f"stream op must be QueryRequest or Mutation: {op!r}"
            )
    if pool is not None or (workers is not None and workers > 1):
        return _execute_stream_pipelined(session, ops, pool, workers)
    return _execute_stream_sequential(session, ops)


def _execute_stream_sequential(
    session: Session, ops: list
) -> list[Result | None]:
    """The in-process epoch loop: apply a write run, batch a read run."""
    out: list[Result | None] = [None] * len(ops)
    for writes, read_indices in _epochs(ops):
        if writes:
            _apply_writes(session, writes)
        if read_indices:
            batch = [ops[i] for i in read_indices]
            for i, result in zip(read_indices, execute_many(session, batch)):
                out[i] = result
    return out


def _execute_stream_pipelined(
    session: Session, ops: list, pool, workers: int | None
) -> list[Result | None]:
    """Write-boundary epoch pipelining over a persistent daemon pool.

    Each epoch boundary costs one snapshot plus one incremental resync
    delta (:meth:`repro.api.session.Session.snapshot_delta`) shipped to
    every worker; submissions and resyncs ride the same per-worker
    message stream, so neither blocks the main process.  Epoch *N*'s
    reads therefore execute on the pool while the main process applies
    epoch *N+1*'s writes; the in-flight results are collected just
    before the next submission.  Sequential semantics hold by
    construction — each read runs against exactly the snapshot a
    sequential loop would have shown it — and the merge is
    :func:`execute_many`'s deterministic per-plan fan-out.
    """
    from repro.engine.pool import DaemonPool

    out: list[Result | None] = [None] * len(ops)
    own_pool = pool is None
    if own_pool:
        pool = DaemonPool(session, workers=workers)
    if not pool.parallel:
        # No real workers (degraded sandbox, workers=1): the pipeline
        # would only add per-epoch snapshot and copy-on-write churn
        # with zero overlap — run the plain sequential loop instead,
        # keeping an external pool's end-of-stream sync contract.
        try:
            return _execute_stream_sequential(session, ops)
        finally:
            if own_pool:
                pool.close()
            else:
                pool.resnapshot(session)
    inflight: tuple[list[int], object] | None = None

    def collect_inflight() -> None:
        nonlocal inflight
        if inflight is None:
            return
        indices, pending = inflight
        inflight = None
        for i, result in zip(indices, pool.collect(pending)):
            out[i] = result

    try:
        for writes, read_indices in _epochs(ops):
            if writes:
                _apply_writes(session, writes)
            if read_indices:
                collect_inflight()
                # Pre-validate in batch order *before* shipping the
                # epoch: a raising read must surface here — where the
                # sequential loop would raise it, with the same session
                # state — not an epoch later at the collection point.
                for i in read_indices:
                    ops[i].prepare(session).validate()
                pool.resnapshot(session)
                pending = pool.submit([ops[i] for i in read_indices])
                inflight = (read_indices, pending)
        collect_inflight()
        if not own_pool:
            # a trailing write epoch has no read batch to trigger a
            # resync; sync here so the caller's pool really is left at
            # the stream's final state, as documented
            pool.resnapshot(session)
    finally:
        if own_pool:
            pool.close()
        elif inflight is not None:
            # an exception abandoned the stream mid-flight: drain the
            # outstanding replies so the caller's pool stays usable
            pool.abandon(inflight[1])
    return out


__all__ = [
    "MUTATION_KINDS",
    "Mutation",
    "QueryRequest",
    "execute_many",
    "execute_stream",
]
