"""Deterministic, seedable fault injection for the engine.

Production behaviour under partial failure — a worker process dying
mid-batch, hanging on a wedged lock, replying late; a write-ahead-log
record torn in half by a crash; a resync delta lost on the wire — is
exactly the behaviour a test suite never sees by accident.  This module
makes those failures *reproducible*: named injection **sites** in the
engine call :func:`fire` at the moment the failure would occur, and an
installed :class:`FaultRule` decides — deterministically, from its own
counters and (optionally) its own seeded RNG — whether the failure
happens on this particular call.

The sites (each hooked where the comment says):

========================  ==================================================
``pool.worker.crash``     a :class:`~repro.engine.pool.DaemonPool` worker
                          ``os._exit``\\ s mid-batch, before replying
``pool.worker.hang``      the worker sleeps ``seconds`` (default 60) before
                          executing — long enough to trip the collect
                          timeout
``pool.worker.delay``     the worker sleeps ``seconds`` (default 0.05) and
                          then replies normally (slow, not dead)
``pool.resync.drop``      :meth:`DaemonPool.resnapshot` "loses" the resync
                          delta to one worker (the stale-worker detection
                          and self-healing path)
``wal.torn_write``        :meth:`WriteAheadLog.append` writes only a prefix
                          (``fraction``, default 0.5) of the record's bytes
                          and dies (:class:`InjectedCrash`)
``wal.compact.crash``     :meth:`WriteAheadLog.compact` dies at ``stage``
                          (0 = after writing the temp snapshot, before the
                          atomic rename; 1 = after the rename, before the
                          log is truncated)
``server.conn.drop``      the serving tier severs a client connection
                          right before writing a reply — the client sees
                          EOF mid-request, the server must stay up
``server.replica.lag``    a replica server skips its per-run WAL poll, so
                          its session falls behind the primary (clients
                          must wait or fall back per ``applied_seq``)
``server.replica.crash``  a replica server aborts every open connection
                          right before a reply — a simulated replica
                          process crash; the listener stays up, so this
                          doubles as an instant supervised restart
``wal.follower.stall``    :meth:`WalFollower.poll` returns without
                          scanning — a stuck change feed (the replica
                          keeps serving its stale state)
========================  ==================================================

Rules install in-process (:func:`install`) or through the environment
knob ``REPRO_FAULTS`` (:func:`install_from_env`), which daemon workers
read at startup so injection crosses the process boundary under any
start method (``fork`` workers additionally inherit the in-process
installation).  The spec grammar is ``site[:key=value...]`` with rules
separated by ``;``::

    REPRO_FAULTS="pool.worker.crash:after=1;wal.torn_write:fraction=0.25"

Keys: ``after`` (skip the first N arrivals at the site), ``times`` (fire
at most N times, default 1; ``times=0`` means unlimited), ``prob`` +
``seed`` (fire with probability ``prob`` from a private
``random.Random(seed)`` — deterministic across runs), plus the
site-specific parameters above.  A malformed spec logs a warning and is
ignored — fault injection must never be the thing that crashes the
engine.
"""

from __future__ import annotations

import logging
import os
import random
import threading
from dataclasses import dataclass, field

from repro.core.errors import ReproError

log = logging.getLogger(__name__)

#: Environment variable carrying a fault spec into worker processes.
FAULTS_ENV = "REPRO_FAULTS"

#: The known injection sites (unknown sites in a spec only warn).
SITE_WORKER_CRASH = "pool.worker.crash"
SITE_WORKER_HANG = "pool.worker.hang"
SITE_WORKER_DELAY = "pool.worker.delay"
SITE_RESYNC_DROP = "pool.resync.drop"
SITE_WAL_TORN = "wal.torn_write"
SITE_WAL_COMPACT = "wal.compact.crash"
SITE_CONN_DROP = "server.conn.drop"
SITE_REPLICA_LAG = "server.replica.lag"
SITE_REPLICA_CRASH = "server.replica.crash"
SITE_FOLLOWER_STALL = "wal.follower.stall"

SITES = (
    SITE_WORKER_CRASH,
    SITE_WORKER_HANG,
    SITE_WORKER_DELAY,
    SITE_RESYNC_DROP,
    SITE_WAL_TORN,
    SITE_WAL_COMPACT,
    SITE_CONN_DROP,
    SITE_REPLICA_LAG,
    SITE_REPLICA_CRASH,
    SITE_FOLLOWER_STALL,
)


class InjectedCrash(ReproError):
    """The simulated process death of an injected fault.

    Raised by in-process sites (WAL writes) where ``os._exit`` would
    take the test runner down with it; the state left behind — the
    half-written record, the un-truncated log — is exactly the state a
    real crash at that point would leave.
    """


@dataclass
class FaultRule:
    """When should the fault at ``site`` fire?

    Deterministic by construction: the decision depends only on the
    rule's own arrival counter and its private seeded RNG, never on
    global randomness or timing.
    """

    site: str
    #: skip the first ``after`` arrivals at the site
    after: int = 0
    #: fire at most ``times`` times (0 = unlimited)
    times: int = 1
    #: fire with this probability once eligible (1.0 = always)
    prob: float = 1.0
    #: seed for the private RNG behind ``prob``
    seed: int = 0
    #: site-specific parameters (seconds, fraction, stage, ...)
    params: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._seen = 0
        self._fired = 0
        self._rng = random.Random(self.seed)

    def check(self) -> bool:
        """One arrival at the site: does the fault fire this time?"""
        self._seen += 1
        if self._seen <= self.after:
            return False
        if self.times and self._fired >= self.times:
            return False
        if self.prob < 1.0 and self._rng.random() >= self.prob:
            return False
        self._fired += 1
        return True

    def param(self, key: str, default: float) -> float:
        """A site-specific numeric parameter with a default."""
        return self.params.get(key, default)


class FaultInjector:
    """The installed rule set; one per process, see :func:`install`."""

    def __init__(self, rules: list[FaultRule] | None = None) -> None:
        self._rules: dict[str, FaultRule] = {}
        self._lock = threading.Lock()
        for rule in rules or ():
            self._rules[rule.site] = rule

    @property
    def active(self) -> bool:
        return bool(self._rules)

    def fire(self, site: str) -> FaultRule | None:
        """The rule for ``site`` if it fires on this arrival, else None."""
        rule = self._rules.get(site)
        if rule is None:
            return None
        with self._lock:
            fired = rule.check()
        if fired:
            log.warning("fault injected site=%s params=%r", site, rule.params)
            return rule
        return None


#: The process-global injector.  Empty (inactive) by default; tests and
#: the ``REPRO_FAULTS`` environment knob install rules into a fresh one.
_INJECTOR = FaultInjector()


def install(rules: list[FaultRule]) -> None:
    """Replace the process-global rule set (counters start fresh)."""
    global _INJECTOR
    _INJECTOR = FaultInjector(rules)


def reset() -> None:
    """Remove every installed rule."""
    install([])


def active() -> bool:
    """Is any fault rule currently installed in this process?"""
    return _INJECTOR.active


def fire(site: str) -> FaultRule | None:
    """Called by the engine at an injection site; None = proceed normally."""
    return _INJECTOR.fire(site)


def parse_spec(spec: str) -> list[FaultRule]:
    """Parse a ``REPRO_FAULTS`` spec string into rules.

    Malformed entries log a warning and are dropped (never raised): a
    bad knob value must not take the engine down.
    """
    rules: list[FaultRule] = []
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        site = parts[0].strip()
        if site not in SITES:
            log.warning("ignoring unknown fault site %r in %s", site, FAULTS_ENV)
            continue
        kwargs: dict[str, float] = {}
        bad = False
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep:
                log.warning("ignoring malformed fault entry %r (want key=value)", entry)
                bad = True
                break
            try:
                kwargs[key] = float(value)
            except ValueError:
                log.warning(
                    "ignoring fault entry %r: %r is not numeric", entry, value
                )
                bad = True
                break
        if bad:
            continue
        rule = FaultRule(
            site,
            after=int(kwargs.pop("after", 0)),
            times=int(kwargs.pop("times", 1)),
            prob=float(kwargs.pop("prob", 1.0)),
            seed=int(kwargs.pop("seed", 0)),
            params=kwargs,
        )
        rules.append(rule)
    return rules


def spec_of(rules: list[FaultRule]) -> str:
    """Serialize rules back into the spec grammar (for shipping via env)."""
    entries = []
    for rule in rules:
        keys: dict[str, float] = {}
        if rule.after:
            keys["after"] = rule.after
        if rule.times != 1:
            keys["times"] = rule.times
        if rule.prob != 1.0:
            keys["prob"] = rule.prob
        if rule.seed:
            keys["seed"] = rule.seed
        keys.update(rule.params)
        suffix = "".join(f":{k}={v:g}" for k, v in keys.items())
        entries.append(rule.site + suffix)
    return ";".join(entries)


def install_from_env(environ=None) -> bool:
    """Install rules from ``REPRO_FAULTS`` if set; True when any installed.

    Called by daemon workers at startup (so ``spawn`` workers see the
    same faults ``fork`` workers inherit) and usable from any entry
    point that wants env-driven injection.
    """
    environ = os.environ if environ is None else environ
    spec = environ.get(FAULTS_ENV)
    if not spec:
        return False
    rules = parse_spec(spec)
    if rules:
        install(rules)
    return bool(rules)


__all__ = [
    "FAULTS_ENV",
    "FaultInjector",
    "FaultRule",
    "InjectedCrash",
    "SITES",
    "SITE_CONN_DROP",
    "SITE_FOLLOWER_STALL",
    "SITE_REPLICA_CRASH",
    "SITE_REPLICA_LAG",
    "SITE_RESYNC_DROP",
    "SITE_WAL_COMPACT",
    "SITE_WAL_TORN",
    "SITE_WORKER_CRASH",
    "SITE_WORKER_DELAY",
    "SITE_WORKER_HANG",
    "active",
    "fire",
    "install",
    "install_from_env",
    "parse_spec",
    "reset",
    "spec_of",
]
