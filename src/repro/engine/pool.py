"""Snapshot-parallel execution: shard plan groups across worker processes.

Because every verdict is a pure function of (database, plan), read-only
traffic parallelizes embarrassingly: take one
:class:`~repro.engine.snapshot.SessionSnapshot`, hand it to N worker
processes, and let each worker decide a disjoint shard of the batch's
plan groups.  Two pool shapes share that substrate:

* :class:`WorkerPool` — the per-batch pool: a fresh set of processes per
  pool, frozen at its construction snapshot (``resnapshot`` rebuilds the
  processes);
* :class:`DaemonPool` — the persistent pool: long-lived daemon workers
  that survive across batches, each holding a private session resynced
  to newer state by *incremental snapshot deltas*
  (:meth:`~repro.api.session.Session.snapshot_delta` — only the changed
  atoms and the bumped generation counters travel), and a split
  ``submit``/``collect`` round trip that the write-boundary stream
  pipeline (``execute_stream(..., pool=...)``) overlaps with the main
  process's writes.

Both degrade identically when no process pool can be created (restricted
sandboxes, 1-CPU hosts): in-process sequential execution over the same
snapshot, so callers never need a fallback path of their own.  Under the
``fork`` start method (Linux, the production case) workers inherit the
snapshot — including its warm order-graph closures and region caches —
through copy-on-write pages; under ``spawn`` each worker receives the
frozen database and rebuilds its own session, warming lazily.

Results are merged deterministically: each unique plan key is executed
exactly once and the per-key results are fanned back out in request
order — the output is byte-for-byte the list
:func:`repro.engine.batch.execute_many` would produce sequentially
(including method tags and countermodel witnesses).
"""

from __future__ import annotations

import logging
import os
from typing import Iterable, Sequence

from repro.api.result import Result
from repro.api.session import Session
from repro.core.database import IndefiniteDatabase
from repro.engine.batch import QueryRequest, execute_many

log = logging.getLogger(__name__)

#: Environment variable overriding the automatic worker-count cap.
WORKER_CAP_ENV = "REPRO_POOL_MAX_WORKERS"

#: Default cap on auto-sized pools: spreading a batch wider than this
#: rarely pays for the extra process/IPC overhead on typical workloads.
DEFAULT_WORKER_CAP = 4

#: Per-process session used by pool workers (set by the initializer).
_WORKER_SESSION: Session | None = None


def _worker_cap() -> int:
    """The worker-count cap: ``REPRO_POOL_MAX_WORKERS`` or the default."""
    raw = os.environ.get(WORKER_CAP_ENV)
    if raw:
        try:
            cap = int(raw)
        except ValueError:
            log.warning(
                "ignoring non-integer %s=%r; using default cap %d",
                WORKER_CAP_ENV, raw, DEFAULT_WORKER_CAP,
            )
        else:
            if cap >= 1:
                return cap
            log.warning(
                "ignoring %s=%d (must be >= 1); using default cap %d",
                WORKER_CAP_ENV, cap, DEFAULT_WORKER_CAP,
            )
    return DEFAULT_WORKER_CAP


def _default_workers() -> int:
    """Spread over the cores up to the (configurable, logged) cap.

    A 1-CPU host sizes to one worker, which both pool classes treat as
    "run sequentially in-process".
    """
    cap = _worker_cap()
    cpus = os.cpu_count() or 1
    n = max(1, min(cap, cpus))
    log.debug(
        "auto-sizing pool to %d workers (cpu_count=%d, cap=%d; set %s to "
        "change the cap)", n, cpus, cap, WORKER_CAP_ENV,
    )
    return n


def _init_worker(payload) -> None:
    """Install the worker's session: an inherited snapshot or a fresh build."""
    global _WORKER_SESSION
    if isinstance(payload, IndefiniteDatabase):
        _WORKER_SESSION = Session(payload)
    else:
        _WORKER_SESSION = payload


def _run_shard(shard: Sequence[tuple[int, QueryRequest]]) -> list[tuple[int, Result]]:
    """Execute one shard of unique plan groups; returns (key_index, result)."""
    assert _WORKER_SESSION is not None
    requests = [request for _i, request in shard]
    results = execute_many(_WORKER_SESSION, requests)
    return [(i, result) for (i, _), result in zip(shard, results)]


def _unique_groups(
    requests: Sequence[QueryRequest],
) -> tuple[list[tuple[int, QueryRequest]], list[list[int]]]:
    """``(unique, owners)``: one representative per plan key + fan-out lists.

    ``unique[j] == (j, request)`` is the first request with the *j*-th
    distinct plan key; ``owners[j]`` lists every request index sharing
    that key.
    """
    key_index: dict[tuple, int] = {}
    unique: list[tuple[int, QueryRequest]] = []
    owners: list[list[int]] = []
    for i, request in enumerate(requests):
        ki = key_index.get(request.plan_key)
        if ki is None:
            ki = key_index[request.plan_key] = len(unique)
            unique.append((ki, request))
            owners.append([])
        owners[ki].append(i)
    return unique, owners


def _fan_out(
    owners: list[list[int]], by_key: dict[int, Result], n_requests: int
) -> list[Result]:
    """Per-key results fanned back out in request order."""
    results: list[Result] = [None] * n_requests  # type: ignore[list-item]
    for ki, indices in enumerate(owners):
        for i in indices:
            results[i] = by_key[ki]
    return results


class WorkerPool:
    """A process pool answering queries against one session snapshot.

    The snapshot is taken at construction time; the pool keeps answering
    against that state even while the live session mutates (take a new
    pool — or call :meth:`resnapshot`, which rebuilds the processes — to
    pick up newer state; :class:`DaemonPool` resyncs its long-lived
    workers incrementally instead).  Usable as a context manager.
    """

    def __init__(
        self,
        session: Session,
        workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self._snapshot = session.snapshot()
        self._workers = workers if workers is not None else _default_workers()
        self._pool = None
        if self._workers > 1:
            self._pool = self._make_pool(start_method)

    def _make_pool(self, start_method: str | None):
        try:
            import multiprocessing as mp

            methods = mp.get_all_start_methods()
            if start_method is None:
                start_method = "fork" if "fork" in methods else methods[0]
            ctx = mp.get_context(start_method)
            # fork inherits the warm snapshot for free; other start
            # methods pickle a payload, so ship the (small) frozen
            # database and let each worker rebuild and warm lazily.
            payload = (
                self._snapshot if start_method == "fork" else self._snapshot.db
            )
            return ctx.Pool(
                self._workers, initializer=_init_worker, initargs=(payload,)
            )
        except (ImportError, OSError, ValueError, RuntimeError):
            # Restricted sandboxes surface anything from missing
            # semaphores (OSError) to spawn-bootstrap RuntimeErrors.
            # A raising Pool.__init__ terminates and joins whatever
            # workers it had already started (CPython's repopulate
            # cleanup), so nothing leaks here; DaemonPool._start manages
            # its explicit processes the same way by hand.
            log.info(
                "process pool unavailable; degrading to in-process "
                "sequential execution", exc_info=True,
            )
            return None

    # -- state -------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when a real process pool is live (not the fallback)."""
        return self._pool is not None

    @property
    def snapshot(self):
        """The read-only snapshot this pool answers against."""
        return self._snapshot

    # -- execution ---------------------------------------------------------

    def execute_many(
        self, requests: Iterable[QueryRequest]
    ) -> list[Result]:
        """Batched execution across the pool; request order preserved.

        Unique plan keys are computed once each and fanned back out, so
        duplicate requests cost nothing extra regardless of which worker
        owns their group.
        """
        requests = list(requests)
        unique, owners = _unique_groups(requests)
        if self._pool is None or len(unique) < 2:
            by_key = {
                ki: result
                for (ki, _), result in zip(
                    unique,
                    execute_many(
                        self._snapshot, [r for _, r in unique]
                    ),
                )
            }
        else:
            n = min(self._workers, len(unique))
            shards = [unique[w::n] for w in range(n)]
            by_key = {}
            for shard_result in self._pool.map(_run_shard, shards):
                for ki, result in shard_result:
                    by_key[ki] = result
        return _fan_out(owners, by_key, len(requests))

    def resnapshot(self, session: Session) -> None:
        """Point the pool at a fresh snapshot of ``session``.

        Only meaningful for the sequential fallback and ``fork`` pools
        created per batch; long-lived fork workers keep their inherited
        state, so a live pool is closed and rebuilt.
        """
        had_pool = self._pool is not None
        self.close()
        self._snapshot = session.snapshot()
        if had_pool and self._workers > 1:
            self._pool = self._make_pool(None)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def execute_parallel(
    session: Session,
    requests: Iterable[QueryRequest],
    workers: int | None = None,
) -> list[Result]:
    """One-shot convenience: snapshot, shard, merge, tear down."""
    with WorkerPool(session, workers=workers) as pool:
        return pool.execute_many(requests)


# -- the persistent daemon pool -------------------------------------------


def _close_quietly(conn) -> None:
    try:
        conn.close()
    except OSError:
        pass


def _daemon_main(payload, conn) -> None:
    """A daemon worker: one private session, advanced by resync deltas.

    ``payload`` is the construction snapshot (``fork``: inherited with
    its warm caches through copy-on-write pages) or the frozen database
    (``spawn``: rebuilt cold, warming lazily).  Post-fork the session is
    private to this process, so applying snapshot deltas to it — even
    though it is a ``SessionSnapshot`` by type — can never violate
    snapshot immutability in the parent.

    Protocol (one message per :meth:`~multiprocessing.connection
    .Connection.recv`, processed strictly in order, which is what lets
    the leader queue a resync and the next batch without waiting):

    * ``("resync", delta)`` — apply a
      :class:`~repro.api.session.SnapshotDelta`; no reply.
    * ``("run", shard)`` — execute a shard of unique plan groups; replies
      ``(True, [(key_index, Result), ...])`` or ``(False, exception)``.
    * ``("stop",)`` — exit.
    """
    session = (
        Session(payload)
        if isinstance(payload, IndefiniteDatabase)
        else payload
    )
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "resync":
                session.apply_snapshot_delta(msg[1])
            elif kind == "run":
                shard = msg[1]
                try:
                    results = execute_many(
                        session, [r for _ki, r in shard]
                    )
                    reply = (
                        True,
                        [(ki, res) for (ki, _), res in zip(shard, results)],
                    )
                except Exception as exc:
                    reply = (False, exc)
                try:
                    conn.send(reply)
                except Exception:
                    # unpicklable result or exception: report what we can
                    conn.send(
                        (False, RuntimeError(
                            "daemon worker reply was not picklable: "
                            + str(reply)[:200]
                        ))
                    )
    finally:
        _close_quietly(conn)


class _PendingBatch:
    """An in-flight daemon-pool batch; ``DaemonPool.collect`` resolves it.

    Holds the request fan-out bookkeeping, the worker ids a reply is
    owed by, and the snapshot the batch was submitted under (immutable,
    so a worker failure can transparently re-execute against it).
    """

    __slots__ = ("owners", "n_requests", "unique", "snapshot", "workers",
                 "by_key")

    def __init__(self, owners, n_requests, unique, snapshot) -> None:
        self.owners = owners
        self.n_requests = n_requests
        self.unique = unique
        self.snapshot = snapshot
        self.workers: tuple[int, ...] = ()
        self.by_key: dict[int, Result] | None = None


class DaemonPool:
    """A persistent pool of daemon workers surviving across batches.

    Where :class:`WorkerPool` forks a fresh set of processes per pool
    and must be torn down and rebuilt to observe newer session state, a
    ``DaemonPool``'s workers are long-lived: each holds a private
    session (inherited warm under ``fork``, rebuilt lazily under
    ``spawn``) and :meth:`resnapshot` ships them an *incremental*
    snapshot delta — only the changed atoms and bumped generation
    counters — so object-fact churn leaves worker graph closures, region
    tables, compiled plans and order-part memos warm across batches.

    Unique plan keys are assigned to workers by stable hash, so a
    repeated query keeps landing on the worker whose plan cache already
    holds it.  :meth:`submit` / :meth:`collect` split the round trip —
    submission (and resync) only *write* to the per-worker message
    streams, so the caller can keep working while the workers execute;
    that is the overlap the write-boundary stream pipeline
    (:func:`repro.engine.batch.execute_stream` with ``pool=``/
    ``workers=``) is built on.  :meth:`execute_many` is the synchronous
    convenience.

    Restricted sandboxes (and ``workers=1``) degrade to in-process
    sequential execution over the same snapshot; a worker failing
    mid-flight degrades the pool the same way and re-executes the
    affected batch against the snapshot it was submitted under, so
    callers always get their results.  Must be resynced from the session
    it was constructed over.  Usable as a context manager.
    """

    def __init__(
        self,
        session: Session,
        workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self._workers = workers if workers is not None else _default_workers()
        self._snapshot = session.snapshot()
        self._conns: list = []
        self._procs: list = []
        #: the single parallel batch allowed in flight (see submit)
        self._inflight: _PendingBatch | None = None
        if self._workers > 1:
            self._start(start_method)

    def _start(self, start_method: str | None) -> None:
        conns: list = []
        procs: list = []
        try:
            import multiprocessing as mp

            methods = mp.get_all_start_methods()
            if start_method is None:
                start_method = "fork" if "fork" in methods else methods[0]
            ctx = mp.get_context(start_method)
            payload = (
                self._snapshot if start_method == "fork" else self._snapshot.db
            )
            for _ in range(self._workers):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_daemon_main, args=(payload, child), daemon=True
                )
                proc.start()
                child.close()
                conns.append(parent)
                procs.append(proc)
        except (ImportError, OSError, ValueError, RuntimeError):
            # terminate the partially started workers before degrading
            for conn in conns:
                _close_quietly(conn)
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join()
            log.info(
                "daemon pool unavailable; degrading to in-process "
                "sequential execution", exc_info=True,
            )
            return
        self._conns, self._procs = conns, procs

    def _degrade(self) -> None:
        """Tear the worker processes down; later batches run in-process."""
        conns, procs = self._conns, self._procs
        self._conns, self._procs = [], []
        self._inflight = None  # its replies died with the connections
        for conn in conns:
            _close_quietly(conn)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join()
        if procs:
            log.warning(
                "daemon pool worker failure: degraded to in-process "
                "sequential execution"
            )

    # -- state -------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True while the long-lived worker processes are alive."""
        return bool(self._conns)

    @property
    def snapshot(self):
        """The snapshot the pool currently answers against."""
        return self._snapshot

    # -- resync ------------------------------------------------------------

    def resnapshot(self, session: Session) -> None:
        """Advance the pool to ``session``'s current state, incrementally.

        Cheap by design: a no-op when nothing changed since the last
        sync; otherwise one snapshot plus one
        :class:`~repro.api.session.SnapshotDelta` message per worker,
        with no reply awaited — per-connection ordering guarantees the
        next submitted batch sees the synced state.

        Like :meth:`submit`, this writes to the bounded per-worker
        pipes, so it must not run while a parallel batch is in flight
        (a busy worker could be blocked sending its reply at the same
        time — both pipe directions full is a deadlock): ``collect()``
        or ``abandon()`` the batch first, or this raises
        ``RuntimeError``.
        """
        if self._inflight is not None and self._inflight.workers:
            raise RuntimeError(
                "a daemon-pool batch is in flight; collect() or abandon() "
                "it before resnapshot()"
            )
        delta = session.snapshot_delta(self._snapshot)
        if delta is None:
            return
        self._snapshot = session.snapshot()
        if not self._conns:
            return
        try:
            for conn in self._conns:
                conn.send(("resync", delta))
        except (OSError, BrokenPipeError, EOFError):
            self._degrade()

    # -- execution ---------------------------------------------------------

    def _execute_local(self, unique, snapshot) -> dict[int, Result]:
        """The in-process path: decide the unique groups on ``snapshot``."""
        results = execute_many(snapshot, [r for _, r in unique])
        return {ki: result for (ki, _), result in zip(unique, results)}

    def submit(self, requests: Iterable[QueryRequest]) -> _PendingBatch:
        """Ship a batch to the workers; returns a handle for :meth:`collect`.

        With live workers this only *writes* the shard messages and
        returns immediately — the caller can keep applying writes to the
        live session (the submitted batch is pinned to the current
        snapshot) while the workers execute.

        At most ONE parallel batch may be in flight: :meth:`collect` (or
        :meth:`abandon`) the previous one first, or this raises
        ``RuntimeError``.  The per-worker pipes are bounded OS buffers;
        queueing a second batch behind uncollected replies could block
        both sides of a pipe at once and deadlock.
        """
        requests = list(requests)
        if self._inflight is not None and self._inflight.workers:
            raise RuntimeError(
                "a daemon-pool batch is already in flight; collect() or "
                "abandon() it before submitting another"
            )
        unique, owners = _unique_groups(requests)
        pending = _PendingBatch(
            owners, len(requests), unique, self._snapshot
        )
        if not self._conns or not unique:
            pending.by_key = self._execute_local(unique, pending.snapshot)
            return pending
        # Stable-hash worker affinity: the same plan key lands on the
        # same worker for the life of the pool, so its compiled plan and
        # result memos stay hot across batches and epochs.
        n = len(self._conns)
        shards: dict[int, list] = {}
        for ki, request in unique:
            shards.setdefault(hash(request.plan_key) % n, []).append(
                (ki, request)
            )
        try:
            for w in sorted(shards):
                self._conns[w].send(("run", shards[w]))
        except (OSError, BrokenPipeError, EOFError):
            self._degrade()
            pending.by_key = self._execute_local(unique, pending.snapshot)
            return pending
        pending.workers = tuple(sorted(shards))
        self._inflight = pending
        return pending

    def collect(self, pending: _PendingBatch) -> list[Result]:
        """Wait for a submitted batch; results in request order.

        The merge is deterministic (per-key results fanned out in
        request order).  A worker that died mid-batch degrades the pool
        and the batch transparently re-executes in-process against the
        snapshot it was submitted under; a worker that *reports* an
        exception (an invalid request) has it re-raised here, after all
        of the batch's replies have been drained.
        """
        if pending.by_key is None:
            workers, pending.workers = pending.workers, ()
            if self._inflight is pending:
                self._inflight = None
            by_key: dict[int, Result] = {}
            error: Exception | None = None
            try:
                for w in workers:
                    ok, payload = self._conns[w].recv()
                    if ok:
                        for ki, result in payload:
                            by_key[ki] = result
                    elif error is None:
                        error = payload
            except (OSError, EOFError, IndexError):
                self._degrade()
                by_key = self._execute_local(
                    pending.unique, pending.snapshot
                )
                error = None
            if error is not None:
                raise error
            pending.by_key = by_key
        return _fan_out(pending.owners, pending.by_key, pending.n_requests)

    def abandon(self, pending: _PendingBatch) -> None:
        """Drain an in-flight batch without returning results.

        Used when an exception abandons a pipelined stream mid-flight:
        the outstanding replies are consumed (and discarded) so the
        pool's message streams stay consistent for the next caller.
        """
        workers, pending.workers = pending.workers, ()
        if self._inflight is pending:
            self._inflight = None
        try:
            for w in workers:
                self._conns[w].recv()
        except (OSError, EOFError, IndexError):
            self._degrade()

    def execute_many(
        self, requests: Iterable[QueryRequest]
    ) -> list[Result]:
        """Synchronous batched execution: submit, collect, fan out."""
        return self.collect(self.submit(requests))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the daemon workers down (idempotent)."""
        conns, procs = self._conns, self._procs
        self._conns, self._procs = [], []
        for conn in conns:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
            _close_quietly(conn)
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join()

    def __enter__(self) -> "DaemonPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "DEFAULT_WORKER_CAP",
    "DaemonPool",
    "WORKER_CAP_ENV",
    "WorkerPool",
    "execute_parallel",
]
