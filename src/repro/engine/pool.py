"""Snapshot-parallel execution: shard plan groups across worker processes.

Because every verdict is a pure function of (database, plan), read-only
traffic parallelizes embarrassingly: take one
:class:`~repro.engine.snapshot.SessionSnapshot`, hand it to N worker
processes, and let each worker decide a disjoint shard of the batch's
plan groups.  :class:`WorkerPool` does exactly that:

* under the ``fork`` start method (Linux, the production case) the
  workers inherit the snapshot — including its warm order-graph closures
  and region caches — through copy-on-write pages, so shipping a
  snapshot costs nothing;
* under ``spawn`` (or when initializer inheritance is unavailable) each
  worker receives the frozen database and rebuilds its own session,
  warming its caches on first use — colder, but identical results;
* when no process pool can be created at all (restricted sandboxes),
  the pool degrades to in-process sequential execution over the same
  snapshot, so callers never need a fallback path of their own.

Results are merged deterministically: each unique plan key is executed
exactly once (in a worker chosen by round-robin over first-appearance
order), and the per-key results are fanned back out in request order —
the output is byte-for-byte the list :func:`repro.engine.batch.execute_many`
would produce sequentially, modulo the batched-sweep method tag.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from repro.api.result import Result
from repro.api.session import Session
from repro.core.database import IndefiniteDatabase
from repro.engine.batch import QueryRequest, execute_many

#: Per-process session used by pool workers (set by the initializer).
_WORKER_SESSION: Session | None = None


def _init_worker(payload) -> None:
    """Install the worker's session: an inherited snapshot or a fresh build."""
    global _WORKER_SESSION
    if isinstance(payload, IndefiniteDatabase):
        _WORKER_SESSION = Session(payload)
    else:
        _WORKER_SESSION = payload


def _run_shard(shard: Sequence[tuple[int, QueryRequest]]) -> list[tuple[int, Result]]:
    """Execute one shard of unique plan groups; returns (key_index, result)."""
    assert _WORKER_SESSION is not None
    requests = [request for _i, request in shard]
    results = execute_many(_WORKER_SESSION, requests)
    return [(i, result) for (i, _), result in zip(shard, results)]


def _default_workers() -> int:
    """Spread over the cores, capped; a 1-CPU host degrades to sequential."""
    return max(1, min(4, os.cpu_count() or 1))


class WorkerPool:
    """A process pool answering queries against one session snapshot.

    The snapshot is taken at construction time; the pool keeps answering
    against that state even while the live session mutates (take a new
    pool — or call :meth:`resnapshot` — to pick up newer state).  Usable
    as a context manager.
    """

    def __init__(
        self,
        session: Session,
        workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self._snapshot = session.snapshot()
        self._workers = workers if workers is not None else _default_workers()
        self._pool = None
        if self._workers > 1:
            self._pool = self._make_pool(start_method)

    def _make_pool(self, start_method: str | None):
        try:
            import multiprocessing as mp

            methods = mp.get_all_start_methods()
            if start_method is None:
                start_method = "fork" if "fork" in methods else methods[0]
            ctx = mp.get_context(start_method)
            # fork inherits the warm snapshot for free; other start
            # methods pickle a payload, so ship the (small) frozen
            # database and let each worker rebuild and warm lazily.
            payload = (
                self._snapshot if start_method == "fork" else self._snapshot.db
            )
            return ctx.Pool(
                self._workers, initializer=_init_worker, initargs=(payload,)
            )
        except (ImportError, OSError, ValueError):
            return None  # restricted environment: sequential fallback

    # -- state -------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when a real process pool is live (not the fallback)."""
        return self._pool is not None

    @property
    def snapshot(self):
        """The read-only snapshot this pool answers against."""
        return self._snapshot

    # -- execution ---------------------------------------------------------

    def execute_many(
        self, requests: Iterable[QueryRequest]
    ) -> list[Result]:
        """Batched execution across the pool; request order preserved.

        Unique plan keys are computed once each and fanned back out, so
        duplicate requests cost nothing extra regardless of which worker
        owns their group.
        """
        requests = list(requests)
        keys: list[tuple] = []
        key_index: dict[tuple, int] = {}
        owners: list[list[int]] = []
        for i, request in enumerate(requests):
            ki = key_index.get(request.plan_key)
            if ki is None:
                ki = key_index[request.plan_key] = len(keys)
                keys.append(request.plan_key)
                owners.append([])
            owners[ki].append(i)

        unique = [(ki, requests[owners[ki][0]]) for ki in range(len(keys))]
        if self._pool is None or len(unique) < 2:
            by_key = {
                ki: result
                for (ki, _), result in zip(
                    unique,
                    execute_many(
                        self._snapshot, [r for _, r in unique]
                    ),
                )
            }
        else:
            n = min(self._workers, len(unique))
            shards = [unique[w::n] for w in range(n)]
            by_key = {}
            for shard_result in self._pool.map(_run_shard, shards):
                for ki, result in shard_result:
                    by_key[ki] = result

        results: list[Result] = [None] * len(requests)  # type: ignore[list-item]
        for ki, indices in enumerate(owners):
            for i in indices:
                results[i] = by_key[ki]
        return results

    def resnapshot(self, session: Session) -> None:
        """Point the pool at a fresh snapshot of ``session``.

        Only meaningful for the sequential fallback and ``fork`` pools
        created per batch; long-lived fork workers keep their inherited
        state, so a live pool is closed and rebuilt.
        """
        had_pool = self._pool is not None
        self.close()
        self._snapshot = session.snapshot()
        if had_pool and self._workers > 1:
            self._pool = self._make_pool(None)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def execute_parallel(
    session: Session,
    requests: Iterable[QueryRequest],
    workers: int | None = None,
) -> list[Result]:
    """One-shot convenience: snapshot, shard, merge, tear down."""
    with WorkerPool(session, workers=workers) as pool:
        return pool.execute_many(requests)


__all__ = ["WorkerPool", "execute_parallel"]
