"""Snapshot-parallel execution: shard plan groups across worker processes.

Because every verdict is a pure function of (database, plan), read-only
traffic parallelizes embarrassingly: take one
:class:`~repro.engine.snapshot.SessionSnapshot`, hand it to N worker
processes, and let each worker decide a disjoint shard of the batch's
plan groups.  Two pool shapes share that substrate:

* :class:`WorkerPool` — the per-batch pool: a fresh set of processes per
  pool, frozen at its construction snapshot (``resnapshot`` rebuilds the
  processes);
* :class:`DaemonPool` — the persistent pool: long-lived daemon workers
  that survive across batches, each holding a private session resynced
  to newer state by *incremental snapshot deltas*
  (:meth:`~repro.api.session.Session.snapshot_delta` — only the changed
  atoms and the bumped generation counters travel), and a split
  ``submit``/``collect`` round trip that the write-boundary stream
  pipeline (``execute_stream(..., pool=...)``) overlaps with the main
  process's writes.

Both degrade identically when no process pool can be created (restricted
sandboxes, 1-CPU hosts): in-process sequential execution over the same
snapshot, so callers never need a fallback path of their own.  Under the
``fork`` start method (Linux, the production case) workers inherit the
snapshot — including its warm order-graph closures and region caches —
through copy-on-write pages; under ``spawn`` each worker receives the
frozen database and rebuilds its own session, warming lazily.

Results are merged deterministically: each unique plan key is executed
exactly once and the per-key results are fanned back out in request
order — the output is byte-for-byte the list
:func:`repro.engine.batch.execute_many` would produce sequentially
(including method tags and countermodel witnesses).
"""

from __future__ import annotations

import logging
import os
import time
import weakref
from typing import Iterable, Sequence

from repro.api.result import Result
from repro.api.session import Session
from repro.core.database import IndefiniteDatabase
from repro.engine import faults
from repro.engine.batch import QueryRequest, execute_many

log = logging.getLogger(__name__)

#: Environment variable overriding the automatic worker-count cap.
WORKER_CAP_ENV = "REPRO_POOL_MAX_WORKERS"

#: Default cap on auto-sized pools: spreading a batch wider than this
#: rarely pays for the extra process/IPC overhead on typical workloads.
DEFAULT_WORKER_CAP = 4

#: Environment variables overriding the daemon pool's reply timeout and
#: the number of timed-out waits retried (with doubling backoff) before
#: the pool degrades.  Validated like :data:`WORKER_CAP_ENV`: bad values
#: warn and fall back to the default instead of raising.
REPLY_TIMEOUT_ENV = "REPRO_POOL_REPLY_TIMEOUT"
DEFAULT_REPLY_TIMEOUT = 60.0
REPLY_RETRIES_ENV = "REPRO_POOL_REPLY_RETRIES"
DEFAULT_REPLY_RETRIES = 2

#: Per-process session used by pool workers (set by the initializer).
_WORKER_SESSION: Session | None = None


def _worker_cap() -> int:
    """The worker-count cap: ``REPRO_POOL_MAX_WORKERS`` or the default."""
    raw = os.environ.get(WORKER_CAP_ENV)
    if raw:
        try:
            cap = int(raw)
        except ValueError:
            log.warning(
                "ignoring non-integer %s=%r; using default cap %d",
                WORKER_CAP_ENV, raw, DEFAULT_WORKER_CAP,
            )
        else:
            if cap >= 1:
                return cap
            log.warning(
                "ignoring %s=%d (must be >= 1); using default cap %d",
                WORKER_CAP_ENV, cap, DEFAULT_WORKER_CAP,
            )
    return DEFAULT_WORKER_CAP


def _reply_timeout_default() -> float:
    """``REPRO_POOL_REPLY_TIMEOUT`` or the default, warn-and-fall-back."""
    raw = os.environ.get(REPLY_TIMEOUT_ENV)
    if raw:
        try:
            timeout = float(raw)
        except ValueError:
            log.warning(
                "ignoring non-numeric %s=%r; using default %.3gs",
                REPLY_TIMEOUT_ENV, raw, DEFAULT_REPLY_TIMEOUT,
            )
        else:
            if timeout > 0:
                return timeout
            log.warning(
                "ignoring %s=%g (must be > 0); using default %.3gs",
                REPLY_TIMEOUT_ENV, timeout, DEFAULT_REPLY_TIMEOUT,
            )
    return DEFAULT_REPLY_TIMEOUT


def _reply_retries_default() -> int:
    """``REPRO_POOL_REPLY_RETRIES`` or the default, warn-and-fall-back."""
    raw = os.environ.get(REPLY_RETRIES_ENV)
    if raw:
        try:
            retries = int(raw)
        except ValueError:
            log.warning(
                "ignoring non-integer %s=%r; using default %d",
                REPLY_RETRIES_ENV, raw, DEFAULT_REPLY_RETRIES,
            )
        else:
            if retries >= 0:
                return retries
            log.warning(
                "ignoring %s=%d (must be >= 0); using default %d",
                REPLY_RETRIES_ENV, retries, DEFAULT_REPLY_RETRIES,
            )
    return DEFAULT_REPLY_RETRIES


class _ReplyTimeout(Exception):
    """A daemon worker failed to reply within the timeout + retries."""

    def __init__(self, worker: int, waited: float) -> None:
        super().__init__(f"worker {worker} silent for {waited:.3g}s")
        self.worker = worker
        self.waited = waited


def _default_workers() -> int:
    """Spread over the cores up to the (configurable, logged) cap.

    A 1-CPU host sizes to one worker, which both pool classes treat as
    "run sequentially in-process".
    """
    cap = _worker_cap()
    cpus = os.cpu_count() or 1
    n = max(1, min(cap, cpus))
    log.debug(
        "auto-sizing pool to %d workers (cpu_count=%d, cap=%d; set %s to "
        "change the cap)", n, cpus, cap, WORKER_CAP_ENV,
    )
    return n


def _init_worker(payload) -> None:
    """Install the worker's session: an inherited snapshot or a fresh build."""
    global _WORKER_SESSION
    if isinstance(payload, IndefiniteDatabase):
        _WORKER_SESSION = Session(payload)
    else:
        _WORKER_SESSION = payload


def _run_shard(shard: Sequence[tuple[int, QueryRequest]]) -> list[tuple[int, Result]]:
    """Execute one shard of unique plan groups; returns (key_index, result)."""
    assert _WORKER_SESSION is not None
    requests = [request for _i, request in shard]
    results = execute_many(_WORKER_SESSION, requests)
    return [(i, result) for (i, _), result in zip(shard, results)]


def _unique_groups(
    requests: Sequence[QueryRequest],
) -> tuple[list[tuple[int, QueryRequest]], list[list[int]]]:
    """``(unique, owners)``: one representative per plan key + fan-out lists.

    ``unique[j] == (j, request)`` is the first request with the *j*-th
    distinct plan key; ``owners[j]`` lists every request index sharing
    that key.
    """
    key_index: dict[tuple, int] = {}
    unique: list[tuple[int, QueryRequest]] = []
    owners: list[list[int]] = []
    for i, request in enumerate(requests):
        ki = key_index.get(request.plan_key)
        if ki is None:
            ki = key_index[request.plan_key] = len(unique)
            unique.append((ki, request))
            owners.append([])
        owners[ki].append(i)
    return unique, owners


def _fan_out(
    owners: list[list[int]], by_key: dict[int, Result], n_requests: int
) -> list[Result]:
    """Per-key results fanned back out in request order."""
    results: list[Result] = [None] * n_requests  # type: ignore[list-item]
    for ki, indices in enumerate(owners):
        for i in indices:
            results[i] = by_key[ki]
    return results


class WorkerPool:
    """A process pool answering queries against one session snapshot.

    The snapshot is taken at construction time; the pool keeps answering
    against that state even while the live session mutates (take a new
    pool — or call :meth:`resnapshot`, which rebuilds the processes — to
    pick up newer state; :class:`DaemonPool` resyncs its long-lived
    workers incrementally instead).  Usable as a context manager.
    """

    def __init__(
        self,
        session: Session,
        workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self._snapshot = session.snapshot()
        self._workers = workers if workers is not None else _default_workers()
        self._pool = None
        if self._workers > 1:
            self._pool = self._make_pool(start_method)

    def _make_pool(self, start_method: str | None):
        try:
            import multiprocessing as mp

            methods = mp.get_all_start_methods()
            if start_method is None:
                start_method = "fork" if "fork" in methods else methods[0]
            ctx = mp.get_context(start_method)
            # fork inherits the warm snapshot for free; other start
            # methods pickle a payload, so ship the (small) frozen
            # database and let each worker rebuild and warm lazily.
            payload = (
                self._snapshot if start_method == "fork" else self._snapshot.db
            )
            return ctx.Pool(
                self._workers, initializer=_init_worker, initargs=(payload,)
            )
        except (ImportError, OSError, ValueError, RuntimeError):
            # Restricted sandboxes surface anything from missing
            # semaphores (OSError) to spawn-bootstrap RuntimeErrors.
            # A raising Pool.__init__ terminates and joins whatever
            # workers it had already started (CPython's repopulate
            # cleanup), so nothing leaks here; DaemonPool._start manages
            # its explicit processes the same way by hand.
            log.info(
                "process pool unavailable; degrading to in-process "
                "sequential execution", exc_info=True,
            )
            return None

    # -- state -------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when a real process pool is live (not the fallback)."""
        return self._pool is not None

    @property
    def snapshot(self):
        """The read-only snapshot this pool answers against."""
        return self._snapshot

    # -- execution ---------------------------------------------------------

    def execute_many(
        self, requests: Iterable[QueryRequest]
    ) -> list[Result]:
        """Batched execution across the pool; request order preserved.

        Unique plan keys are computed once each and fanned back out, so
        duplicate requests cost nothing extra regardless of which worker
        owns their group.
        """
        requests = list(requests)
        unique, owners = _unique_groups(requests)
        if self._pool is None or len(unique) < 2:
            by_key = {
                ki: result
                for (ki, _), result in zip(
                    unique,
                    execute_many(
                        self._snapshot, [r for _, r in unique]
                    ),
                )
            }
        else:
            n = min(self._workers, len(unique))
            shards = [unique[w::n] for w in range(n)]
            by_key = {}
            for shard_result in self._pool.map(_run_shard, shards):
                for ki, result in shard_result:
                    by_key[ki] = result
        return _fan_out(owners, by_key, len(requests))

    def resnapshot(self, session: Session) -> None:
        """Point the pool at a fresh snapshot of ``session``.

        Only meaningful for the sequential fallback and ``fork`` pools
        created per batch; long-lived fork workers keep their inherited
        state, so a live pool is closed and rebuilt.
        """
        had_pool = self._pool is not None
        self.close()
        self._snapshot = session.snapshot()
        if had_pool and self._workers > 1:
            self._pool = self._make_pool(None)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def execute_parallel(
    session: Session,
    requests: Iterable[QueryRequest],
    workers: int | None = None,
) -> list[Result]:
    """One-shot convenience: snapshot, shard, merge, tear down."""
    with WorkerPool(session, workers=workers) as pool:
        return pool.execute_many(requests)


# -- the persistent daemon pool -------------------------------------------


def _close_quietly(conn) -> None:
    try:
        conn.close()
    except OSError:
        pass


def _set_gens(session: Session, gens: tuple[int, int, int]) -> None:
    """Force a worker-private session's generation counters."""
    (session._graph_gen, session._label_gen, session._object_gen) = gens


def _daemon_main(payload, conn) -> None:
    """A daemon worker: one private session, advanced by resync deltas.

    ``payload`` is the construction snapshot (``fork``: inherited with
    its warm caches through copy-on-write pages) or a ``(database,
    gens)`` pair (``spawn``: rebuilt cold, warming lazily).  Post-fork
    the session is private to this process, so applying snapshot deltas
    to it — even though it is a ``SessionSnapshot`` by type — can never
    violate snapshot immutability in the parent.

    Protocol (one message per :meth:`~multiprocessing.connection
    .Connection.recv`, processed strictly in order, which is what lets
    the leader queue a resync and the next batch without waiting):

    * ``("resync", delta, from_gens)`` — apply a
      :class:`~repro.api.session.SnapshotDelta`; no reply.  The delta is
      only valid on the exact state it was computed from, so a worker
      whose generations do not match ``from_gens`` (it lost an earlier
      delta) marks itself desynced instead of applying — its atoms would
      silently diverge while the delta's *absolute* target generations
      made it look current.
    * ``("run", shard, gens)`` — execute a shard of unique plan groups
      against the state at ``gens``; replies ``("ok", [(key_index,
      Result), ...])``, ``("err", exception)`` for an invalid request,
      or ``("stale", own_gens)`` when this worker is not at ``gens`` —
      the leader then executes the shard itself and heals the worker.
    * ``("reset", database, gens)`` — rebuild the session from scratch
      (the heal path); no reply.
    * ``("stop",)`` — exit.

    Fault-injection sites (:mod:`repro.engine.faults`, installed from
    ``REPRO_FAULTS`` at startup so they work under any start method):
    ``pool.worker.crash`` dies via ``os._exit`` before replying,
    ``pool.worker.hang`` sleeps long enough to trip the leader's reply
    timeout, ``pool.worker.delay`` sleeps briefly and replies normally.
    """
    if not faults.active():
        faults.install_from_env()
    if isinstance(payload, tuple):
        db, gens = payload
        session = Session(db)
        _set_gens(session, gens)
    else:
        session = payload
    desynced = False
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "resync":
                delta, from_gens = msg[1], msg[2]
                if session._gens() == from_gens:
                    session.apply_snapshot_delta(delta)
                else:
                    desynced = True
                    log.warning(
                        "daemon worker desynced: at gens %r, resync "
                        "expected %r", session._gens(), from_gens,
                    )
            elif kind == "reset":
                session = Session(msg[1])
                _set_gens(session, msg[2])
                desynced = False
            elif kind == "run":
                shard, gens = msg[1], msg[2]
                rule = faults.fire(faults.SITE_WORKER_CRASH)
                if rule is not None:
                    os._exit(int(rule.param("code", 1)))
                rule = faults.fire(faults.SITE_WORKER_HANG)
                if rule is not None:
                    time.sleep(rule.param("seconds", 60.0))
                rule = faults.fire(faults.SITE_WORKER_DELAY)
                if rule is not None:
                    time.sleep(rule.param("seconds", 0.05))
                if desynced or session._gens() != gens:
                    reply = ("stale", session._gens())
                else:
                    try:
                        results = execute_many(
                            session, [r for _ki, r in shard]
                        )
                        reply = (
                            "ok",
                            [(ki, res)
                             for (ki, _), res in zip(shard, results)],
                        )
                    except Exception as exc:
                        reply = ("err", exc)
                try:
                    conn.send(reply)
                except Exception:
                    # unpicklable result or exception: report what we can
                    conn.send(
                        ("err", RuntimeError(
                            "daemon worker reply was not picklable: "
                            + str(reply)[:200]
                        ))
                    )
    finally:
        _close_quietly(conn)


class _PendingBatch:
    """An in-flight daemon-pool batch; ``DaemonPool.collect`` resolves it.

    Holds the request fan-out bookkeeping, the worker ids a reply is
    owed by, and the snapshot the batch was submitted under (immutable,
    so a worker failure can transparently re-execute against it).
    """

    __slots__ = ("owners", "n_requests", "unique", "snapshot", "workers",
                 "by_key", "shards", "gens")

    def __init__(self, owners, n_requests, unique, snapshot) -> None:
        self.owners = owners
        self.n_requests = n_requests
        self.unique = unique
        self.snapshot = snapshot
        self.workers: tuple[int, ...] = ()
        self.by_key: dict[int, Result] | None = None
        #: worker id -> the (key_index, request) shard it was sent, so a
        #: stale or silent worker's share can re-execute in-process
        self.shards: dict[int, list] = {}
        #: the generation triple the batch was pinned to at submit time
        self.gens: tuple[int, int, int] = (0, 0, 0)


class DaemonPool:
    """A persistent pool of daemon workers surviving across batches.

    Where :class:`WorkerPool` forks a fresh set of processes per pool
    and must be torn down and rebuilt to observe newer session state, a
    ``DaemonPool``'s workers are long-lived: each holds a private
    session (inherited warm under ``fork``, rebuilt lazily under
    ``spawn``) and :meth:`resnapshot` ships them an *incremental*
    snapshot delta — only the changed atoms and bumped generation
    counters — so object-fact churn leaves worker graph closures, region
    tables, compiled plans and order-part memos warm across batches.

    Unique plan keys are assigned to workers by stable hash, so a
    repeated query keeps landing on the worker whose plan cache already
    holds it.  :meth:`submit` / :meth:`collect` split the round trip —
    submission (and resync) only *write* to the per-worker message
    streams, so the caller can keep working while the workers execute;
    that is the overlap the write-boundary stream pipeline
    (:func:`repro.engine.batch.execute_stream` with ``pool=``/
    ``workers=``) is built on.  :meth:`execute_many` is the synchronous
    convenience.

    Restricted sandboxes (and ``workers=1``) degrade to in-process
    sequential execution over the same snapshot; a worker failing
    mid-flight degrades the pool the same way and re-executes the
    affected batch against the snapshot it was submitted under, so
    callers always get their results.  Must be resynced from the session
    it was constructed over.  Usable as a context manager.
    """

    def __init__(
        self,
        session: Session,
        workers: int | None = None,
        start_method: str | None = None,
        reply_timeout: float | None = None,
        reply_retries: int | None = None,
    ) -> None:
        self._workers = workers if workers is not None else _default_workers()
        self._reply_timeout = (
            reply_timeout if reply_timeout is not None
            else _reply_timeout_default()
        )
        self._reply_retries = (
            reply_retries if reply_retries is not None
            else _reply_retries_default()
        )
        self._snapshot = session.snapshot()
        self._conns: list = []
        self._procs: list = []
        #: the single parallel batch allowed in flight (see submit)
        self._inflight: _PendingBatch | None = None
        #: GC/interpreter-exit guard: stops the daemons when a pool is
        #: dropped without close() (or a caller raises past it), so no
        #: worker process can outlive its leader as an orphan.
        self._finalizer: weakref.finalize | None = None
        if self._workers > 1:
            self._start(start_method)

    def _start(self, start_method: str | None) -> None:
        conns: list = []
        procs: list = []
        try:
            import multiprocessing as mp

            methods = mp.get_all_start_methods()
            if start_method is None:
                start_method = "fork" if "fork" in methods else methods[0]
            ctx = mp.get_context(start_method)
            payload = (
                self._snapshot
                if start_method == "fork"
                else (self._snapshot.db, self._snapshot._gens())
            )
            for _ in range(self._workers):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_daemon_main, args=(payload, child), daemon=True
                )
                proc.start()
                child.close()
                conns.append(parent)
                procs.append(proc)
        except (ImportError, OSError, ValueError, RuntimeError):
            # terminate the partially started workers before degrading
            for conn in conns:
                _close_quietly(conn)
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join()
            log.info(
                "daemon pool unavailable; degrading to in-process "
                "sequential execution", exc_info=True,
            )
            return
        self._conns, self._procs = conns, procs
        # The callback must not capture self (it would never collect);
        # it shares the *list objects*, which close()/_degrade() empty
        # after their own cleanup so the guard never double-stops.
        self._finalizer = weakref.finalize(
            self, DaemonPool._cleanup, conns, procs
        )

    @staticmethod
    def _cleanup(conns: list, procs: list) -> None:
        """Stop workers (finalize guard + the close() implementation).

        Order matters: the stop is sent and any stray replies are
        drained BEFORE the pipes are closed, so a worker caught
        mid-batch can finish its reply send and exit on its own instead
        of dying on a broken pipe — a clean shutdown stays log-silent.
        """
        for conn in conns:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 5.0
        for conn, proc in zip(conns, procs):
            while proc.is_alive() and time.monotonic() < deadline:
                try:
                    if conn.poll(0.05):
                        conn.recv()  # stray reply from an in-flight shard
                except (OSError, EOFError):
                    break  # worker closed its end: it is exiting
        for conn in conns:
            _close_quietly(conn)
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join()
        conns.clear()
        procs.clear()

    def _degrade(self, reason: str, **fields) -> None:
        """Tear the worker processes down; later batches run in-process.

        ``reason`` (plus any ``fields``) goes to the log in structured
        ``key=value`` form — a degradation is silent-data-slowdown
        territory, so operators get the *why* every time.
        """
        conns, procs = self._conns, self._procs
        self._conns, self._procs = [], []
        self._inflight = None  # its replies died with the connections
        for conn in conns:
            _close_quietly(conn)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join()
        had_procs = bool(procs)
        # the finalize guard shares these list objects: emptied, it no-ops
        conns.clear()
        procs.clear()
        if had_procs:
            log.warning(
                "daemon pool degraded to in-process execution: reason=%s%s",
                reason,
                "".join(f" {k}={v}" for k, v in sorted(fields.items())),
            )

    # -- state -------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True while the long-lived worker processes are alive."""
        return bool(self._conns)

    @property
    def snapshot(self):
        """The snapshot the pool currently answers against."""
        return self._snapshot

    # -- resync ------------------------------------------------------------

    def resnapshot(self, session: Session) -> None:
        """Advance the pool to ``session``'s current state, incrementally.

        Cheap by design: a no-op when nothing changed since the last
        sync; otherwise one snapshot plus one
        :class:`~repro.api.session.SnapshotDelta` message per worker,
        with no reply awaited — per-connection ordering guarantees the
        next submitted batch sees the synced state.

        Like :meth:`submit`, this writes to the bounded per-worker
        pipes, so it must not run while a parallel batch is in flight
        (a busy worker could be blocked sending its reply at the same
        time — both pipe directions full is a deadlock): ``collect()``
        or ``abandon()`` the batch first, or this raises
        ``RuntimeError``.
        """
        if self._inflight is not None and self._inflight.workers:
            raise RuntimeError(
                "a daemon-pool batch is in flight; collect() or abandon() "
                "it before resnapshot()"
            )
        delta = session.snapshot_delta(self._snapshot)
        if delta is None:
            return
        from_gens = self._snapshot._gens()
        self._snapshot = session.snapshot()
        if not self._conns:
            return
        rule = faults.fire(faults.SITE_RESYNC_DROP)
        drop = int(rule.param("worker", 0)) if rule is not None else None
        try:
            for w, conn in enumerate(self._conns):
                if w == drop:
                    continue  # injected delta loss: this worker desyncs
                conn.send(("resync", delta, from_gens))
        except (OSError, BrokenPipeError, EOFError):
            self._degrade("resync-send-failed")

    # -- execution ---------------------------------------------------------

    def _execute_local(self, unique, snapshot) -> dict[int, Result]:
        """The in-process path: decide the unique groups on ``snapshot``."""
        results = execute_many(snapshot, [r for _, r in unique])
        return {ki: result for (ki, _), result in zip(unique, results)}

    def submit(self, requests: Iterable[QueryRequest]) -> _PendingBatch:
        """Ship a batch to the workers; returns a handle for :meth:`collect`.

        With live workers this only *writes* the shard messages and
        returns immediately — the caller can keep applying writes to the
        live session (the submitted batch is pinned to the current
        snapshot) while the workers execute.

        At most ONE parallel batch may be in flight: :meth:`collect` (or
        :meth:`abandon`) the previous one first, or this raises
        ``RuntimeError``.  The per-worker pipes are bounded OS buffers;
        queueing a second batch behind uncollected replies could block
        both sides of a pipe at once and deadlock.
        """
        requests = list(requests)
        if self._inflight is not None and self._inflight.workers:
            raise RuntimeError(
                "a daemon-pool batch is already in flight; collect() or "
                "abandon() it before submitting another"
            )
        unique, owners = _unique_groups(requests)
        pending = _PendingBatch(
            owners, len(requests), unique, self._snapshot
        )
        if not self._conns or not unique:
            pending.by_key = self._execute_local(unique, pending.snapshot)
            return pending
        # Stable-hash worker affinity: the same plan key lands on the
        # same worker for the life of the pool, so its compiled plan and
        # result memos stay hot across batches and epochs.
        n = len(self._conns)
        shards: dict[int, list] = {}
        for ki, request in unique:
            shards.setdefault(hash(request.plan_key) % n, []).append(
                (ki, request)
            )
        gens = self._snapshot._gens()
        try:
            for w in sorted(shards):
                self._conns[w].send(("run", shards[w], gens))
        except (OSError, BrokenPipeError, EOFError):
            self._degrade("submit-send-failed")
            pending.by_key = self._execute_local(unique, pending.snapshot)
            return pending
        pending.workers = tuple(sorted(shards))
        pending.shards = shards
        pending.gens = gens
        self._inflight = pending
        return pending

    def _recv_reply(self, w: int):
        """One worker's reply, bounded by timeout + retries w/ backoff.

        A hung (or wedged, or merely very slow) worker used to block
        ``collect`` forever; now each wait is bounded.  Every timed-out
        wait is retried with a doubled window — a slow worker usually
        answers on a retry, and the stretched total gives the benefit of
        the doubt before the pool declares it dead — then
        :class:`_ReplyTimeout` sends the caller down the same degrade
        path as a crashed worker.  A worker that died outright surfaces
        immediately: ``poll`` returns ready on EOF and ``recv`` raises.
        """
        conn = self._conns[w]
        wait = self._reply_timeout
        waited = 0.0
        for attempt in range(self._reply_retries + 1):
            if conn.poll(wait):
                return conn.recv()
            waited += wait
            if attempt < self._reply_retries:
                log.warning(
                    "daemon worker %d reply timed out after %.3gs; "
                    "retrying with %.3gs window (attempt %d/%d)",
                    w, wait, wait * 2, attempt + 1, self._reply_retries,
                )
            wait *= 2
        raise _ReplyTimeout(w, waited)

    def collect(self, pending: _PendingBatch) -> list[Result]:
        """Wait for a submitted batch; results in request order.

        The merge is deterministic (per-key results fanned out in
        request order).  Failure handling, all of it yielding results
        identical to the sequential path:

        * a worker that died mid-batch, or stayed silent past the reply
          timeout + retries, degrades the pool and the whole batch
          transparently re-executes in-process against the snapshot it
          was submitted under;
        * a worker that replies ``stale`` (it lost a resync delta) has
          its shard re-executed in-process and is then healed with a
          full state reset — the pool stays parallel;
        * a worker that *reports* an exception (an invalid request) has
          it re-raised here, after all of the batch's replies have been
          drained.
        """
        if pending.by_key is None:
            workers, pending.workers = pending.workers, ()
            if self._inflight is pending:
                self._inflight = None
            by_key: dict[int, Result] = {}
            error: Exception | None = None
            stale: list[int] = []
            try:
                for w in workers:
                    tag, payload = self._recv_reply(w)
                    if tag == "ok":
                        for ki, result in payload:
                            by_key[ki] = result
                    elif tag == "stale":
                        stale.append(w)
                        log.warning(
                            "daemon worker %d stale at gens %r "
                            "(batch at %r); re-executing its shard "
                            "in-process and healing the worker",
                            w, payload, pending.gens,
                        )
                    elif error is None:
                        error = payload
            except _ReplyTimeout as exc:
                self._degrade(
                    "reply-timeout", worker=exc.worker,
                    waited=f"{exc.waited:.3g}s",
                )
                by_key = self._execute_local(
                    pending.unique, pending.snapshot
                )
                error = None
                stale = []
            except (OSError, EOFError, IndexError) as exc:
                self._degrade("worker-dead", error=type(exc).__name__)
                by_key = self._execute_local(
                    pending.unique, pending.snapshot
                )
                error = None
                stale = []
            for w in stale:
                by_key.update(
                    self._execute_local(pending.shards[w], pending.snapshot)
                )
            if stale:
                self._heal(stale)
            if error is not None:
                raise error
            pending.by_key = by_key
        return _fan_out(pending.owners, pending.by_key, pending.n_requests)

    def _heal(self, workers: list[int]) -> None:
        """Reset desynced workers to the pool's current state."""
        if not self._conns:
            return
        db, gens = self._snapshot.db, self._snapshot._gens()
        try:
            for w in workers:
                self._conns[w].send(("reset", db, gens))
        except (OSError, BrokenPipeError, EOFError):
            self._degrade("heal-send-failed")

    def abandon(self, pending: _PendingBatch) -> None:
        """Drain an in-flight batch without returning results.

        Used when an exception abandons a pipelined stream mid-flight:
        the outstanding replies are consumed (and discarded) so the
        pool's message streams stay consistent for the next caller.
        A stale reply still heals the worker; a dead or silent worker
        still degrades the pool.
        """
        workers, pending.workers = pending.workers, ()
        if self._inflight is pending:
            self._inflight = None
        stale: list[int] = []
        try:
            for w in workers:
                tag, payload = self._recv_reply(w)
                if tag == "stale":
                    stale.append(w)
        except _ReplyTimeout as exc:
            self._degrade(
                "abandon-reply-timeout", worker=exc.worker,
                waited=f"{exc.waited:.3g}s",
            )
            return
        except (OSError, EOFError, IndexError) as exc:
            self._degrade("abandon-worker-dead", error=type(exc).__name__)
            return
        if stale:
            self._heal(stale)

    def execute_many(
        self, requests: Iterable[QueryRequest]
    ) -> list[Result]:
        """Synchronous batched execution: submit, collect, fan out."""
        return self.collect(self.submit(requests))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the daemon workers down (idempotent).

        Runs the same cleanup the ``weakref.finalize`` guard would at
        GC/interpreter exit; either path empties the shared lists, so
        whichever runs second is a no-op.

        A batch still in flight (a server shutting down mid-epoch) is
        drained first — its replies are consumed and discarded — so a
        healthy pool closes without tripping the structured-degrade
        logging meant for *failed* workers.
        """
        if self._inflight is not None and self._inflight.workers:
            try:
                self.abandon(self._inflight)
            except Exception:  # shutdown proceeds regardless
                log.debug(
                    "in-flight batch drain failed during close",
                    exc_info=True,
                )
        conns, procs = self._conns, self._procs
        self._conns, self._procs = [], []
        DaemonPool._cleanup(conns, procs)
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None

    def __enter__(self) -> "DaemonPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "DEFAULT_REPLY_RETRIES",
    "DEFAULT_REPLY_TIMEOUT",
    "DEFAULT_WORKER_CAP",
    "DaemonPool",
    "REPLY_RETRIES_ENV",
    "REPLY_TIMEOUT_ENV",
    "WORKER_CAP_ENV",
    "WorkerPool",
    "execute_parallel",
]
