"""Read-only session snapshots: freeze a database state, keep the heat.

The paper's decision procedures are pure functions of (database, plan),
so any fixed database state can be queried from as many places as you
like — the only obstacle is the cache substrate, which is keyed on live
mutable instances.  :meth:`Session.snapshot
<repro.api.session.Session.snapshot>` resolves that with a one-way
copy-on-write handoff:

* the snapshot shares the live session's frozen
  :class:`~repro.core.database.IndefiniteDatabase`, its order-graph
  *instance* (whose per-generation closures are append-only and so safe
  to read and warm from both sides), its labelled dag and object-fact
  index, and a forked region-cache hub whose entries share the
  structural memo dicts (:meth:`RegionCache.fork
  <repro.core.regions.RegionCache.fork>`);
* the live session raises its ``_graph_shared`` flag: the next mutation
  that would have edited the shared graph in place rebuilds a private
  graph instead, so a snapshot can never observe a mutation.

Snapshots are therefore cheap (no copying of graph closures, no cold
caches) and durable (valid for their whole lifetime).  They are the unit
the worker pools (:mod:`repro.engine.pool`) ship to workers: under a
``fork`` start method the operating system's copy-on-write pages make
the warm closures free to inherit.  A daemon-pool worker's fork-
inherited snapshot is *process-private*, which is what lets the worker
advance it with :meth:`Session.apply_snapshot_delta
<repro.api.session.Session.apply_snapshot_delta>` resync deltas without
ever violating immutability of any snapshot the parent can observe.
"""

from __future__ import annotations

from repro.api.session import Session
from repro.core.errors import ReproError


class SnapshotMutationError(ReproError):
    """A mutation was attempted on a read-only session snapshot."""


class SessionSnapshot(Session):
    """An immutable :class:`~repro.api.session.Session` at a fixed state.

    Supports the whole query surface — :meth:`prepare`, :meth:`explain`,
    :meth:`entails`, :meth:`certain_answers`, :meth:`snapshot` (snapshots
    of snapshots are just more forks) — but every mutator raises
    :class:`SnapshotMutationError`.  Obtained from
    :meth:`Session.snapshot <repro.api.session.Session.snapshot>`.
    """

    def __init__(self, session: Session) -> None:
        db = session.db
        self._proper = set(db.proper_atoms)
        self._order = set(db.order_atoms)
        self._db = db
        self._order_names = None
        self._object_names = None
        self._graph_gen, self._label_gen, self._object_gen = session._gens()
        ctx = session.context()
        ctx.graph  # noqa: B018 - build before sharing so both sides warm it
        self._ctx = ctx.fork()
        self._plans = {}
        self._plan_limit = session._plan_limit
        self._observers = []
        self._graph_shared = False

    def _refuse(self, what: str) -> None:
        raise SnapshotMutationError(
            f"cannot {what} on a read-only snapshot; mutate the live "
            "session and take a new snapshot"
        )

    # -- the whole mutation surface is refused ----------------------------

    def assert_facts(self, *atoms) -> "Session":
        self._refuse("assert_facts")

    def retract_facts(self, *atoms) -> "Session":
        self._refuse("retract_facts")

    def assert_order(self, *atoms) -> "Session":
        self._refuse("assert_order")

    def retract_order(self, *atoms) -> "Session":
        self._refuse("retract_order")

    def __str__(self) -> str:
        return f"SessionSnapshot({self.size()} atoms, gens={self._gens()})"


__all__ = ["SessionSnapshot", "SnapshotMutationError"]
