"""Incrementally maintained certain-answer views.

A :class:`MaterializedView` registers an open query on a live
:class:`~repro.api.session.Session` and keeps its certain-answer set up
to date across ``assert_facts`` / ``retract_facts`` / ``assert_order`` /
``retract_order``, re-evaluating only the delta each mutation's bumped
generation permits:

* **object generation only** (facts over object constants) — when the
  query's object variables are exactly its free variables, a candidate
  tuple's verdict can only change if the mutated facts mention one of
  the tuple's own constants: object-only facts carry no order arguments,
  so they cannot perturb the order structure of any minimal model, and
  after substitution every object position of the query is a constant of
  the tuple.  The view therefore re-evaluates just the tuples (over the
  possibly-grown domain) that mention a touched constant — via the
  :meth:`~repro.api.plan.PreparedQuery.answers_for` delta hook — and
  carries every other verdict over unchanged.
* **label generation** (facts over existing order constants) — the
  order-part memos are stale but the graph closures and structural
  region caches are warm: one plan re-execution against the warm
  context refreshes the memos.
* **graph generation** (order atoms, order constants appearing or
  vanishing) — everything graph-derived is stale: full re-evaluation.

Queries with existential object variables or object constants fall back
to full re-evaluation on every relevant mutation (the delta argument
above does not apply to them); they are still maintained correctly, just
without the sub-linear object path.  The differential suite
(``tests/test_engine.py``) pins view state against a from-scratch
``certain_answers`` across randomized mutation streams.
"""

from __future__ import annotations

from itertools import product as iter_product

from repro.api.session import MutationEvent, Session
from repro.core.query import Query
from repro.core.semantics import Semantics
from repro.core.sorts import Term


class MaterializedView:
    """A registered open query whose answer set tracks the session.

    The view subscribes to the session's mutation events at
    construction; :meth:`answers` is always exact.  Call :meth:`close`
    to unsubscribe — a closed view no longer sees deltas, so any later
    :meth:`answers` call after a mutation falls back to a full
    re-evaluation.
    """

    def __init__(
        self,
        session: Session,
        query: Query,
        free_vars: tuple[Term, ...],
        semantics: Semantics = Semantics.FIN,
        method: str = "auto",
    ) -> None:
        self._session = session
        self._plan = session.prepare(
            query, semantics, method, free_vars=tuple(free_vars)
        )
        self._delta_capable = self._compute_delta_capable()
        self._touched: set[str] = set()
        self._stale = False  # graph/label bump or non-delta mutation
        self._closed = False
        #: maintenance statistics (full vs delta re-evaluations)
        self.full_refreshes = 0
        self.delta_refreshes = 0
        session.add_observer(self._on_mutation)
        self._answers = self._full_refresh()
        self._synced_gens = session._gens()

    # -- capability --------------------------------------------------------

    def _compute_delta_capable(self) -> bool:
        """Is the touched-constants object delta sound for this plan?

        Requires a constant-free static plan whose object variables are
        all free: then object-only facts can only flip tuples that
        mention a mutated constant (see the module docstring).
        """
        plan = self._plan
        if plan._has_constants or plan._static is None:
            return False
        free = set(plan.free_vars)
        return all(
            d.object_variables() <= free
            for d in plan._static.dnf.disjuncts
        )

    # -- session callback --------------------------------------------------

    def _on_mutation(self, event: MutationEvent) -> None:
        if event.graph or event.label or not self._delta_capable:
            self._stale = True
            self._touched.clear()
        elif event.object:
            self._touched |= event.objects

    # -- refresh -----------------------------------------------------------

    def _full_refresh(self) -> frozenset[tuple[str, ...]]:
        self.full_refreshes += 1
        result = self._plan.execute()
        assert result.answers is not None
        return frozenset(result.answers)

    def _delta_refresh(self) -> frozenset[tuple[str, ...]]:
        """Re-evaluate only the tuples that mention a touched constant."""
        self.delta_refreshes += 1
        touched = self._touched
        domain = self._session.context().object_domain
        k = len(self._plan.free_vars)
        # Build the touched tuples directly — fix one position to a
        # touched constant, range the rest over the domain — instead of
        # filtering the full domain^k product: O(k·|touched|·|domain|^
        # (k-1)) keeps a single-constant delta sub-linear in the
        # candidate space.
        live_touched = sorted(touched.intersection(domain))
        delta: set[tuple[str, ...]] = set()
        for i in range(k):
            positions = [domain] * k
            positions[i] = live_touched
            delta.update(iter_product(*positions))
        delta = sorted(delta)
        # Constants of untouched tuples still exist (vanishing requires
        # retracting a fact that mentions them, which marks them touched),
        # so their carried verdicts remain valid combos of the new domain.
        carried = {
            combo
            for combo in self._answers
            if not any(c in touched for c in combo)
        }
        return frozenset(carried | set(self._plan.answers_for(delta)))

    def refresh(self) -> frozenset[tuple[str, ...]]:
        """Bring the view up to date; returns the current answers."""
        gens = self._session._gens()
        if gens != self._synced_gens:
            if self._closed or self._stale or not (
                self._touched or self._delta_capable
            ):
                # A closed view missed events; an open one saw a
                # graph/label bump (or is not delta-capable): recompute.
                self._answers = self._full_refresh()
            elif self._touched:
                self._answers = self._delta_refresh()
            else:
                # object-generation churn whose net touched set is empty
                # cannot have changed any verdict — but only an observed
                # mutation can tell us that; unseen churn recomputes.
                self._answers = self._full_refresh()
            self._synced_gens = gens
            self._stale = False
            self._touched.clear()
        return self._answers

    # -- inspection --------------------------------------------------------

    def answers(self) -> frozenset[tuple[str, ...]]:
        """The certain answers at the session's current state."""
        return self.refresh()

    @property
    def dirty(self) -> bool:
        """True when a mutation since the last refresh awaits processing."""
        return self._session._gens() != self._synced_gens

    @property
    def delta_capable(self) -> bool:
        """True when object-fact churn refreshes sub-linearly."""
        return self._delta_capable

    def close(self) -> None:
        """Stop observing the session (later refreshes recompute fully)."""
        if not self._closed:
            self._session.remove_observer(self._on_mutation)
            self._closed = True

    def __str__(self) -> str:
        state = "closed" if self._closed else "live"
        return (
            f"MaterializedView({len(self._answers)} answers, {state}, "
            f"full={self.full_refreshes}, delta={self.delta_refreshes})"
        )


__all__ = ["MaterializedView"]
