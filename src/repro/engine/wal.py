"""Write-ahead log: durable sessions, crash recovery, change feed.

A :class:`WriteAheadLog` attaches to a live
:class:`~repro.api.session.Session` as a mutation observer and appends
one checksummed record per effective mutation, so the session's state
survives the process.  :func:`recover` (surfaced as
``Session.recover(path)``) rebuilds the session from disk: load the last
compaction snapshot, replay every intact log record on top, and truncate
— rather than choke on — a torn tail left by a crash mid-write.

On-disk layout (two sibling files):

``<path>``
    the log: an 16-byte header (``b"REPROWAL"`` magic + the base
    *epoch*, see below, as ``<Q``), then zero or more frames of
    ``<I length><I crc32>`` followed by ``length`` payload bytes: one
    :class:`~repro.api.session.SnapshotDelta` reduced to builtin tuples
    (:func:`_encode_delta` — ~4x faster to serialize than pickling atom
    objects, which matters on the per-mutation write path).
``<path>.snap``
    the last compaction snapshot: ``b"REPROSNP"`` magic + ``<I crc32>``
    over a pickled ``(proper_atoms, order_atoms, gens)`` triple.
    Written to a temp file, fsync'd, then atomically ``os.replace``\\ d.

**Epochs.**  Every effective mutation bumps at least one of the
session's three generation counters and none ever decreases, so
``sum(gens)`` is strictly increasing across mutations.  Each record
carries its target gens; the log header carries the epoch of the state
the log is *based on*.  Recovery replays only records whose epoch
exceeds the snapshot's — which makes a crash *between* compaction's two
non-atomic steps (snapshot replace, log truncate) harmless: the stale
log records are simply skipped.

**Sync policies.**  ``sync="fsync"`` (the default) fsyncs every record —
full power-loss durability.  ``sync="group"`` is group commit: every
record is still flushed to the kernel on append (so, like ``"flush"``,
every acknowledged write survives any process death), but the fsync is
amortized — one per commit *window*, issued as soon as ``group_max``
records are pending or ``group_window`` seconds have passed since the
window opened, whichever comes first.  Power-loss durability therefore
lags an acknowledged write by at most the window; under a burst of
writers (the serving tier) the cost approaches one fsync per burst
instead of one per record.  ``sync="flush"`` flushes to the kernel page
cache, which survives any process death (``SIGKILL`` included) but not a
kernel panic; it is what the crash-recovery differential tests and the
write-overhead benchmark use.  ``sync="none"`` leaves buffering to the
``io`` layer.

**Change feed.**  The same log doubles as a subscribe-able bus:
:class:`WalFollower` tails a log from another process (or a later point
in this one), applying new records to its own replica session — whose
observers, e.g. :class:`~repro.engine.views.MaterializedView`, fire
exactly as if the mutations were local.  Compaction under the follower's
feet is detected and handled by rebasing onto the new snapshot.

**Marks.**  Besides mutation deltas the log may carry :class:`WalMark`
records — tiny ``(seq, wall)`` stamps appended by the serving tier's
primary after each acknowledged write and periodically as heartbeats.
They carry no session state: recovery and log replay skip them, and
they count toward ``compact_every`` on their own counter — a marks-only
compaction skips the snapshot rewrite and just resets the log, so an
idle heartbeating primary's log stays bounded.  Compaction re-seeds the
fresh log with one mark carrying the ``seq`` high-water
(:attr:`WriteAheadLog.last_mark_seq`), which is how a restarted primary
resumes its reply ``seq`` instead of reusing numbers replicas have
already ratcheted past.  A :class:`WalFollower`
folds them into :attr:`~WalFollower.applied_seq` (the primary ``seq``
covered by the replica's state, the read-your-writes token) and
:attr:`~WalFollower.last_mark_wall` (primary-liveness evidence).

Fault-injection sites (:mod:`repro.engine.faults`): ``wal.torn_write``
makes :meth:`WriteAheadLog.append` write only a prefix of a record and
die; ``wal.compact.crash`` kills :meth:`WriteAheadLog.compact` between
its non-atomic steps; ``wal.follower.stall`` makes
:meth:`WalFollower.poll` skip its scan (a stuck feed).
"""

from __future__ import annotations

import io
import logging
import os
import pickle
import struct
import threading
import time
import zlib
from typing import TYPE_CHECKING, Callable, NamedTuple

from repro.core.atoms import OrderAtom, ProperAtom, Rel
from repro.core.database import IndefiniteDatabase
from repro.core.errors import ReproError
from repro.core.sorts import obj, ordc
from repro.engine import faults

if TYPE_CHECKING:
    from repro.api.session import MutationEvent, Session, SnapshotDelta

log = logging.getLogger(__name__)

#: log file magic (8 bytes) followed by ``<Q`` base epoch.
_LOG_MAGIC = b"REPROWAL"
_HEADER = struct.Struct("<8sQ")
#: per-record frame prefix: payload length, crc32 of the payload.
_FRAME = struct.Struct("<II")
#: snapshot file magic followed by ``<I`` crc32 of the pickled payload.
_SNAP_MAGIC = b"REPROSNP"
_SNAP_HEADER = struct.Struct("<8sI")

_SYNC_POLICIES = ("fsync", "group", "flush", "none")


class WalError(ReproError):
    """Unrecoverable corruption in a WAL or its compaction snapshot.

    Torn *tail* records are expected crash debris and are truncated
    silently; this is for damage recovery cannot paper over — a bad
    magic, a snapshot that fails its checksum.
    """


def _epoch(gens: tuple[int, int, int]) -> int:
    """The strictly-increasing scalar order on generation triples."""
    return gens[0] + gens[1] + gens[2]


def _fsync_dir(path: str) -> None:
    """Make a rename in ``path``'s directory durable (best effort)."""
    try:
        fd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# -- snapshot sibling file ---------------------------------------------------


def snap_path(path: str) -> str:
    """The compaction-snapshot sibling of the log at ``path``."""
    return path + ".snap"


def _write_snapshot(
    path: str,
    proper: frozenset[ProperAtom],
    order: frozenset[OrderAtom],
    gens: tuple[int, int, int],
) -> None:
    """Atomically (re)write the snapshot sibling of the log at ``path``."""
    payload = pickle.dumps(
        (tuple(sorted(proper)), tuple(sorted(order)), gens),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    target = snap_path(path)
    tmp = target + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(_SNAP_HEADER.pack(_SNAP_MAGIC, zlib.crc32(payload)))
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    rule = faults.fire(faults.SITE_WAL_COMPACT)
    if rule is not None and int(rule.param("stage", 0)) == 0:
        # died after writing the temp snapshot, before the atomic rename:
        # the old snapshot (or its absence) is still in force.
        raise faults.InjectedCrash("wal.compact.crash stage=0")
    os.replace(tmp, target)
    _fsync_dir(target)
    if rule is not None and int(rule.param("stage", 0)) == 1:
        # died after the rename, before the log was truncated: recovery
        # must skip the log's stale records by epoch.
        raise faults.InjectedCrash("wal.compact.crash stage=1")


def _read_snapshot(
    path: str,
) -> tuple[frozenset[ProperAtom], frozenset[OrderAtom], tuple[int, int, int]] | None:
    """Load the snapshot sibling, or ``None`` when there is none."""
    target = snap_path(path)
    try:
        with open(target, "rb") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return None
    if len(raw) < _SNAP_HEADER.size:
        raise WalError(f"snapshot {target!r} is truncated")
    magic, crc = _SNAP_HEADER.unpack_from(raw)
    payload = raw[_SNAP_HEADER.size :]
    if magic != _SNAP_MAGIC:
        raise WalError(f"snapshot {target!r} has bad magic {magic!r}")
    if zlib.crc32(payload) != crc:
        raise WalError(f"snapshot {target!r} failed its checksum")
    proper, order, gens = pickle.loads(payload)
    return frozenset(proper), frozenset(order), tuple(gens)


# -- record wire format ------------------------------------------------------
#
# Records are on the steady-state write path (one per mutation), so they
# do NOT pickle atom objects — reducing each ground atom to builtin
# tuples before pickling is ~4x faster to serialize and smaller on disk.
# The cold read path rebuilds real atoms; the (rarely written) snapshot
# sibling keeps the straightforward atom pickle.


def _encode_delta(delta: "SnapshotDelta") -> bytes:
    """One record's payload: the delta reduced to builtin tuples."""
    return pickle.dumps(
        (
            tuple(
                (a.pred, tuple((t.name, t.is_object) for t in a.args))
                for a in delta.added_proper
            ),
            tuple(
                (a.pred, tuple((t.name, t.is_object) for t in a.args))
                for a in delta.removed_proper
            ),
            tuple(
                (a.left.name, a.rel.value, a.right.name)
                for a in delta.added_order
            ),
            tuple(
                (a.left.name, a.rel.value, a.right.name)
                for a in delta.removed_order
            ),
            delta.gens,
            delta.graph,
            delta.label,
            delta.object,
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _decode_delta(payload: bytes) -> "SnapshotDelta":
    """Rebuild a :class:`~repro.api.session.SnapshotDelta` from a record."""
    return _delta_from_fields(pickle.loads(payload))


def _delta_from_fields(fields: tuple) -> "SnapshotDelta":
    from repro.api.session import SnapshotDelta

    ap, rp, ao, ro, gens, graph, label, object_ = fields

    def proper(entries):
        return tuple(
            ProperAtom(
                pred,
                tuple(
                    obj(name) if is_object else ordc(name)
                    for name, is_object in args
                ),
            )
            for pred, args in entries
        )

    def order(entries):
        return tuple(
            OrderAtom(ordc(left), Rel(rel), ordc(right))
            for left, rel, right in entries
        )

    return SnapshotDelta(
        added_proper=proper(ap),
        removed_proper=proper(rp),
        added_order=order(ao),
        removed_order=order(ro),
        gens=tuple(gens),
        graph=graph,
        label=label,
        object=object_,
    )


class WalMark(NamedTuple):
    """A stateless log record: primary ``seq`` stamp + wall-clock time.

    The serving tier's primary appends one after each acknowledged
    write (so replicas learn which ``seq`` their state covers) and
    periodically as a heartbeat (so replicas can tell a quiet primary
    from a dead one).
    """

    seq: int
    wall: float


#: First element of a mark payload tuple.  Delta payloads start with a
#: tuple of atoms, so the tag is unambiguous against every delta ever
#: written — old logs decode unchanged, old readers never see marks.
_MARK_TAG = "__repro_mark__"


def _encode_mark(seq: int, wall: float) -> bytes:
    """A :class:`WalMark` record's payload."""
    return pickle.dumps(
        (_MARK_TAG, int(seq), float(wall)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _decode_record(payload: bytes) -> "SnapshotDelta | WalMark":
    """Rebuild one record: a mutation delta or a :class:`WalMark`."""
    fields = pickle.loads(payload)
    if (
        isinstance(fields, tuple)
        and len(fields) == 3
        and fields[0] == _MARK_TAG
    ):
        return WalMark(int(fields[1]), float(fields[2]))
    return _delta_from_fields(fields)


# -- log frames --------------------------------------------------------------


def _scan_frame_bytes(
    raw: bytes, offset: int
) -> tuple[int, list["SnapshotDelta | WalMark"]]:
    """Walk intact frames in ``raw`` starting at ``offset``.

    Returns ``(clean_offset, records)`` where ``clean_offset`` is the
    byte offset just past the last *intact* frame — anything beyond it
    is a torn or corrupt tail.  Used on whole files (after the header)
    and on incremental tails read by :class:`WalFollower`.
    """
    records: list["SnapshotDelta | WalMark"] = []
    while True:
        if offset + _FRAME.size > len(raw):
            break
        length, crc = _FRAME.unpack_from(raw, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(raw):
            break
        payload = raw[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            records.append(_decode_record(payload))
        except Exception:  # a crc collision over garbage — treat as torn
            break
        offset = end
    return offset, records


def _scan_frames(raw: bytes) -> tuple[int, list["SnapshotDelta | WalMark"]]:
    """Walk the frames in ``raw`` (header included).

    Returns ``(clean_length, records)`` where ``clean_length`` is the
    byte offset just past the last *intact* frame — anything beyond it
    is a torn or corrupt tail to be truncated.
    """
    if len(raw) < _HEADER.size:
        raise WalError("log is shorter than its header")
    magic, _base = _HEADER.unpack_from(raw)
    if magic != _LOG_MAGIC:
        raise WalError(f"log has bad magic {magic!r}")
    return _scan_frame_bytes(raw, _HEADER.size)


def read_log(
    path: str,
) -> tuple[int, int, list["SnapshotDelta | WalMark"]]:
    """Read the log at ``path``: ``(base_epoch, clean_length, records)``.

    ``records`` mixes mutation deltas and :class:`WalMark` stamps, in
    log order.  Torn/corrupt tail bytes are *reported* (via
    ``clean_length`` < file size) but not modified — callers that own
    the file truncate.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    clean, records = _scan_frames(raw)
    _, base = _HEADER.unpack_from(raw)
    return base, clean, records


# -- the log -----------------------------------------------------------------


class WriteAheadLog:
    """Durability for one session: every mutation becomes a log record.

    Use :meth:`attach` to subscribe to a live session (writing the
    initial compaction snapshot if the log is new), or construct and
    attach in one step::

        wal = WriteAheadLog("session.wal").attach(session)
        session.assert_facts(...)          # appended + fsync'd
        wal.close()

    ``compact_every=N`` folds the log into a fresh snapshot after every
    ``N`` appended records; :meth:`compact` does it on demand.
    ``sync`` is one of ``"fsync"`` / ``"group"`` / ``"flush"`` /
    ``"none"`` (see the module docstring); under ``"group"``,
    ``group_window`` (seconds) and ``group_max`` (records) bound how far
    power-loss durability may lag an acknowledged append.
    """

    def __init__(
        self,
        path: str,
        sync: str = "fsync",
        compact_every: int | None = None,
        group_window: float = 0.005,
        group_max: int = 64,
    ) -> None:
        if sync not in _SYNC_POLICIES:
            raise ValueError(
                f"sync must be one of {_SYNC_POLICIES}, got {sync!r}"
            )
        if compact_every is not None and compact_every <= 0:
            raise ValueError("compact_every must be positive")
        if group_window <= 0:
            raise ValueError("group_window must be positive")
        if group_max <= 0:
            raise ValueError("group_max must be positive")
        self.path = path
        self.sync = sync
        self.compact_every = compact_every
        self.group_window = group_window
        self.group_max = group_max
        self._fh: io.BufferedWriter | None = None
        self._session: "Session" | None = None
        self._since_compact = 0
        self._marks_since_compact = 0
        #: highest ``seq`` ever carried by an appended :class:`WalMark`
        #: (recovered from the log on :meth:`attach`).  Compaction
        #: re-appends one mark with this value into the fresh log, so a
        #: restarted serving-tier primary can resume its reply ``seq``
        #: above everything replicas have already ratcheted past.
        self.last_mark_seq = 0
        # Group-commit state: appends flushed but not yet fsync'd, and
        # the timer that will fsync them when the window closes.  The
        # lock serializes the append path against the timer thread.
        self._lock = threading.RLock()
        self._pending = 0
        self._timer: threading.Timer | None = None
        #: fsyncs actually issued (observability for tests/benchmarks).
        self.fsync_count = 0

    # -- lifecycle ------------------------------------------------------

    def attach(self, session: "Session") -> "WriteAheadLog":
        """Subscribe to ``session``; start or continue the log at ``path``.

        A fresh path gets a compaction snapshot of the session's current
        state plus an empty log — recovery needs no special "no snapshot
        yet" case.  An existing path is continued: its torn tail (if
        any) is truncated, and appending resumes where the intact
        records end.  The caller is responsible for attaching to a
        session that actually *is* the recovered state — which
        :func:`recover` guarantees.
        """
        if self._session is not None:
            raise WalError("log is already attached to a session")
        exists = os.path.exists(self.path)
        if exists:
            base, clean, records = read_log(self.path)
            size = os.path.getsize(self.path)
            if clean < size:
                log.warning(
                    "truncating torn WAL tail: %d byte(s) after offset %d in %s",
                    size - clean,
                    clean,
                    self.path,
                )
            self._fh = open(self.path, "r+b")
            self._fh.truncate(clean)
            self._fh.seek(clean)
            self._since_compact = sum(
                1 for r in records if not isinstance(r, WalMark)
            )
            self._marks_since_compact = 0
            self.last_mark_seq = max(
                (r.seq for r in records if isinstance(r, WalMark)), default=0
            )
        else:
            _write_snapshot(
                self.path,
                frozenset(session._proper),
                frozenset(session._order),
                session._gens(),
            )
            self._fh = open(self.path, "wb")
            self._fh.write(_HEADER.pack(_LOG_MAGIC, _epoch(session._gens())))
            self._sync(barrier=True)
            self._since_compact = 0
        self._session = session
        session.add_observer(self._on_mutation)
        return self

    def close(self) -> None:
        """Detach from the session and close the file (idempotent).

        Under ``sync="group"`` any pending window is fsync'd first, so
        a clean close never owes durability to a timer that will no
        longer fire.
        """
        if self._session is not None:
            self._session.remove_observer(self._on_mutation)
            self._session = None
        with self._lock:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            if self._fh is not None:
                try:
                    self._fh.flush()
                    if self._pending:
                        os.fsync(self._fh.fileno())
                        self.fsync_count += 1
                        self._pending = 0
                finally:
                    self._fh.close()
                    self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- writing --------------------------------------------------------

    def _sync(self, barrier: bool = False) -> None:
        """Flush (and fsync, per policy) what has been written.

        ``barrier=True`` closes any open group-commit window on the
        spot — used by the rare control-path writes (attach, compact)
        that must not owe durability to a timer.
        """
        assert self._fh is not None
        if self.sync == "none":
            return
        self._fh.flush()
        if self.sync == "fsync":
            os.fsync(self._fh.fileno())
            self.fsync_count += 1
        elif self.sync == "group" and barrier:
            with self._lock:
                if self._timer is not None:
                    self._timer.cancel()
                    self._timer = None
                os.fsync(self._fh.fileno())
                self.fsync_count += 1
                self._pending = 0

    def _group_fsync(self) -> None:
        """Timer thread: the commit window elapsed — fsync the pending tail."""
        with self._lock:
            self._timer = None
            if self._fh is None or not self._pending:
                return
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except (OSError, ValueError):  # pragma: no cover - closed racily
                return
            self.fsync_count += 1
            self._pending = 0

    def _on_mutation(self, event: "MutationEvent") -> None:
        from repro.api.session import SnapshotDelta

        session = self._session
        if session is None:  # closed mid-notify by another observer
            return
        delta = SnapshotDelta(
            added_proper=tuple(
                a for a in event.added if isinstance(a, ProperAtom)
            ),
            removed_proper=tuple(
                a for a in event.removed if isinstance(a, ProperAtom)
            ),
            added_order=tuple(
                a for a in event.added if isinstance(a, OrderAtom)
            ),
            removed_order=tuple(
                a for a in event.removed if isinstance(a, OrderAtom)
            ),
            gens=session._gens(),
            graph=event.graph,
            label=event.label,
            object=event.object,
        )
        self.append(delta)

    def append(self, delta: "SnapshotDelta") -> None:
        """Append one record (fault site ``wal.torn_write``)."""
        if self._fh is None:
            raise WalError("log is not open")
        payload = _encode_delta(delta)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        rule = faults.fire(faults.SITE_WAL_TORN)
        if rule is not None:
            torn = frame[: max(1, int(len(frame) * rule.param("fraction", 0.5)))]
            self._fh.write(torn)
            self._fh.flush()
            raise faults.InjectedCrash("wal.torn_write")
        self._write_frame(frame)
        self._since_compact += 1
        if self.compact_every and self._since_compact >= self.compact_every:
            self.compact()

    def append_mark(self, seq: int, wall: float | None = None) -> None:
        """Append a :class:`WalMark` (``seq`` stamp / heartbeat) record.

        Marks ride the same sync policy as mutation records but carry
        no session state.  They keep their own counter against
        ``compact_every`` — a quiet primary heartbeating once a second
        must not grow the log without bound — and a marks-only
        compaction is cheap: the snapshot already covers the log, so
        only the log file is reset (see :meth:`compact`).
        """
        if self._fh is None:
            raise WalError("log is not open")
        if seq > self.last_mark_seq:
            self.last_mark_seq = seq
        payload = _encode_mark(seq, time.time() if wall is None else wall)
        self._write_frame(_FRAME.pack(len(payload), zlib.crc32(payload)) + payload)
        self._marks_since_compact += 1
        if (
            self.compact_every
            and self._marks_since_compact >= self.compact_every
            and self._session is not None
        ):
            self.compact()

    def _write_frame(self, frame: bytes) -> None:
        """Write one framed record honoring the sync policy."""
        if self.sync == "group":
            with self._lock:
                self._fh.write(frame)
                self._fh.flush()  # in the kernel: survives process death
                self._pending += 1
                if self._pending >= self.group_max:
                    os.fsync(self._fh.fileno())
                    self.fsync_count += 1
                    self._pending = 0
                    if self._timer is not None:
                        self._timer.cancel()
                        self._timer = None
                elif self._timer is None:
                    self._timer = threading.Timer(
                        self.group_window, self._group_fsync
                    )
                    self._timer.daemon = True
                    self._timer.start()
        else:
            self._fh.write(frame)
            self._sync()

    def compact(self) -> None:
        """Fold the log into a fresh snapshot and truncate it.

        Two non-atomic steps — replace the snapshot sibling, then reset
        the log with the new base epoch — with the fault site
        ``wal.compact.crash`` between/around them.  A crash at either
        point recovers cleanly: stage 0 leaves the old snapshot + full
        log; stage 1 leaves the new snapshot + a log whose records are
        all at or below the new base epoch, so replay skips them.

        When the log holds no mutation records (marks only — an idle
        heartbeating primary), the snapshot already covers it and the
        rewrite is skipped: only the log file is reset.  Either way the
        fresh log is seeded with one :class:`WalMark` carrying
        :attr:`last_mark_seq`, so the ``seq`` high-water survives
        truncation for recovery and late-attaching followers.
        """
        if self._fh is None or self._session is None:
            raise WalError("log is not attached")
        session = self._session
        if self._since_compact:
            _write_snapshot(
                self.path,
                frozenset(session._proper),
                frozenset(session._order),
                session._gens(),
            )
        # Reset the log under a NEW inode (tmp + os.replace) rather than
        # truncating in place: a follower can then detect compaction
        # from a single stat (the inode changed), which is what makes
        # WalFollower.poll()'s no-open fast path sound.
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(_HEADER.pack(_LOG_MAGIC, _epoch(session._gens())))
            fh.flush()
            if self.sync in ("fsync", "group"):
                os.fsync(fh.fileno())
                self.fsync_count += 1
        os.replace(tmp, self.path)
        _fsync_dir(self.path)
        with self._lock:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            self._pending = 0
            self._fh.close()
            self._fh = open(self.path, "r+b")
            self._fh.seek(0, os.SEEK_END)
        self._since_compact = 0
        self._marks_since_compact = 0
        if self.last_mark_seq:
            # re-seed the seq high-water (direct frame write: must not
            # re-enter the mark-count compaction trigger)
            payload = _encode_mark(self.last_mark_seq, time.time())
            self._write_frame(
                _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
            )
            self._marks_since_compact = 1


# -- recovery ----------------------------------------------------------------


def _load_state(
    path: str, plan_cache_limit: int | None = None
) -> tuple["Session", int, int, list["SnapshotDelta | WalMark"]]:
    """One *consistent* snapshot + log read, replayed into a session.

    Returns ``(session, log_base, clean_length, records)`` where
    ``session`` already has every intact post-snapshot record applied
    and ``clean_length`` is the log offset just past the last record
    folded in — so a follower can cache it as its tail position with no
    window for records to slip between a replay read and an offset read
    (the race the old two-read recover/``read_log`` dance had).

    A live writer may :meth:`WriteAheadLog.compact` between our two file
    reads.  Both compaction and attach replace the snapshot *before*
    resetting the log, so a consistent pair always has
    ``log_base <= snapshot epoch``; observing the opposite means the
    snapshot we read is older than the log — re-read the pair.
    """
    from repro.api.session import Session

    for _attempt in range(8):
        snap = _read_snapshot(path)
        if snap is None:
            raise WalError(f"no WAL snapshot at {snap_path(path)!r}")
        proper, order, gens = snap
        try:
            base, clean, records = read_log(path)
        except FileNotFoundError:
            base, clean, records = _epoch(gens), _HEADER.size, []
        if base <= _epoch(gens):
            break
        log.info(
            "snapshot/log pair at %s raced a compaction "
            "(log base %d > snapshot epoch %d); re-reading",
            path,
            base,
            _epoch(gens),
        )
    else:
        raise WalError(
            f"snapshot/log pair at {path!r} would not settle after 8 reads"
        )
    kwargs = {} if plan_cache_limit is None else {
        "plan_cache_limit": plan_cache_limit
    }
    session = Session(IndefiniteDatabase(proper, order), **kwargs)
    (session._graph_gen, session._label_gen, session._object_gen) = gens
    base_epoch = _epoch(gens)
    skipped = 0
    for delta in records:
        if isinstance(delta, WalMark):
            continue
        if _epoch(delta.gens) <= base_epoch:
            skipped += 1  # pre-compaction debris (crash before truncate)
            continue
        session.apply_snapshot_delta(delta)
    if skipped:
        log.info(
            "recovery skipped %d stale record(s) at or below epoch %d in %s",
            skipped,
            base_epoch,
            path,
        )
    return session, base, clean, records


def recover(path: str, plan_cache_limit: int | None = None) -> "Session":
    """Rebuild the session persisted in the WAL at ``path``.

    Last snapshot + replay of every intact record with a later epoch
    (:class:`WalMark` stamps are skipped — they carry no state).  The
    result is a plain live :class:`~repro.api.session.Session` —
    re-attach a :class:`WriteAheadLog` to keep logging.
    """
    return _load_state(path, plan_cache_limit=plan_cache_limit)[0]


# -- change feed -------------------------------------------------------------


class WalFollower:
    """Tail a WAL as a live change feed into a replica session.

    The follower owns a private :class:`~repro.api.session.Session`
    rebuilt by :func:`recover`; each :meth:`poll` reads records appended
    since the last poll and applies them, firing the replica's mutation
    observers — so a :class:`~repro.engine.views.MaterializedView`
    registered on :attr:`session` follows the writer across process
    boundaries::

        follower = WalFollower("session.wal")
        view = MaterializedView(follower.session, query)
        ...
        follower.poll()      # view now reflects the writer's appends

    Compaction by the writer is detected (the log shrank, or its base
    epoch moved) and handled by *rebasing*: recover the new on-disk
    state into a scratch session and apply the difference to the replica
    as one synthetic delta — same observer semantics, no state loss.

    Read-your-writes bookkeeping: :attr:`applied_seq` is the highest
    primary ``seq`` marked at or before the follower's position (0 when
    the log has no marks), and :attr:`last_mark_wall` the wall-clock
    stamp of the latest mark seen — the serving tier's replica mode
    uses the pair for consistency gating and primary-death detection.
    :attr:`polls` and :attr:`rebases` count for health reporting.
    """

    def __init__(self, path: str, plan_cache_limit: int | None = None) -> None:
        self.path = path
        self._plan_cache_limit = plan_cache_limit
        #: highest primary ``seq`` covered by :attr:`session`'s state.
        self.applied_seq = 0
        #: wall-clock stamp of the newest :class:`WalMark` seen, if any.
        self.last_mark_wall: float | None = None
        #: poll attempts that actually scanned (health reporting).
        self.polls = 0
        #: compaction rebases performed (health reporting).
        self.rebases = 0
        # Stat before reading: if a compaction lands between the stat
        # and the read we cache the OLD inode against the NEW file and
        # the next poll takes the slow path — the safe direction.
        try:
            self._ino = os.stat(path).st_ino
        except OSError:
            self._ino = -1
        self.session, self._base, self._offset, records = _load_state(
            path, plan_cache_limit=plan_cache_limit
        )
        self._epoch = _epoch(self.session._gens())
        self._fold_marks(records)

    def _fold_marks(self, records: list["SnapshotDelta | WalMark"]) -> None:
        for record in records:
            if isinstance(record, WalMark):
                if record.seq > self.applied_seq:
                    self.applied_seq = record.seq
                self.last_mark_wall = record.wall

    def poll(self) -> int:
        """Apply records appended since the last poll; count applied.

        A rebase after writer-side compaction counts as one application
        when the state actually changed; :class:`WalMark` records update
        :attr:`applied_seq` / :attr:`last_mark_wall` but do not count.

        A torn tail — a frame the writer is mid-append on, or crash
        debris — is *never* an error here: the scan stops at the last
        intact frame and the next poll retries from there.  (Fault site
        ``wal.follower.stall`` makes the whole poll a no-op.)

        Polling is built to be cheap enough for a tight tailing loop
        (the serving tier's ``watch`` path calls it per client tick):

        * **fast path** — one ``stat``, no open: if the inode and size
          both match what we last scanned, nothing happened.  Between
          compactions the log is append-only (same inode), so an
          unchanged size means a byte-identical file; a compaction
          swaps in a new inode (see :meth:`WriteAheadLog.compact`), so
          it can never alias the cached pair even when the refilled log
          lands on exactly the old length.  The bare-header size is
          additionally excluded, guarding the (already freakish)
          recycled-inode case.
        * **slow path** — re-read only the 16-byte header (to detect a
          compaction rebase) plus the bytes past our cached offset,
          never the whole file.
        """
        if faults.fire(faults.SITE_FOLLOWER_STALL) is not None:
            return 0
        try:
            st = os.stat(self.path)
            size = st.st_size
        except OSError:
            return 0
        if (
            size == self._offset
            and st.st_ino == self._ino
            and size > _HEADER.size
        ):
            return 0
        self.polls += 1
        self._ino = st.st_ino
        try:
            with open(self.path, "rb") as fh:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return 0
                _magic, base = _HEADER.unpack_from(header)
                if base != self._base or size < self._offset:
                    return self._rebase()
                fh.seek(self._offset)
                tail = fh.read()
        except FileNotFoundError:
            return 0
        except OSError:  # pragma: no cover - transient FS trouble
            return 0
        try:
            clean, records = _scan_frame_bytes(tail, 0)
        except Exception:  # defensive: racing garbage must not poison the feed
            log.warning(
                "follower: unreadable tail at offset %d in %s; will retry",
                self._offset,
                self.path,
            )
            return 0
        applied = 0
        for record in records:
            if isinstance(record, WalMark):
                if record.seq > self.applied_seq:
                    self.applied_seq = record.seq
                self.last_mark_wall = record.wall
                continue
            if _epoch(record.gens) <= self._epoch:
                continue
            self.session.apply_snapshot_delta(record)
            self._epoch = _epoch(record.gens)
            applied += 1
        self._offset += clean
        return applied

    def _rebase(self) -> int:
        """The writer compacted: jump the replica to the new on-disk state.

        One consistent :func:`_load_state` read supplies the recovered
        state *and* the tail offset it corresponds to, so no record can
        slip between a replay read and an offset read.
        """
        self.rebases += 1
        recovered, base, clean, records = _load_state(
            self.path, plan_cache_limit=self._plan_cache_limit
        )
        self._base = base
        self._offset = clean
        self._fold_marks(records)
        delta = recovered.snapshot_delta(self.session)
        if delta is None:
            self._epoch = _epoch(self.session._gens())
            return 0
        self.session.apply_snapshot_delta(delta)
        self._epoch = _epoch(self.session._gens())
        return 1


__all__ = [
    "WalError",
    "WalFollower",
    "WalMark",
    "WriteAheadLog",
    "read_log",
    "recover",
    "snap_path",
]
