"""Flexi-words, the subword relation, and well-quasi-order machinery."""

from repro.flexiwords.flexiword import FlexiWord, Letter, Word, all_words, letter
from repro.flexiwords.subword import (
    flexi_entails,
    flexi_equiv,
    flexi_le,
    is_subword,
    word_model_satisfies,
)

__all__ = [
    "FlexiWord",
    "Letter",
    "Word",
    "all_words",
    "flexi_entails",
    "flexi_equiv",
    "flexi_le",
    "is_subword",
    "letter",
    "word_model_satisfies",
]
