"""Flexi-words over a set of monadic predicates (Section 4).

Given a set ``Pred`` of monadic predicates and the alphabet
``A = powerset(Pred)``, the set ``FW(Pred) = A . ({<, <=} . A)*`` of
*flexi-words* consists of finite sequences ``a1 r1 a2 r2 ... r_{n-1} an``
with each ``ai`` a subset of ``Pred`` and each ``ri`` one of '<', '<='.

A flexi-word simultaneously represents (Section 4):

* a **sequential query** ``exists t1..tn [t1 r1 t2 /\\ ... /\\ Psi]``;
* a **width-one monadic database** (unique up to renaming of constants);
* when every separator is '<', a **finite model** — a *word* whose letters
  are the label sets of the model's points.

This module provides the data type plus conversions; the order relation
between flexi-words (``p <= q`` iff ``q |= p``) lives in
:mod:`repro.flexiwords.subword`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Iterator, Sequence

from repro.core.atoms import Rel
from repro.core.errors import ParseError

Letter = frozenset[str]
Word = tuple[Letter, ...]


def letter(*preds: str) -> Letter:
    """A letter: a (possibly empty) set of predicate names."""
    return frozenset(preds)


@dataclass(frozen=True)
class FlexiWord:
    """An element of FW(Pred): letters joined by '<' / '<=' separators."""

    letters: tuple[Letter, ...]
    rels: tuple[Rel, ...]

    def __post_init__(self) -> None:
        if len(self.rels) != max(0, len(self.letters) - 1):
            raise ValueError(
                f"flexi-word needs {max(0, len(self.letters) - 1)} separators, "
                f"got {len(self.rels)}"
            )
        if any(r is Rel.NE for r in self.rels):
            raise ValueError("flexi-word separators must be '<' or '<='")

    # -- constructors -----------------------------------------------------

    @classmethod
    def empty(cls) -> "FlexiWord":
        """The empty flexi-word (the empty query / empty database)."""
        return cls((), ())

    @classmethod
    def word(cls, letters: Iterable[Iterable[str]]) -> "FlexiWord":
        """A *word*: all separators strict '<'."""
        letters = tuple(frozenset(a) for a in letters)
        return cls(letters, tuple(Rel.LT for _ in range(max(0, len(letters) - 1))))

    @classmethod
    def singleton(cls, preds: Iterable[str]) -> "FlexiWord":
        """A one-letter flexi-word."""
        return cls((frozenset(preds),), ())

    @classmethod
    def from_pairs(
        cls, first: Iterable[str], *pairs: tuple[Rel, Iterable[str]]
    ) -> "FlexiWord":
        """Build ``first r1 a1 r2 a2 ...`` from alternating (rel, letter) pairs."""
        letters = [frozenset(first)]
        rels = []
        for rel, preds in pairs:
            rels.append(rel)
            letters.append(frozenset(preds))
        return cls(tuple(letters), tuple(rels))

    @classmethod
    def parse(cls, text: str) -> "FlexiWord":
        """Parse e.g. ``"{P,Q} < {P} <= {R}"`` (empty letter: ``{}``)."""
        text = text.strip()
        if not text:
            return cls.empty()
        tokens: list[str] = []
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
            elif ch == "{":
                j = text.find("}", i)
                if j < 0:
                    raise ParseError(f"unclosed letter in flexi-word: {text!r}")
                tokens.append(text[i : j + 1])
                i = j + 1
            elif text.startswith("<=", i):
                tokens.append("<=")
                i += 2
            elif ch == "<":
                tokens.append("<")
                i += 1
            else:
                raise ParseError(f"unexpected character {ch!r} in flexi-word")
        letters: list[Letter] = []
        rels: list[Rel] = []
        expect_letter = True
        for tok in tokens:
            if expect_letter:
                if not tok.startswith("{"):
                    raise ParseError(f"expected a letter, got {tok!r}")
                inner = tok[1:-1].strip()
                letters.append(
                    frozenset(p.strip() for p in inner.split(",") if p.strip())
                )
            else:
                rels.append(Rel.LT if tok == "<" else Rel.LE)
            expect_letter = not expect_letter
        if expect_letter:
            raise ParseError("flexi-word must end with a letter")
        return cls(tuple(letters), tuple(rels))

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.letters)

    def __bool__(self) -> bool:
        return bool(self.letters)

    def __str__(self) -> str:
        if not self.letters:
            return "(empty)"
        parts = ["{" + ",".join(sorted(self.letters[0])) + "}"]
        for rel, a in zip(self.rels, self.letters[1:]):
            parts.append(str(rel))
            parts.append("{" + ",".join(sorted(a)) + "}")
        return " ".join(parts)

    @property
    def is_word(self) -> bool:
        """True when every separator is strict '<'."""
        return all(r is Rel.LT for r in self.rels)

    @property
    def predicates(self) -> frozenset[str]:
        """All predicate names occurring in the letters."""
        out: set[str] = set()
        for a in self.letters:
            out |= a
        return frozenset(out)

    def size(self) -> int:
        """Total number of atoms represented (labels plus separators)."""
        return sum(len(a) for a in self.letters) + len(self.rels)

    # -- slicing ---------------------------------------------------------------

    def suffix(self, start: int) -> "FlexiWord":
        """The flexi-word from letter index ``start`` on."""
        if start <= 0:
            return self
        return FlexiWord(self.letters[start:], self.rels[start:])

    def prefix(self, end: int) -> "FlexiWord":
        """The first ``end`` letters."""
        if end >= len(self.letters):
            return self
        return FlexiWord(self.letters[:end], self.rels[: max(0, end - 1)])

    def concat(self, rel: Rel, other: "FlexiWord") -> "FlexiWord":
        """``self rel other`` (either side empty returns the other)."""
        if not self.letters:
            return other
        if not other.letters:
            return self
        return FlexiWord(
            self.letters + other.letters, self.rels + (rel,) + other.rels
        )

    # -- semantics ---------------------------------------------------------------

    def models(self) -> Iterator[Word]:
        """All minimal models of this flexi-word viewed as a database.

        A width-one database's minimal models merge maximal runs of letters
        joined by '<='-separators that the model chooses to identify; a '<'
        separator always forces a new point.  Each model is a *word*
        (tuple of letters, implicitly strictly increasing).
        """
        if not self.letters:
            yield ()
            return
        le_positions = [i for i, r in enumerate(self.rels) if r is Rel.LE]
        for choice in product((False, True), repeat=len(le_positions)):
            merge = {pos: c for pos, c in zip(le_positions, choice)}
            blocks: list[set[str]] = [set(self.letters[0])]
            for i, a in enumerate(self.letters[1:]):
                if merge.get(i, False):
                    blocks[-1] |= a
                else:
                    blocks.append(set(a))
            yield tuple(frozenset(b) for b in blocks)

    def strictest_model(self) -> Word:
        """The model that merges nothing (every letter its own point)."""
        return tuple(self.letters)


def all_words(predicates: Sequence[str], length: int) -> Iterator[FlexiWord]:
    """All words of ``length`` letters over subsets of ``predicates``.

    Used by exhaustive tests and by the wqo basis search.  The number of
    words is ``(2^|predicates|)^length`` — keep parameters tiny.
    """
    subsets = [
        frozenset(p for p, bit in zip(predicates, bits) if bit)
        for bits in product((0, 1), repeat=len(predicates))
    ]
    for combo in product(subsets, repeat=length):
        yield FlexiWord.word(combo)
