"""The subword relation and the flexi-word quasi-order (Sections 4 and 6).

Two related comparisons live here:

* :func:`is_subword` — Proposition 4.5: for *words* ``p``, ``q`` (strict
  separators only), ``q |= p`` iff ``p`` is a subword of ``q``, where
  ``p = a1...an`` is a subword of ``q = b1...bm`` iff there are indices
  ``i1 < ... < in`` with ``aj`` a subset of ``b_{ij}`` for all j.

* :func:`flexi_entails` — the general case ``q |= p`` for flexi-words,
  decided by a specialization of the SEQ algorithm (Fig. 6) to width-one
  databases.  This gives the quasi-order of Section 6:
  ``p <= q  iff  q |= p`` (:func:`flexi_le`), which Lemma 6.3 proves to be
  a well-quasi-order.

The width-one specialization here is written independently from the general
SEQ implementation in :mod:`repro.algorithms.seq`; the two are
cross-validated in the test suite.
"""

from __future__ import annotations

from repro.core.atoms import Rel
from repro.flexiwords.flexiword import FlexiWord, Word


def is_subword(p: Word | FlexiWord, q: Word | FlexiWord) -> bool:
    """Is ``p`` a subword of ``q`` (letters compared by set containment)?

    Both arguments must be *words* (all separators '<') when given as
    flexi-words.  Greedy matching is complete for the subword relation.
    """
    p_letters = _word_letters(p)
    q_letters = _word_letters(q)
    i = 0
    for b in q_letters:
        if i < len(p_letters) and p_letters[i] <= b:
            i += 1
    return i == len(p_letters)


def _word_letters(w: Word | FlexiWord) -> tuple[frozenset[str], ...]:
    if isinstance(w, FlexiWord):
        if not w.is_word:
            raise ValueError("subword relation requires words ('<' separators)")
        return w.letters
    return tuple(frozenset(a) for a in w)


def flexi_entails(q: FlexiWord, p: FlexiWord) -> bool:
    """Does the width-one database ``q`` entail the sequential query ``p``?

    Implements the three cases of Lemma 4.2 specialized to width one:

    * Case I — the (unique) minimal vertex of ``q`` does not support the
      first letter of ``p``: drop it and continue;
    * Case II — it does and the next separator of ``p`` is '<': drop the
      *minor* prefix of ``q`` (its maximal '<='-connected initial run) and
      advance ``p``;
    * Case III — it does and the next separator is '<=': advance ``p``
      keeping ``q``.

    ``p`` exhausted means entailed; ``q`` exhausted first means not.
    """
    qi = 0  # index of the current minimal letter of q
    pj = 0  # index of the next letter of p to satisfy
    n, m = len(q.letters), len(p.letters)
    while True:
        if pj >= m:
            return True
        if qi >= n:
            return False
        a = p.letters[pj]
        if not a <= q.letters[qi]:
            qi += 1  # Case I: remove the offending minimal vertex
            continue
        if pj == m - 1:
            return True
        if p.rels[pj] is Rel.LT:
            # Case II: delete the minor prefix (letters joined by '<=')
            while qi < n - 1 and q.rels[qi] is Rel.LE:
                qi += 1
            qi += 1
            pj += 1
        else:
            # Case III
            pj += 1


def flexi_le(p: FlexiWord, q: FlexiWord) -> bool:
    """The Section 6 quasi-order: ``p <= q`` iff ``q |= p``."""
    return flexi_entails(q, p)


def flexi_equiv(p: FlexiWord, q: FlexiWord) -> bool:
    """Equivalence under the quasi-order (mutual entailment)."""
    return flexi_le(p, q) and flexi_le(q, p)


def word_model_satisfies(word: Word, p: FlexiWord) -> bool:
    """Does the finite model ``word`` satisfy the sequential query ``p``?

    A finite model is a word; satisfaction of a sequential query in a model
    equals entailment by the corresponding width-one database, except that
    '<='-separated query letters may land on the same point.  Decided by a
    greedy earliest-match scan.
    """
    return flexi_entails(FlexiWord.word(word), p)
