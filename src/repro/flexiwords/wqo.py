"""Well-quasi-order machinery for Section 6.

Section 6 proves PTIME data complexity of disjunctive monadic queries
*nonconstructively*: the quasi-order ``p <= q iff q |= p`` well-quasi-orders
flexi-words (Lemma 6.3, a Higman-style argument); lifting to finite sets
of paths gives a wqo on monadic databases (``D1 <= D2`` iff every path of
``D1`` is dominated by one of ``D2``); entailment is upward-closed in this
order (Lemma 6.4); hence for each query the set ``S(Phi)`` of entailing
databases has a *finite basis*, and membership reduces to finitely many
linear-time dominance checks (Theorem 6.5).

Implemented here:

* the database dominance order :func:`dominates` and the Lemma 6.4
  monotonicity (tested);
* wqo diagnostics — :func:`find_dominating_pair`, :func:`is_wqo_antichain`
  — used by the property tests to confirm "no bad sequence" empirically;
* the **conjunctive basis** (end of Section 6): for conjunctive ``Phi``
  the basis is the single database ``D_Phi`` with the query's own labelled
  graph, giving the basis-driven evaluator :func:`entails_via_basis`;
* the **constructive word-database basis** (the paper's footnote 5 reports
  a basis algorithm for ``[<]``-databases; details were left unpublished —
  this module supplies one): for word databases the unique minimal model
  of ``w`` is ``w`` itself, so ``S(Phi)``'s word part is the upward
  closure (under the subword order) of the *minimal words satisfying
  Phi*, which are minimal common superwords of some disjunct's path set —
  a finite, computable set (:func:`word_basis`).  Evaluation over word
  databases then is a handful of subword tests
  (:func:`word_entails_via_basis`).
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

from repro.core.database import LabeledDag
from repro.core.query import ConjunctiveQuery, Query, as_dnf
from repro.flexiwords.flexiword import FlexiWord, Letter, Word
from repro.flexiwords.subword import flexi_entails, flexi_le, is_subword


def paths_dominated(
    paths1: Iterable[FlexiWord], paths2: Sequence[FlexiWord]
) -> bool:
    """The finite-set lift: every path of the first set dominated in the second."""
    return all(any(flexi_le(p, q) for q in paths2) for p in paths1)


def dominates(d1: LabeledDag, d2: LabeledDag) -> bool:
    """The Section 6 order on monadic databases: ``d1 <= d2``.

    ``Paths(d1) <= Paths(d2)`` in the finite-set lift of the flexi-word
    order.  By Lemma 6.4, ``d1 |= Phi`` and ``d1 <= d2`` imply
    ``d2 |= Phi``.
    """
    paths2 = d2.normalized().paths()
    return paths_dominated(d1.normalized().iter_paths(), paths2)


def find_dominating_pair(
    sequence: Sequence[FlexiWord],
) -> tuple[int, int] | None:
    """Indices ``i < j`` with ``sequence[i] <= sequence[j]``, or None.

    A wqo admits no infinite sequence without such a pair ("no bad
    sequences"); the property tests sample long random sequences and
    confirm a pair always appears well before the Higman bound.
    """
    for j in range(len(sequence)):
        for i in range(j):
            if flexi_le(sequence[i], sequence[j]):
                return (i, j)
    return None


def is_wqo_antichain(words: Sequence[FlexiWord]) -> bool:
    """Are the flexi-words pairwise incomparable in the Section 6 order?"""
    for i, p in enumerate(words):
        for j, q in enumerate(words):
            if i != j and flexi_le(p, q):
                return False
    return True


# -- conjunctive basis (end of Section 6) -------------------------------------


def conjunctive_basis(query: ConjunctiveQuery) -> LabeledDag:
    """The unique minimal element ``D_Phi`` of ``S(Phi)`` for conjunctive Phi.

    ``D_Phi`` is the database with the same labelled graph as the query;
    ``D |= Phi`` iff ``D_Phi <= D`` (Lemmas 4.1 + 4.2 rephrased).
    """
    normalized = query.normalized()
    if normalized is None:
        raise ValueError("inconsistent query has empty S(Phi) — no basis")
    return normalized.monadic_dag()


def entails_via_basis(dag: LabeledDag, query: ConjunctiveQuery) -> bool:
    """Basis-driven evaluation: ``D_Phi <= D``."""
    return dominates(conjunctive_basis(query), dag)


# -- constructive basis over word databases ------------------------------------


def _letter_reductions(word: Word, position: int) -> Iterable[Word]:
    """Words obtained by weakening ``word`` at ``position`` one step."""
    letter = word[position]
    # drop the whole position
    yield word[:position] + word[position + 1 :]
    # drop one predicate from the letter
    for p in sorted(letter):
        yield word[:position] + (letter - {p},) + word[position + 1 :]


def _word_satisfies_paths(word: Word, paths: Sequence[FlexiWord]) -> bool:
    return all(flexi_entails(FlexiWord.word(word), p) for p in paths)


def minimal_superwords(paths: Sequence[FlexiWord]) -> set[Word]:
    """Minimal words (in the subword order) embedding every given path.

    Search: grow candidate words letter-by-letter, each new letter a union
    of some nonempty subset of the patterns' pending next letters (any
    other letter could be weakened away), then post-filter to the words
    with no satisfying one-step reduction.  Paths may be flexi-words; a
    '<='-separated element may share a letter with its predecessor, which
    the pending-frontier bookkeeping handles by allowing multi-advance
    within one new letter.
    """
    if not paths:
        return {()}

    results: set[Word] = set()
    seen: set[tuple[Word, tuple[int, ...]]] = set()

    def advance(state: tuple[int, ...], letter: Letter) -> tuple[int, ...]:
        """Greedy multi-advance of each pattern against a new letter."""
        out = []
        for idx, path in zip(state, paths):
            i = idx
            # within one letter, a '<='-run of the pattern can all land here
            while i < len(path.letters) and path.letters[i] <= letter:
                nxt = i + 1
                if nxt < len(path.letters) and path.rels[i].value == "<=":
                    i = nxt
                else:
                    i = nxt
                    break
            out.append(i)
        return tuple(out)

    def contributions(path: FlexiWord, idx: int) -> list[Letter]:
        """What ``path`` could consume from one new word letter.

        From pending position ``idx`` the pattern can match the letters of
        the '<='-run starting there (one, two, ... letters all landing on
        the same word position), so the possible contributions are the
        cumulative unions along the run.
        """
        out: list[Letter] = []
        union: frozenset[str] = frozenset()
        i = idx
        while i < len(path.letters):
            union = union | path.letters[i]
            out.append(union)
            if i < len(path.rels) and path.rels[i].value == "<=":
                i += 1
            else:
                break
        return out

    def candidate_letters(state: tuple[int, ...]) -> set[Letter]:
        options: list[list[Letter | None]] = []
        for idx, path in zip(state, paths):
            opts: list[Letter | None] = [None]
            if idx < len(path.letters):
                opts.extend(contributions(path, idx))
            options.append(opts)
        letters: set[Letter] = set()
        for combo in product(*options):
            chosen = [c for c in combo if c is not None]
            if not chosen:
                continue
            union: frozenset[str] = frozenset()
            for c in chosen:
                union |= c
            letters.add(union)
        return letters

    bound = sum(len(p.letters) for p in paths)

    def search(word: Word, state: tuple[int, ...]) -> None:
        if all(idx >= len(p.letters) for idx, p in zip(state, paths)):
            if _word_satisfies_paths(word, paths):
                results.add(word)
            return
        if len(word) >= bound:
            return
        key = (word, state)
        if key in seen:
            return
        seen.add(key)
        for letter in sorted(candidate_letters(state), key=sorted):
            search(word + (letter,), advance(state, letter))

    search((), tuple(0 for _ in paths))

    # post-filter: keep only words with no satisfying one-step reduction
    minimal: set[Word] = set()
    for w in results:
        reducible = False
        for pos in range(len(w)):
            for reduced in _letter_reductions(w, pos):
                if _word_satisfies_paths(reduced, paths):
                    reducible = True
                    break
            if reducible:
                break
        if not reducible:
            minimal.add(w)
    return minimal


def word_basis(query: Query) -> set[Word]:
    """A finite basis of ``S(Phi)``'s word-database part.

    The union over disjuncts of the minimal superwords of the disjunct's
    path set, minimized across disjuncts.  A word database ``w`` entails
    ``Phi`` iff some basis word is a subword of ``w``.
    """
    dnf = as_dnf(query).normalized()
    candidates: set[Word] = set()
    for d in dnf.disjuncts:
        candidates |= minimal_superwords(d.paths())
    basis: set[Word] = set()
    for w in candidates:
        if not any(
            other != w and is_subword(other, w) for other in candidates
        ):
            basis.add(w)
    return basis


def word_entails_via_basis(word: Word, basis: set[Word]) -> bool:
    """Theorem 6.5 run constructively on a word database.

    Each test is linear in ``len(word)`` — the promised linear-time data
    complexity, with the query folded into the (possibly large) basis.
    """
    return any(is_subword(b, word) for b in basis)
