"""Databases and queries containing inequality ``!=`` (Section 7).

The paper's observation: ``u != v`` can be eliminated by replacing it with
the disjunction ``u < v  v  v < u``.  For *queries* this multiplies the
number of disjuncts by two per '!=' atom but keeps entailment intact; for
*databases* it splits the database into exponentially many '!='-free
databases, all of which must entail the query.  Both expansions are
implemented here, together with a direct entailment wrapper.  (Section 7
shows the blowup is unavoidable in general: with '!=' the PTIME cases
collapse — see :mod:`repro.reductions.coloring` for the 3-colorability
reductions behind Theorem 7.1.)

The width of a ``[<, <=, !=]``-database is, per the paper's convention,
the width of the ``[<, <=]``-database obtained by deleting the '!=' atoms
(:class:`repro.core.ordergraph.OrderGraph` already ignores them).
"""

from __future__ import annotations

from itertools import product

from repro.core.atoms import OrderAtom, Rel
from repro.core.database import IndefiniteDatabase
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery, Query, as_dnf


def expand_conjunct_neq(cq: ConjunctiveQuery) -> list[ConjunctiveQuery]:
    """Replace each ``u != v`` by one of ``u < v`` / ``v < u`` in all ways."""
    neq_atoms = [a for a in cq.order_atoms if a.rel is Rel.NE]
    if not neq_atoms:
        return [cq]
    base = [a for a in cq.atoms if not (isinstance(a, OrderAtom) and a.rel is Rel.NE)]
    out: list[ConjunctiveQuery] = []
    for choice in product((False, True), repeat=len(neq_atoms)):
        atoms = list(base)
        for flip, atom in zip(choice, neq_atoms):
            if flip:
                atoms.append(OrderAtom(atom.right, Rel.LT, atom.left))
            else:
                atoms.append(OrderAtom(atom.left, Rel.LT, atom.right))
        out.append(ConjunctiveQuery.from_atoms(atoms, cq.extra_order_vars))
    return out


def expand_query_neq(query: Query) -> DisjunctiveQuery:
    """Eliminate '!=' from a query by DNF expansion.

    The number of disjuncts grows by a factor of ``2^m`` where ``m`` is the
    per-disjunct count of '!=' atoms — exponential in the query, which is
    acceptable under data complexity (the query is fixed) and is exactly
    the blowup the paper warns about for combined complexity.
    """
    dnf = as_dnf(query)
    disjuncts: list[ConjunctiveQuery] = []
    for d in dnf.disjuncts:
        disjuncts.extend(expand_conjunct_neq(d))
    return DisjunctiveQuery(tuple(disjuncts))


def expand_database_neq(db: IndefiniteDatabase) -> list[IndefiniteDatabase]:
    """Split a '!='-database into '!='-free databases covering all models.

    Every model of ``db`` is a model of (at least) one expansion, and every
    model of an expansion is a model of ``db``; hence ``db |= phi`` iff all
    expansions entail ``phi``.  Inconsistent expansions are dropped.
    """
    neq_atoms = sorted(a for a in db.order_atoms if a.rel is Rel.NE)
    base = frozenset(a for a in db.order_atoms if a.rel is not Rel.NE)
    if not neq_atoms:
        return [db]
    out: list[IndefiniteDatabase] = []
    for choice in product((False, True), repeat=len(neq_atoms)):
        atoms = set(base)
        for flip, atom in zip(choice, neq_atoms):
            if flip:
                atoms.add(OrderAtom(atom.right, Rel.LT, atom.left))
            else:
                atoms.add(OrderAtom(atom.left, Rel.LT, atom.right))
        candidate = IndefiniteDatabase(db.proper_atoms, frozenset(atoms))
        if candidate.is_consistent():
            out.append(candidate)
    return out


def entails_with_neq(db: IndefiniteDatabase, query: Query, **kwargs) -> bool:
    """Entailment for '!='-databases via the expansion reduction.

    ``db |= phi`` iff every '!='-free expansion entails ``phi``.  Keyword
    arguments are forwarded to :func:`repro.core.entailment.entails`, so
    the monadic fast paths apply to each expansion.
    """
    from repro.core.entailment import entails

    return all(entails(d, query, **kwargs) for d in expand_database_neq(db))
