"""Allen's interval algebra, encoded into the point algebra.

The introduction of the paper situates indefinite order databases against
Allen's 13 primitive interval relations and the point-based remedy of
Vilain, Kautz & van Beek.  This module provides that substrate: each of
the 13 relations between intervals ``I = [I-, I+]`` and ``J = [J-, J+]``
is a conjunction of point-algebra constraints over the four endpoints, so
interval networks translate to :class:`repro.pointalgebra.pa.PointNetwork`
instances — and, when the constraints stay within ``< / <= / !=``, to
indefinite order databases whose entailed queries our algorithms answer.

Relation names follow Allen: ``before, meets, overlaps, starts, during,
finishes`` plus ``equal`` and the six converses (suffix ``_i``).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.atoms import OrderAtom, lt, le
from repro.core.sorts import ordc
from repro.pointalgebra.pa import (
    ANY,
    EQ,
    GE,
    GT,
    LE,
    LT,
    PARelation,
    PointNetwork,
)

#: endpoint constraints per Allen relation, as PA relations on the pairs
#: (I-, J-), (I-, J+), (I+, J-), (I+, J+).
_ALLEN: dict[str, tuple[PARelation, PARelation, PARelation, PARelation]] = {
    "before": (LT, LT, LT, LT),
    "meets": (LT, LT, EQ, LT),
    "overlaps": (LT, LT, GT, LT),
    "starts": (EQ, LT, GT, LT),
    "during": (GT, LT, GT, LT),
    "finishes": (GT, LT, GT, EQ),
    "equal": (EQ, LT, GT, EQ),
}


def allen_relations() -> list[str]:
    """All 13 relation names."""
    return sorted(_ALLEN) + sorted(f"{r}_i" for r in _ALLEN if r != "equal")


def endpoint_constraints(
    relation: str, i_name: str, j_name: str
) -> list[tuple[str, str, PARelation]]:
    """The endpoint constraints of ``I relation J``.

    Interval ``X`` has endpoints ``X-`` named ``X.lo`` and ``X+`` named
    ``X.hi``; the constraint ``lo < hi`` for each interval is included.
    """
    if relation.endswith("_i"):
        base = relation[:-2]
        return endpoint_constraints(base, j_name, i_name)
    if relation not in _ALLEN:
        raise ValueError(f"unknown Allen relation {relation!r}")
    c = _ALLEN[relation]
    ilo, ihi = f"{i_name}.lo", f"{i_name}.hi"
    jlo, jhi = f"{j_name}.lo", f"{j_name}.hi"
    return [
        (ilo, ihi, LT),
        (jlo, jhi, LT),
        (ilo, jlo, c[0]),
        (ilo, jhi, c[1]),
        (ihi, jlo, c[2]),
        (ihi, jhi, c[3]),
    ]


class IntervalNetwork:
    """A network of intervals constrained by disjunctions of Allen relations."""

    def __init__(self) -> None:
        self._constraints: list[tuple[str, frozenset[str], str]] = []
        self._intervals: set[str] = set()

    def constrain(self, i: str, relations: Iterable[str], j: str) -> None:
        """Assert ``i (r1 | r2 | ...) j``."""
        rels = frozenset(relations)
        unknown = rels - set(allen_relations())
        if unknown:
            raise ValueError(f"unknown Allen relations: {sorted(unknown)}")
        self._intervals.add(i)
        self._intervals.add(j)
        self._constraints.append((i, rels, j))

    def to_point_network(self) -> PointNetwork:
        """The endpoint PA network (disjunctions become PA unions).

        A disjunction of Allen relations projects to the pointwise union
        of the endpoint constraints — this is the (incomplete but sound)
        point-based approximation of Vilain-Kautz-van Beek that the paper
        cites; exact reasoning over full Allen disjunctions is NP-hard.
        """
        net = PointNetwork()
        for interval in sorted(self._intervals):
            net.constrain(f"{interval}.lo", f"{interval}.hi", LT)
        for i, rels, j in self._constraints:
            merged: dict[tuple[str, str], PARelation] = {}
            for r in rels:
                for u, v, pa in endpoint_constraints(r, i, j):
                    key = (u, v)
                    merged[key] = merged.get(key, frozenset()) | pa
            for (u, v), pa in merged.items():
                net.constrain(u, v, pa)
        return net

    def consistent_approximation(self) -> bool:
        """Point-based consistency (sound: False means truly inconsistent)."""
        return self.to_point_network().is_consistent()


def interval_database_atoms(
    facts: Iterable[tuple[str, str, str]]
) -> list[OrderAtom]:
    """Order atoms for *definite* Allen facts usable in a database.

    Each fact ``(i, relation, j)`` contributes its endpoint constraints;
    only '<' / '<=' / '=' projections are representable (equalities become
    a pair of '<=' atoms).  Raises on relations needing '>' (use the
    converse fact instead) — keeps the output a legal ``[<, <=]``-database.
    """
    atoms: list[OrderAtom] = []
    for i, relation, j in facts:
        for u, v, pa in endpoint_constraints(relation, i, j):
            if pa == LT:
                atoms.append(lt(ordc(u), ordc(v)))
            elif pa == EQ:
                atoms.append(le(ordc(u), ordc(v)))
                atoms.append(le(ordc(v), ordc(u)))
            elif pa == GT:
                atoms.append(lt(ordc(v), ordc(u)))
            elif pa == LE:
                atoms.append(le(ordc(u), ordc(v)))
            elif pa == GE:
                atoms.append(le(ordc(v), ordc(u)))
            elif pa == ANY:
                continue
            else:
                raise ValueError(f"unrepresentable endpoint relation {set(pa)}")
    return atoms
