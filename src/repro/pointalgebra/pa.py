"""The point algebra: qualitative relations over linearly ordered points.

The related-work substrate the paper positions itself against (Vilain,
Kautz & van Beek; Ullman §14.2; van Beek & Cohen): constraints between
points are subsets of ``{<, =, >}`` ("u is before, equal to, or after v"),
closed under converse, intersection, and composition.  Deriving the
strongest implied relation between two points — e.g. to decide whether a
``[<, <=, !=]``-constraint set is consistent, or to compute the order
atoms entailed by a database (the *full closure* of Section 2 extended
with '!=') — is polynomial time via the path-consistency algorithm
implemented here.

Relations are frozensets over the characters ``'<' '=' '>'``::

    LT  = {'<'}          (the atom u < v)
    LE  = {'<', '='}     (u <= v)
    NE  = {'<', '>'}     (u != v)
    ANY = {'<', '=', '>'}
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Hashable, Iterable

from repro.core.atoms import OrderAtom, Rel

PARelation = frozenset[str]

LT: PARelation = frozenset("<")
GT: PARelation = frozenset(">")
EQ: PARelation = frozenset("=")
LE: PARelation = frozenset("<=")
GE: PARelation = frozenset(">=")
NE: PARelation = frozenset("<>")
ANY: PARelation = frozenset("<=>")
EMPTY: PARelation = frozenset()

_BASE_COMPOSE: dict[tuple[str, str], PARelation] = {
    ("<", "<"): LT,
    ("<", "="): LT,
    ("<", ">"): ANY,
    ("=", "<"): LT,
    ("=", "="): EQ,
    ("=", ">"): GT,
    (">", "<"): ANY,
    (">", "="): GT,
    (">", ">"): GT,
}


def compose(r1: PARelation, r2: PARelation) -> PARelation:
    """Relation composition: possible relations of (u, w) given (u, v), (v, w)."""
    out: set[str] = set()
    for a, b in iter_product(r1, r2):
        out |= _BASE_COMPOSE[(a, b)]
    return frozenset(out)


def converse(r: PARelation) -> PARelation:
    """The converse relation (swap < and >)."""
    swap = {"<": ">", ">": "<", "=": "="}
    return frozenset(swap[c] for c in r)


def from_rel(rel: Rel) -> PARelation:
    """The PA relation of an order-atom relation symbol."""
    if rel is Rel.LT:
        return LT
    if rel is Rel.LE:
        return LE
    return NE


def to_order_rel(r: PARelation) -> Rel | None:
    """The strongest order-atom relation expressing ``r``, if any."""
    if r == LT:
        return Rel.LT
    if r in (LE, EQ):
        return Rel.LE  # EQ is expressed as both u <= v and v <= u
    if r == NE:
        return Rel.NE
    return None


class PointNetwork:
    """A binary constraint network over points with PA relations."""

    def __init__(self, points: Iterable[Hashable] = ()) -> None:
        self._points: list[Hashable] = []
        self._index: dict[Hashable, int] = {}
        self._constraints: dict[tuple[int, int], PARelation] = {}
        for p in points:
            self.add_point(p)

    def add_point(self, p: Hashable) -> None:
        """Register a point (idempotent)."""
        if p not in self._index:
            self._index[p] = len(self._points)
            self._points.append(p)

    @property
    def points(self) -> list[Hashable]:
        """The registered points, in insertion order."""
        return list(self._points)

    def constrain(self, u: Hashable, v: Hashable, relation: PARelation) -> None:
        """Intersect the (u, v) constraint with ``relation``."""
        self.add_point(u)
        self.add_point(v)
        i, j = self._index[u], self._index[v]
        if i == j:
            if "=" not in relation:
                self._constraints[(i, i)] = EMPTY
            return
        key = (min(i, j), max(i, j))
        rel = relation if i < j else converse(relation)
        current = self._constraints.get(key, ANY)
        self._constraints[key] = current & rel

    def relation(self, u: Hashable, v: Hashable) -> PARelation:
        """The current constraint between u and v (ANY if none)."""
        i, j = self._index[u], self._index[v]
        if i == j:
            return self._constraints.get((i, i), EQ)
        key = (min(i, j), max(i, j))
        rel = self._constraints.get(key, ANY)
        return rel if i < j else converse(rel)

    def add_atom(self, atom: OrderAtom) -> None:
        """Add an order atom as a constraint."""
        self.constrain(atom.left.name, atom.right.name, from_rel(atom.rel))

    def path_consistency(self) -> bool:
        """Enforce path consistency (van Beek); False iff inconsistent.

        Repeatedly tightens ``R(i, k)`` by ``R(i, j) o R(j, k)`` until a
        fixpoint.  For the point algebra, path consistency decides
        consistency (the algebra is a subclass for which PC is complete
        except for pathological ``!=``-only cases handled by the
        completion in :meth:`is_consistent`).
        """
        n = len(self._points)
        matrix = [[ANY] * n for _ in range(n)]
        for i in range(n):
            matrix[i][i] = self._constraints.get((i, i), EQ)
        for (i, j), rel in self._constraints.items():
            if i != j:
                matrix[i][j] = rel
                matrix[j][i] = converse(rel)
        changed = True
        while changed:
            changed = False
            for i in range(n):
                for j in range(n):
                    for k in range(n):
                        composed = compose(matrix[i][k], matrix[k][j])
                        tightened = matrix[i][j] & composed
                        if tightened != matrix[i][j]:
                            matrix[i][j] = tightened
                            changed = True
        self._matrix = matrix
        for i in range(n):
            if not matrix[i][i] or "=" not in matrix[i][i]:
                return False
            for j in range(n):
                if not matrix[i][j]:
                    return False
        return True

    def minimal_relation(self, u: Hashable, v: Hashable) -> PARelation:
        """The path-consistent (tightened) relation between two points.

        Call :meth:`path_consistency` first; raises otherwise.
        """
        if not hasattr(self, "_matrix"):
            raise RuntimeError("run path_consistency() first")
        return self._matrix[self._index[u]][self._index[v]]

    def is_consistent(self) -> bool:
        """Exact consistency for PA networks including '!='.

        Path consistency is complete for the convex point algebra
        ``{<, <=, =}``; with '!=' it can miss inconsistencies in rare
        configurations, so after PC this verifies satisfiability by
        searching for a concrete assignment on small networks (<= 8
        points) and otherwise trusts PC plus the standard
        '=-contraction' check (van Beek's algorithm).
        """
        if not self.path_consistency():
            return False
        n = len(self._points)
        if n <= 8:
            return self._assignment_exists()
        return self._contraction_check()

    def _assignment_exists(self) -> bool:
        n = len(self._points)
        # Points take integer values 0..n-1 (enough for n points).
        values = [0] * n

        def ok(i: int) -> bool:
            for j in range(i):
                rel = self._matrix[i][j]
                cmp = (
                    "<" if values[i] < values[j] else
                    "=" if values[i] == values[j] else ">"
                )
                if cmp not in rel:
                    return False
            return True

        def assign(i: int) -> bool:
            if i == n:
                return True
            for v in range(n):
                values[i] = v
                if ok(i) and assign(i + 1):
                    return True
            return False

        return assign(0)

    def _contraction_check(self) -> bool:
        """Contract forced-equal classes, then look for a '!=' clash."""
        n = len(self._points)
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i in range(n):
            for j in range(i + 1, n):
                if self._matrix[i][j] == EQ:
                    parent[find(i)] = find(j)
        for i in range(n):
            for j in range(n):
                if find(i) == find(j) and "=" not in self._matrix[i][j]:
                    return False
        return True


def entailed_relation(
    atoms: Iterable[OrderAtom], u: str, v: str
) -> PARelation:
    """The strongest PA relation between ``u`` and ``v`` entailed by atoms.

    Computed as the path-consistent minimal relation, which for the point
    algebra coincides with the entailed ("deducible") relation on
    consistent networks (van Beek & Cohen) for the convex fragment; with
    '!=' present the PC relation is an upper bound on the entailed one.
    """
    net = PointNetwork()
    net.add_point(u)
    net.add_point(v)
    for atom in atoms:
        net.add_atom(atom)
    if not net.path_consistency():
        return EMPTY
    return net.minimal_relation(u, v)
