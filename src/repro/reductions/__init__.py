"""Subpackage of the repro library."""
