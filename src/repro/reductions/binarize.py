"""Signature reductions: indexed families and high arities eliminated.

Two transformations the paper sketches after Theorem 3.3 to show its
lower bound needs only a *fixed, finite set of binary predicates*:

1. :func:`eliminate_indexed_family` — an indexed predicate family
   ``P_0, P_1, ...`` is replaced by three fixed predicates using chain
   encoding: the fact ``P_i(u, v)`` becomes
   ``P(u, v, c_0), R(c_0, c_1), ..., R(c_{i-1}, c_i), Q(c_i)`` over fresh
   chain constants, and each query occurrence of ``P_i`` becomes the
   corresponding chain pattern with fresh variables.  A chain pattern of
   length ``i`` matches exactly the chains of length ``i`` (the ``Q``
   endpoint pins the length).

2. :func:`reify` — the classical reduction of n-ary predicates to binary:
   each fact ``P(a_1, ..., a_n)`` with ``n >= 3`` becomes a fresh object
   ``e`` with binary facts ``P.arg1(e, a_1), ..., P.argn(e, a_n)``; query
   atoms become the same pattern over a fresh existential ``e`` variable.
   Distinct facts get distinct reification constants, so a query match
   binds all positions of one original fact.

Composing the two turns the Theorem 3.3 instance into one over a fixed
binary signature while preserving entailment — verified in the tests.
"""

from __future__ import annotations

import re

from repro.core.atoms import Atom, ProperAtom
from repro.core.database import IndefiniteDatabase
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery, Query, as_dnf
from repro.core.sorts import Term, obj, objvar

_INDEXED = re.compile(r"^([A-Za-z]+?)(\d+)$")


def eliminate_indexed_family(
    db: IndefiniteDatabase,
    query: Query,
    family: str,
    chain_pred: str = "Rchain",
    end_pred: str = "Qend",
) -> tuple[IndefiniteDatabase, DisjunctiveQuery]:
    """Replace ``family0, family1, ...`` predicates by chain encoding.

    Every predicate named ``<family><i>`` of arity ``k`` becomes the fixed
    predicate ``<family>`` of arity ``k + 1`` whose extra argument anchors
    a length-``i`` ``chain_pred`` chain ending in ``end_pred``.
    """
    counter = [0]

    def fresh_const() -> Term:
        counter[0] += 1
        return obj(f"_ch{counter[0]}")

    new_db_atoms: list[Atom] = []
    for atom in db.atoms():
        index = _family_index(atom, family)
        if index is None:
            new_db_atoms.append(atom)
            continue
        chain = [fresh_const() for _ in range(index + 1)]
        new_db_atoms.append(ProperAtom(family, atom.args + (chain[0],)))
        for a, b in zip(chain, chain[1:]):
            new_db_atoms.append(ProperAtom(chain_pred, (a, b)))
        new_db_atoms.append(ProperAtom(end_pred, (chain[-1],)))
    new_db = IndefiniteDatabase.from_atoms(new_db_atoms)

    var_counter = [0]

    def fresh_var() -> Term:
        var_counter[0] += 1
        return objvar(f"_chv{var_counter[0]}")

    new_disjuncts = []
    for d in as_dnf(query).disjuncts:
        atoms: list[Atom] = []
        for atom in d.atoms:
            index = _family_index(atom, family)
            if index is None:
                atoms.append(atom)
                continue
            chain = [fresh_var() for _ in range(index + 1)]
            atoms.append(ProperAtom(family, atom.args + (chain[0],)))
            for a, b in zip(chain, chain[1:]):
                atoms.append(ProperAtom(chain_pred, (a, b)))
            atoms.append(ProperAtom(end_pred, (chain[-1],)))
        new_disjuncts.append(
            ConjunctiveQuery.from_atoms(atoms, d.extra_order_vars)
        )
    return new_db, DisjunctiveQuery(tuple(new_disjuncts))


def _family_index(atom: Atom, family: str) -> int | None:
    if not isinstance(atom, ProperAtom):
        return None
    match = _INDEXED.match(atom.pred)
    if match and match.group(1) == family:
        return int(match.group(2))
    return None


def reify(
    db: IndefiniteDatabase, query: Query, min_arity: int = 3
) -> tuple[IndefiniteDatabase, DisjunctiveQuery]:
    """The n-ary-to-binary reduction: reify wide facts through fresh objects."""
    counter = [0]
    new_db_atoms: list[Atom] = []
    for atom in db.atoms():
        if not isinstance(atom, ProperAtom) or atom.arity < min_arity:
            new_db_atoms.append(atom)
            continue
        counter[0] += 1
        entity = obj(f"_e{counter[0]}")
        for pos, arg in enumerate(atom.args, start=1):
            new_db_atoms.append(
                ProperAtom(f"{atom.pred}.arg{pos}", (entity, arg))
            )
    new_db = IndefiniteDatabase.from_atoms(new_db_atoms)

    var_counter = [0]
    new_disjuncts = []
    for d in as_dnf(query).disjuncts:
        atoms: list[Atom] = []
        for atom in d.atoms:
            if not isinstance(atom, ProperAtom) or atom.arity < min_arity:
                atoms.append(atom)
                continue
            var_counter[0] += 1
            entity = objvar(f"_ev{var_counter[0]}")
            for pos, arg in enumerate(atom.args, start=1):
                atoms.append(ProperAtom(f"{atom.pred}.arg{pos}", (entity, arg)))
        new_disjuncts.append(
            ConjunctiveQuery.from_atoms(atoms, d.extra_order_vars)
        )
    return new_db, DisjunctiveQuery(tuple(new_disjuncts))


def fixed_binary_signature(
    db: IndefiniteDatabase, query: Query, family: str = "P"
) -> tuple[IndefiniteDatabase, DisjunctiveQuery]:
    """Compose both reductions: indexed family out, then arities to <= 2."""
    db2, q2 = eliminate_indexed_family(db, query, family)
    return reify(db2, q2)
