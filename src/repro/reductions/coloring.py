"""Theorem 7.1: inequality makes the monadic PTIME cases collapse.

Both parts reduce from graph 3-colorability:

1. **NP-hard expression complexity of a fixed width-one ``[<]``-database
   for conjunctive monadic ``[!=]``-queries.**  The database is three
   ``P``-labelled points in a chain; the query assigns every graph vertex
   a point and demands adjacent vertices get distinct points::

       D  =  P(u1), P(u2), P(u3), u1 < u2 < u3
       Phi = exists v1..vn . /\\ P(v_i)  &  /\\_{(i,j) in E} v_i != v_j

   ``D |= Phi`` iff the graph is 3-colorable.

2. **co-NP-hard data complexity of a fixed *sequential* query on monadic
   ``[!=]``-databases.**  The database asserts ``P`` of one order constant
   per graph vertex plus ``v_i != v_j`` per edge; the fixed query asks for
   four strictly increasing ``P`` points.  Models with three or fewer
   points are exactly the 3-colorings, so the query is entailed iff the
   graph is *not* 3-colorable.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.atoms import ProperAtom, lt, ne
from repro.core.database import IndefiniteDatabase
from repro.core.query import ConjunctiveQuery
from repro.core.sorts import ordc, ordvar
from repro.reductions.sat import three_colorable

Graph = tuple[Sequence[str], Sequence[tuple[str, str]]]


def part1_database() -> IndefiniteDatabase:
    """The fixed chain of three ``P`` points."""
    u1, u2, u3 = ordc("u1"), ordc("u2"), ordc("u3")
    return IndefiniteDatabase.of(
        ProperAtom("P", (u1,)),
        ProperAtom("P", (u2,)),
        ProperAtom("P", (u3,)),
        lt(u1, u2),
        lt(u2, u3),
    )


def part1_query(graph: Graph) -> ConjunctiveQuery:
    """The coloring query for ``graph``."""
    vertices, edges = graph
    atoms = [ProperAtom("P", (ordvar(v),)) for v in vertices]
    atoms.extend(ne(ordvar(a), ordvar(b)) for a, b in edges)
    return ConjunctiveQuery.from_atoms(atoms)


def part1_claim(graph: Graph) -> tuple[IndefiniteDatabase, ConjunctiveQuery, bool]:
    """``(D, Phi, expected)``: expected = graph 3-colorable."""
    vertices, edges = graph
    return part1_database(), part1_query(graph), three_colorable(vertices, edges)


def part2_query() -> ConjunctiveQuery:
    """The fixed sequential query: four strictly increasing ``P`` points."""
    t1, t2, t3, t4 = (ordvar(f"t{i}") for i in range(1, 5))
    return ConjunctiveQuery.of(
        ProperAtom("P", (t1,)),
        ProperAtom("P", (t2,)),
        ProperAtom("P", (t3,)),
        ProperAtom("P", (t4,)),
        lt(t1, t2),
        lt(t2, t3),
        lt(t3, t4),
    )


def part2_database(graph: Graph) -> IndefiniteDatabase:
    """The ``[!=]``-database encoding ``graph``."""
    vertices, edges = graph
    atoms = [ProperAtom("P", (ordc(v),)) for v in vertices]
    atoms.extend(ne(ordc(a), ordc(b)) for a, b in edges)
    return IndefiniteDatabase.from_atoms(atoms)


def part2_claim(graph: Graph) -> tuple[IndefiniteDatabase, ConjunctiveQuery, bool]:
    """``(D, Phi, expected)``: expected = graph NOT 3-colorable.

    Caveat (also in the paper): with fewer than four vertices the query can
    never be satisfied, matching "not 3-colorable = False" trivially.
    """
    vertices, edges = graph
    return (
        part2_database(graph),
        part2_query(),
        not three_colorable(vertices, edges),
    )
