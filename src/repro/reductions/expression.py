"""Theorem 3.4: NP-hard expression complexity.

A *fixed* database — the truth-table database ``E`` of Theorem 3.3 — has
NP-hard expression complexity: the query

    ``exists x z1..zn . Istrue(x) & Val(alpha, z, x)``

is entailed by ``E`` iff the propositional formula ``alpha`` is
satisfiable.  (``E`` contains no order atoms at all, so this is really the
classical NP-hardness of conjunctive-query evaluation, inherited by
indefinite order databases.)
"""

from __future__ import annotations

from repro.core.atoms import Atom, ProperAtom
from repro.core.database import IndefiniteDatabase
from repro.core.query import ConjunctiveQuery
from repro.core.sorts import Term, objvar
from repro.reductions.pi2 import _FreshVars, truth_table_database, val_atoms
from repro.reductions.sat import Formula, formula_variables, sat_formula


def fixed_database() -> IndefiniteDatabase:
    """The fixed database ``E`` (truth tables over constants t, f)."""
    return truth_table_database()


def build_query(formula: Formula) -> ConjunctiveQuery:
    """The satisfiability query for ``formula``."""
    fresh = _FreshVars()
    z: dict[str, Term] = {
        name: objvar(f"z_{name}") for name in sorted(formula_variables(formula))
    }
    atoms: list[Atom]
    atoms, out = val_atoms(formula, z, fresh)
    atoms.append(ProperAtom("Istrue", (out,)))
    return ConjunctiveQuery.from_atoms(atoms)


def reduction_claim(
    formula: Formula,
) -> tuple[IndefiniteDatabase, ConjunctiveQuery, bool]:
    """``(E, query, expected_entailment)``: expected = alpha satisfiable."""
    return fixed_database(), build_query(formula), sat_formula(formula)
