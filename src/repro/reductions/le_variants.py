"""The ``[<=]``-only variants of the lower-bound gadgets.

The paper notes (after Theorems 3.2 and 4.6) that both lower bounds also
hold for ``[<=]``-databases and ``[<=]``-queries — order indefiniteness
alone, with no strict atom anywhere, is already intractable.  The
constructions:

* **Theorem 3.2 variant** — the ternary-permutation gadget: the component
  ``D(u, v, w)`` asserts ``P(x, y, z)`` for every *permutation*
  ``(x, y, z)`` of the order constants ``(u, v, w)`` (no order atoms at
  all), and ``phi(x) = exists y z . P(x, y, z) & x <= y <= z`` holds of
  whichever constant is placed first.  Placing ``u < v < w`` makes
  ``phi(u)`` hold exclusively, and symmetrically — properties D1/D2 again.

* **Theorem 4.6 variant** — the ladder with '<=' edges: to stop a
  ``[<=]``-path from sliding along another, columns alternate two new
  marker predicates ``P`` and ``Q``; a flexi-word
  ``[P,R1][Q,R2][P,R3]...`` is then entailed by a same-shape word only if
  the words are equal, and the proof goes through unchanged.
"""

from __future__ import annotations

from itertools import permutations
from typing import Sequence

from repro.core.atoms import Atom, ProperAtom, le
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.ordergraph import OrderGraph
from repro.core.query import ConjunctiveQuery
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.reductions.monotone3sat import MonotoneSatInstance, _complement
from repro.reductions.sat import dnf_is_tautology
from repro.reductions.tautology import Disjunct


# -- Theorem 3.2, [<=] variant -------------------------------------------------


def _le_gadget(u: str, v: str, w: str) -> list[Atom]:
    """``D(u, v, w)``: all six permutations as ternary ``P`` facts."""
    consts = [ordc(u), ordc(v), ordc(w)]
    return [ProperAtom("P", perm) for perm in permutations(consts)]


def build_database_le(instance: MonotoneSatInstance) -> IndefiniteDatabase:
    """The ``[<=]``-database of the Theorem 3.2 variant.

    Carriers are now *order* constants (the gadget's u/v/w), linked to the
    propositional letters by ``Q(letter, carrier)`` facts exactly as
    before; the database contains no order atoms whatsoever.
    """
    atoms: list[Atom] = []

    def add_component(idx: int, clause, negated: bool) -> None:
        tag = f"n{idx}" if negated else f"p{idx}"
        u, v, w = f"u_{tag}", f"v_{tag}", f"w_{tag}"
        atoms.extend(_le_gadget(u, v, w))
        for letter, carrier in zip(clause, (u, v, w)):
            name = _complement(letter) if negated else letter
            atoms.append(ProperAtom("Q", (obj(name), ordc(carrier))))

    for i, cl in enumerate(instance.positive):
        add_component(i, cl, negated=False)
    for i, cl in enumerate(instance.negative):
        add_component(i, cl, negated=True)
    for letter in instance.letters:
        atoms.append(ProperAtom("Comp", (obj(letter), obj(_complement(letter)))))
    return IndefiniteDatabase.from_atoms(atoms)


def build_query_le() -> ConjunctiveQuery:
    """The fixed ``[<=]``-query of the variant.

    ``exists x y . psi(x) & Comp(x, y) & psi(y)`` with
    ``psi(x) = exists t y z . Q(x, t) & P(t, y, z) & t <= y <= z``.
    """
    x, y = objvar("x"), objvar("y")
    t1, a1, b1 = ordvar("t1"), ordvar("a1"), ordvar("b1")
    t2, a2, b2 = ordvar("t2"), ordvar("a2"), ordvar("b2")
    return ConjunctiveQuery.of(
        ProperAtom("Comp", (x, y)),
        ProperAtom("Q", (x, t1)),
        ProperAtom("P", (t1, a1, b1)),
        le(t1, a1), le(a1, b1),
        ProperAtom("Q", (y, t2)),
        ProperAtom("P", (t2, a2, b2)),
        le(t2, a2), le(a2, b2),
    )


def reduction_claim_le(
    instance: MonotoneSatInstance,
) -> tuple[IndefiniteDatabase, ConjunctiveQuery, bool]:
    """``(database, query, expected)``: expected = instance unsatisfiable."""
    return build_database_le(instance), build_query_le(), not instance.satisfiable()


# -- Theorem 4.6, [<=] variant ----------------------------------------------


def _marker(column: int) -> str:
    return "Podd" if column % 2 == 0 else "Qeven"


def build_query_dag_le(n_letters: int, prefix: str = "q") -> LabeledDag:
    """The '<='-edged ladder with alternating column markers."""
    graph = OrderGraph()
    labels: dict[str, frozenset[str]] = {}
    from repro.core.atoms import Rel

    for j in range(n_letters):
        for row in ("T", "F"):
            name = f"{prefix}_{row}{j}"
            graph.add_vertex(name)
            labels[name] = frozenset({row, _marker(j)})
    for j in range(n_letters - 1):
        for row1 in ("T", "F"):
            for row2 in ("T", "F"):
                graph.add_edge(
                    f"{prefix}_{row1}{j}", f"{prefix}_{row2}{j + 1}", Rel.LE
                )
    return LabeledDag(graph, labels)


def build_database_dag_le(
    disjuncts: Sequence[Disjunct], n_letters: int
) -> LabeledDag:
    """``D(alpha)`` with '<=' edges and alternating markers."""
    graph = OrderGraph()
    labels: dict[str, frozenset[str]] = {}
    from repro.core.atoms import Rel

    for i, disjunct in enumerate(disjuncts):
        columns: list[list[str]] = []
        for j in range(n_letters):
            letter = f"p{j}"
            required = disjunct.get(letter)
            keep: list[tuple[str, str]] = []
            if required is not False:
                keep.append((f"d{i}_T{j}", "T"))
            if required is not True:
                keep.append((f"d{i}_F{j}", "F"))
            for name, row in keep:
                graph.add_vertex(name)
                labels[name] = frozenset({row, _marker(j)})
            columns.append([name for name, _ in keep])
        for j in range(n_letters - 1):
            for a in columns[j]:
                for b in columns[j + 1]:
                    graph.add_edge(a, b, Rel.LE)
    return LabeledDag(graph, labels)


def reduction_claim_le_tautology(
    disjuncts: Sequence[Disjunct], n_letters: int
) -> tuple[LabeledDag, ConjunctiveQuery, bool]:
    """``(D(alpha), Phi(alpha), expected)`` for the ``[<=]`` variant."""
    dag = build_database_dag_le(disjuncts, n_letters)
    qdag = build_query_dag_le(n_letters)
    from repro.core.entailment import _dag_to_query

    letters = [f"p{j}" for j in range(n_letters)]
    return dag, _dag_to_query(qdag), dnf_is_tautology(disjuncts, letters)
