"""Theorem 3.2: co-NP-hard data complexity via monotone 3SAT (Figures 3, 4).

The reduction maps a monotone 3SAT instance — a set ``S`` of positive
3-clauses and a set ``S'`` of negative 3-clauses — to a ``[<]``-database
``D`` such that ``D |= Phi_32`` iff ``S u S'`` is unsatisfiable, where
``Phi_32`` is a *fixed* conjunctive query (so this witnesses hardness of
*data* complexity).

Per clause ``i`` the database contains the disjunction gadget
``D(a_i, b_i, c_i; u_i, v_i, w_i, t_i)`` of Figure 3::

    P(u,a) P(u,b)   u < v   P(v,a) P(v,c)   v < w   P(w,b) P(w,c)
    P(t,a) P(t,b) P(t,c)          (t unconstrained)

with ``phi(x) = exists t1<t2<t3 . P(t1,x) & P(t2,x) & P(t3,x)`` detecting
"x has three increasing witnesses".  Property D1: in every model one of
``phi(a)``, ``phi(b)``, ``phi(c)`` holds (place ``t`` anywhere).  Property
D2: each can be made to hold exclusively (``t = w`` gives only ``phi(a)``,
``t = v`` only ``phi(b)``, ``t = u`` only ``phi(c)``).  The disjunction is
transmitted to the propositional letters by ``Q`` facts, and positive and
negative occurrences are connected with ``Comp(l, l-bar)`` facts.

``bounded_width=True`` builds the Figure 4 layout: the gadgets' ``u,v,w``
chains concatenated into one line and the ``t_i`` into a parallel second
line, giving a database of width **two** while preserving the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.core.atoms import OrderAtom, ProperAtom, lt
from repro.core.database import IndefiniteDatabase
from repro.core.query import ConjunctiveQuery
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.reductions.sat import Clause, is_satisfiable

Triple = tuple[str, str, str]


@dataclass(frozen=True)
class MonotoneSatInstance:
    """A monotone 3SAT instance: positive and negative clause lists."""

    positive: tuple[Triple, ...]
    negative: tuple[Triple, ...]

    @property
    def letters(self) -> list[str]:
        """All propositional letters mentioned."""
        out: set[str] = set()
        for c in self.positive + self.negative:
            out.update(c)
        return sorted(out)

    def clauses(self) -> list[Clause]:
        """The instance as CNF clauses for the reference solver."""
        cnf: list[Clause] = []
        for c in self.positive:
            cnf.append(frozenset((l, True) for l in c))
        for c in self.negative:
            cnf.append(frozenset((l, False) for l in c))
        return cnf

    def satisfiable(self) -> bool:
        """Ground truth via DPLL."""
        return is_satisfiable(self.clauses())


def _complement(letter: str) -> str:
    return f"not_{letter}"


def _gadget(
    a: str, b: str, c: str, u: str, v: str, w: str, t: str
) -> list[ProperAtom | OrderAtom]:
    """The Figure 3 component ``D(a, b, c; u, v, w, t)``."""
    au, av, aw, at = ordc(u), ordc(v), ordc(w), ordc(t)
    oa, ob, oc = obj(a), obj(b), obj(c)
    return [
        ProperAtom("P", (au, oa)),
        ProperAtom("P", (au, ob)),
        lt(au, av),
        ProperAtom("P", (av, oa)),
        ProperAtom("P", (av, oc)),
        lt(av, aw),
        ProperAtom("P", (aw, ob)),
        ProperAtom("P", (aw, oc)),
        ProperAtom("P", (at, oa)),
        ProperAtom("P", (at, ob)),
        ProperAtom("P", (at, oc)),
    ]


def build_database(
    instance: MonotoneSatInstance, bounded_width: bool = False
) -> IndefiniteDatabase:
    """The database ``D(S) u D(S') u F`` of Theorem 3.2."""
    atoms: list[ProperAtom | OrderAtom] = []
    components: list[tuple[str, str, str, str]] = []  # (u, v, w, t) names

    def add_component(idx: int, clause: Triple, negated: bool) -> None:
        tag = f"n{idx}" if negated else f"p{idx}"
        a, b, c = f"a_{tag}", f"b_{tag}", f"c_{tag}"
        u, v, w, t = f"u_{tag}", f"v_{tag}", f"w_{tag}", f"t_{tag}"
        atoms.extend(_gadget(a, b, c, u, v, w, t))
        components.append((u, v, w, t))
        carriers = (a, b, c)
        for letter, carrier in zip(clause, carriers):
            name = _complement(letter) if negated else letter
            atoms.append(ProperAtom("Q", (obj(name), obj(carrier))))

    for i, cl in enumerate(instance.positive):
        add_component(i, cl, negated=False)
    for i, cl in enumerate(instance.negative):
        add_component(i, cl, negated=True)

    for letter in instance.letters:
        atoms.append(
            ProperAtom("Comp", (obj(letter), obj(_complement(letter))))
        )

    if bounded_width and components:
        # Figure 4: concatenate the u<v<w chains into one line and the t_i
        # into a parallel line; the whole database then has width two.
        for (u1, v1, w1, t1), (u2, v2, w2, t2) in zip(
            components, components[1:]
        ):
            atoms.append(lt(ordc(w1), ordc(u2)))
            atoms.append(lt(ordc(t1), ordc(t2)))
    return IndefiniteDatabase.from_atoms(atoms)


def build_query() -> ConjunctiveQuery:
    """The *fixed* query of Theorem 3.2.

    ``exists x y . psi(x) & Comp(x, y) & psi(y)`` with
    ``psi(x) = exists w . Q(x, w) & phi(w)`` and ``phi`` the
    three-increasing-witnesses test.  Its size does not depend on the SAT
    instance — the hallmark of a data-complexity lower bound.
    """
    x, y = objvar("x"), objvar("y")
    w1, w2 = objvar("w1"), objvar("w2")
    t1, t2, t3 = ordvar("t1"), ordvar("t2"), ordvar("t3")
    s1, s2, s3 = ordvar("s1"), ordvar("s2"), ordvar("s3")
    return ConjunctiveQuery.of(
        ProperAtom("Comp", (x, y)),
        ProperAtom("Q", (x, w1)),
        ProperAtom("P", (t1, w1)),
        ProperAtom("P", (t2, w1)),
        ProperAtom("P", (t3, w1)),
        lt(t1, t2),
        lt(t2, t3),
        ProperAtom("Q", (y, w2)),
        ProperAtom("P", (s1, w2)),
        ProperAtom("P", (s2, w2)),
        ProperAtom("P", (s3, w2)),
        lt(s1, s2),
        lt(s2, s3),
    )


def reduction_claim(
    instance: MonotoneSatInstance, bounded_width: bool = False
) -> tuple[IndefiniteDatabase, ConjunctiveQuery, bool]:
    """Build the instance and the claimed answer.

    Returns ``(database, query, expected_entailment)`` where the expected
    entailment is "the instance is unsatisfiable" (Theorem 3.2).
    """
    db = build_database(instance, bounded_width)
    return db, build_query(), not instance.satisfiable()
