"""Theorem 3.3: Pi2p-hard combined complexity via Pi2-QBF.

Maps a quantified boolean formula ``forall p1..pn exists q1..qm [alpha]``
to a database/query pair with ``D |= Phi`` iff the formula is true.  Via
Proposition 2.10 this also gives the Pi2p-hardness of containment of
relational conjunctive queries with inequalities, resolving Klug's open
problem — see :mod:`repro.containment.containment`.

Construction:

* per universal variable ``p_i`` the binary-disjunction gadget
  ``D_i = { P_i(u_i, t), P_i(v_i, f), u_i < v_i, P_i(w_i, t), P_i(w_i, f) }``
  with ``phi_i(x) = exists a < b . P_i(a, x) & P_i(b, x)`` — in every model
  ``phi_i(t)`` or ``phi_i(f)`` holds (merge ``w_i`` up or down to make
  exactly one hold);
* the truth-table database ``E`` over object constants ``t`` and ``f``
  (``And``, ``Or``, ``Not``, ``Istrue``);
* the query ``Val(alpha, z, x)`` defined by structural recursion on
  ``alpha``, asserting "the value of alpha under assignment z is x", with
  the equality of the base case eliminated by substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.atoms import Atom, ProperAtom, lt
from repro.core.database import IndefiniteDatabase
from repro.core.query import ConjunctiveQuery
from repro.core.sorts import Term, obj, objvar, ordvar
from repro.reductions.sat import Formula, formula_variables, pi2_true

TRUE, FALSE = obj("t"), obj("f")


def truth_table_database() -> IndefiniteDatabase:
    """The database ``E`` of Theorem 3.3 (also used by Theorem 3.4)."""
    t, f = TRUE, FALSE
    rows: list[ProperAtom] = [ProperAtom("Istrue", (t,))]
    for a, b in ((t, t), (t, f), (f, t), (f, f)):
        conj = t if (a, b) == (t, t) else f
        disj = f if (a, b) == (f, f) else t
        rows.append(ProperAtom("And", (a, b, conj)))
        rows.append(ProperAtom("Or", (a, b, disj)))
    rows.append(ProperAtom("Not", (t, f)))
    rows.append(ProperAtom("Not", (f, t)))
    return IndefiniteDatabase.from_atoms(rows)


class _FreshVars:
    def __init__(self) -> None:
        self.counter = 0

    def next(self, prefix: str) -> Term:
        self.counter += 1
        return objvar(f"{prefix}{self.counter}")


def val_atoms(
    formula: Formula, z: dict[str, Term], fresh: _FreshVars
) -> tuple[list[Atom], Term]:
    """The Val construction: atoms plus the term denoting alpha's value.

    ``Val(p_i, z, x)`` would be ``x = z_i``; instead of using equality the
    variable ``z_i`` itself is returned as the value term (the elimination
    noted in the paper).
    """
    tag = formula[0]
    if tag == "var":
        return [], z[formula[1]]
    if tag == "not":
        sub_atoms, sub_val = val_atoms(formula[1], z, fresh)
        out = fresh.next("val")
        return sub_atoms + [ProperAtom("Not", (sub_val, out))], out
    left_atoms, left_val = val_atoms(formula[1], z, fresh)
    right_atoms, right_val = val_atoms(formula[2], z, fresh)
    out = fresh.next("val")
    pred = "And" if tag == "and" else "Or"
    return (
        left_atoms + right_atoms + [ProperAtom(pred, (left_val, right_val, out))],
        out,
    )


def universal_gadget(index: int) -> list[Atom]:
    """The component ``D_i`` simulating the choice of ``p_i``'s value."""
    from repro.core.sorts import ordc

    cu, cv, cw = ordc(f"u{index}"), ordc(f"v{index}"), ordc(f"w{index}")
    pred = f"P{index}"
    return [
        ProperAtom(pred, (cu, TRUE)),
        ProperAtom(pred, (cv, FALSE)),
        lt(cu, cv),
        ProperAtom(pred, (cw, TRUE)),
        ProperAtom(pred, (cw, FALSE)),
    ]


def phi_i_atoms(index: int, value_var: Term) -> list[Atom]:
    """``phi_i(x) = exists a < b . P_i(a, x) & P_i(b, x)`` as atoms."""
    a = ordvar(f"g{index}_a")
    b = ordvar(f"g{index}_b")
    pred = f"P{index}"
    return [
        ProperAtom(pred, (a, value_var)),
        ProperAtom(pred, (b, value_var)),
        lt(a, b),
    ]


def build(
    universals: Sequence[str], existentials: Sequence[str], formula: Formula
) -> tuple[IndefiniteDatabase, ConjunctiveQuery]:
    """The Theorem 3.3 instance for ``forall u . exists e . formula``."""
    missing = formula_variables(formula) - set(universals) - set(existentials)
    if missing:
        raise ValueError(f"unquantified variables: {sorted(missing)}")

    db = truth_table_database()
    for i in range(len(universals)):
        db = db.union(IndefiniteDatabase.from_atoms(universal_gadget(i)))

    fresh = _FreshVars()
    z: dict[str, Term] = {}
    atoms: list[Atom] = []
    for i, name in enumerate(universals):
        z[name] = objvar(f"z{i}")
        atoms.extend(phi_i_atoms(i, z[name]))
    for j, name in enumerate(existentials):
        z[name] = objvar(f"e{j}")
    val, out = val_atoms(formula, z, fresh)
    atoms.extend(val)
    atoms.append(ProperAtom("Istrue", (out,)))
    return db, ConjunctiveQuery.from_atoms(atoms)


@dataclass(frozen=True)
class Pi2Instance:
    """A Pi2 quantified boolean formula with its reduction artifacts."""

    universals: tuple[str, ...]
    existentials: tuple[str, ...]
    formula: Formula

    def truth(self) -> bool:
        """Ground truth via exhaustive evaluation."""
        return pi2_true(self.universals, self.existentials, self.formula)

    def reduction(self) -> tuple[IndefiniteDatabase, ConjunctiveQuery, bool]:
        """``(database, query, expected_entailment)`` per Theorem 3.3."""
        db, query = build(self.universals, self.existentials, self.formula)
        return db, query, self.truth()
