"""Reference propositional solvers: the ground truth for every reduction.

The lower-bound theorems of the paper reduce *from* these problems:

* monotone 3SAT (Theorem 3.2) — :func:`sat_dpll` on clause sets;
* Pi2-quantified boolean formulas (Theorem 3.3) — :func:`pi2_true`;
* propositional satisfiability (Theorem 3.4) — :func:`sat_formula`;
* DNF tautology (Theorem 4.6) — :func:`dnf_is_tautology`;
* graph 3-colorability (Theorem 7.1) — :func:`three_colorable`.

All implemented from scratch.  Clauses are frozensets of literals; a
literal is ``(name, polarity)``.  Formulas (for the Val construction of
Theorem 3.3) are a tiny AST: ``("var", name)``, ``("not", f)``,
``("and", f, g)``, ``("or", f, g)``.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

Literal = tuple[str, bool]
Clause = frozenset[Literal]
Formula = tuple  # ("var", name) | ("not", f) | ("and", f, g) | ("or", f, g)


def clause(*literals: Literal) -> Clause:
    """Build a clause."""
    return frozenset(literals)


def sat_dpll(clauses: Iterable[Clause]) -> dict[str, bool] | None:
    """DPLL satisfiability: a model as ``{var: bool}`` or None.

    Unit propagation plus pure-literal elimination plus branching on the
    most frequent variable.
    """
    clauses = [frozenset(c) for c in clauses]
    assignment: dict[str, bool] = {}

    def simplify(cls: list[Clause], var: str, value: bool) -> list[Clause] | None:
        out = []
        for c in cls:
            if (var, value) in c:
                continue
            reduced = frozenset(l for l in c if l != (var, not value))
            if not reduced:
                return None  # empty clause: conflict
            out.append(reduced)
        return out

    def solve(cls: list[Clause], partial: dict[str, bool]) -> dict[str, bool] | None:
        while True:
            units = [next(iter(c)) for c in cls if len(c) == 1]
            if not units:
                break
            var, value = units[0]
            partial = {**partial, var: value}
            reduced = simplify(cls, var, value)
            if reduced is None:
                return None
            cls = reduced
        if not cls:
            return partial
        # pure literal elimination
        polarity: dict[str, set[bool]] = {}
        for c in cls:
            for var, value in c:
                polarity.setdefault(var, set()).add(value)
        pures = [(v, next(iter(ps))) for v, ps in polarity.items() if len(ps) == 1]
        if pures:
            var, value = pures[0]
            reduced = simplify(cls, var, value)
            if reduced is None:
                return None
            return solve(reduced, {**partial, var: value})
        counts: dict[str, int] = {}
        for c in cls:
            for var, _ in c:
                counts[var] = counts.get(var, 0) + 1
        var = max(counts, key=lambda v: (counts[v], v))
        for value in (True, False):
            reduced = simplify(cls, var, value)
            if reduced is not None:
                result = solve(reduced, {**partial, var: value})
                if result is not None:
                    return result
        return None

    return solve(clauses, assignment)


def is_satisfiable(clauses: Iterable[Clause]) -> bool:
    """CNF satisfiability."""
    return sat_dpll(clauses) is not None


def eval_formula(formula: Formula, assignment: dict[str, bool]) -> bool:
    """Evaluate a formula AST under a total assignment."""
    tag = formula[0]
    if tag == "var":
        return assignment[formula[1]]
    if tag == "not":
        return not eval_formula(formula[1], assignment)
    if tag == "and":
        return eval_formula(formula[1], assignment) and eval_formula(
            formula[2], assignment
        )
    if tag == "or":
        return eval_formula(formula[1], assignment) or eval_formula(
            formula[2], assignment
        )
    raise ValueError(f"unknown formula tag {tag!r}")


def formula_variables(formula: Formula) -> set[str]:
    """The variable names of a formula AST."""
    tag = formula[0]
    if tag == "var":
        return {formula[1]}
    if tag == "not":
        return formula_variables(formula[1])
    return formula_variables(formula[1]) | formula_variables(formula[2])


def sat_formula(formula: Formula) -> bool:
    """Satisfiability of a formula AST (exhaustive — formulas stay small)."""
    variables = sorted(formula_variables(formula))
    for values in product((False, True), repeat=len(variables)):
        if eval_formula(formula, dict(zip(variables, values))):
            return True
    return False


def pi2_true(
    universals: Sequence[str], existentials: Sequence[str], formula: Formula
) -> bool:
    """Truth of ``forall p . exists q . formula`` (Pi2-SAT).

    Exhaustive over the universal block, exhaustive over the existential
    block — exactly the definition, usable as ground truth on small inputs.
    """
    for uvals in product((False, True), repeat=len(universals)):
        base = dict(zip(universals, uvals))
        found = False
        for evals in product((False, True), repeat=len(existentials)):
            assignment = {**base, **dict(zip(existentials, evals))}
            if eval_formula(formula, assignment):
                found = True
                break
        if not found:
            return False
    return True


def dnf_is_tautology(
    disjuncts: Sequence[dict[str, bool]], letters: Sequence[str]
) -> bool:
    """Is the DNF (each disjunct a partial assignment it requires) valid?

    A valuation satisfies the DNF iff it extends some disjunct.  Decided by
    checking the complement CNF for unsatisfiability via DPLL.
    """
    # not(DNF) in CNF: one clause per disjunct, negating its literals.
    cnf = [
        frozenset((var, not value) for var, value in d.items())
        for d in disjuncts
    ]
    model = sat_dpll(cnf)
    if model is None:
        return True
    # Variables absent from the CNF are unconstrained; any completion
    # falsifies every disjunct, so the DNF is not a tautology.
    return False


def three_colorable(
    vertices: Sequence[str], edges: Sequence[tuple[str, str]]
) -> bool:
    """Graph 3-colorability by backtracking with degree-ordered vertices."""
    adjacency: dict[str, set[str]] = {v: set() for v in vertices}
    for u, v in edges:
        if u == v:
            return False  # a self-loop can never be properly colored
        adjacency[u].add(v)
        adjacency[v].add(u)
    order = sorted(vertices, key=lambda v: -len(adjacency[v]))
    color: dict[str, int] = {}

    def assign(i: int) -> bool:
        if i == len(order):
            return True
        v = order[i]
        used = {color[w] for w in adjacency[v] if w in color}
        for c in range(3):
            if c not in used:
                color[v] = c
                if assign(i + 1):
                    return True
                del color[v]
        return False

    return assign(0)
