"""Theorem 4.6: co-NP-hard *monadic* combined complexity (Figures 7, 8).

Reduction from DNF tautology, entirely within monadic ``[<]``-databases
and width-two ``[<]``-queries over the two fixed predicates ``T``, ``F``:

* the query ``Phi(alpha)`` is the two-row ladder of Figure 7 — columns
  ``1..m`` (one per propositional letter), each column holding a
  ``T``-labelled and an ``F``-labelled vertex, with '<' edges from every
  vertex of column ``j`` to every vertex of column ``j+1``.  Its paths are
  exactly the words ``{T,F}^m``, i.e. all valuations;

* the database ``D(alpha)`` has one disconnected component per disjunct,
  the sub-ladder retaining in column ``j`` only the vertices compatible
  with the disjunct's literal on letter ``j`` (Figure 8 shows the
  component for ``p1 & not p3 & p4``).  Its paths are exactly the
  valuations that satisfy ``alpha``.

Since all paths have length ``m``, path subsumption degenerates to
equality and ``D(alpha) |= Phi(alpha)`` iff every valuation satisfies some
disjunct — iff ``alpha`` is a tautology.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.atoms import Rel
from repro.core.database import LabeledDag
from repro.core.ordergraph import OrderGraph
from repro.core.query import ConjunctiveQuery
from repro.reductions.sat import dnf_is_tautology

Disjunct = dict[str, bool]


def letters_of(disjuncts: Sequence[Disjunct], n_letters: int | None = None) -> list[str]:
    """The letter universe ``p0..p{m-1}`` covering all disjuncts."""
    mentioned = {v for d in disjuncts for v in d}
    count = n_letters if n_letters is not None else (
        max((int(v[1:]) for v in mentioned), default=-1) + 1
    )
    return [f"p{j}" for j in range(count)]


def build_query_dag(n_letters: int, prefix: str = "q") -> LabeledDag:
    """The Figure 7 ladder ``Phi(alpha)`` as a labelled dag (width two)."""
    graph = OrderGraph()
    labels: dict[str, frozenset[str]] = {}
    for j in range(n_letters):
        for row, pred in (("T", "T"), ("F", "F")):
            name = f"{prefix}_{row}{j}"
            graph.add_vertex(name)
            labels[name] = frozenset({pred})
    for j in range(n_letters - 1):
        for row1 in ("T", "F"):
            for row2 in ("T", "F"):
                graph.add_edge(
                    f"{prefix}_{row1}{j}", f"{prefix}_{row2}{j + 1}", Rel.LT
                )
    return LabeledDag(graph, labels)


def build_query(n_letters: int) -> ConjunctiveQuery:
    """``Phi(alpha)`` as a conjunctive query object."""
    from repro.core.sorts import ordvar

    dag = build_query_dag(n_letters)
    from repro.core.atoms import ProperAtom

    atoms = []
    for v, preds in sorted(dag.labels.items()):
        for p in sorted(preds):
            atoms.append(ProperAtom(p, (ordvar(v),)))
    term_of = {v: ordvar(v) for v in dag.graph.vertices}
    atoms.extend(dag.graph.to_atoms(term_of))
    return ConjunctiveQuery.from_atoms(atoms)


def build_database_dag(
    disjuncts: Sequence[Disjunct], n_letters: int
) -> LabeledDag:
    """``D(alpha)``: one Figure 8 component per disjunct."""
    graph = OrderGraph()
    labels: dict[str, frozenset[str]] = {}
    for i, disjunct in enumerate(disjuncts):
        columns: list[list[str]] = []
        for j in range(n_letters):
            letter = f"p{j}"
            keep: list[tuple[str, str]] = []
            required = disjunct.get(letter)
            if required is not False:
                keep.append((f"d{i}_T{j}", "T"))
            if required is not True:
                keep.append((f"d{i}_F{j}", "F"))
            for name, pred in keep:
                graph.add_vertex(name)
                labels[name] = frozenset({pred})
            columns.append([name for name, _ in keep])
        for j in range(n_letters - 1):
            for a in columns[j]:
                for b in columns[j + 1]:
                    graph.add_edge(a, b, Rel.LT)
    return LabeledDag(graph, labels)


def reduction_claim(
    disjuncts: Sequence[Disjunct], n_letters: int
) -> tuple[LabeledDag, ConjunctiveQuery, bool]:
    """``(D(alpha), Phi(alpha), expected)``: expected = alpha is a tautology."""
    db = build_database_dag(disjuncts, n_letters)
    query = build_query(n_letters)
    letters = letters_of(disjuncts, n_letters)
    return db, query, dnf_is_tautology(disjuncts, letters)
