"""Network serving tier: one shared engine behind a socket protocol.

``repro serve`` (:mod:`repro.cli`) hosts a
:class:`~repro.server.server.ReproServer`; ``--connect HOST:PORT`` on
``query``/``answers``/``batch``/``watch`` drives it through
:class:`~repro.server.client.ReproClient`.  ``repro serve --replica-of
WAL`` hosts a read-only replica tailing a primary's log, and
``--connect PRIMARY,REPLICA,...`` drives the fleet through
:class:`~repro.server.client.ReplicaRouter` (read-your-writes routing,
retry/backoff, failover).  See :mod:`repro.server.protocol` for the
frame format and :mod:`repro.server.server` for the
serialization/parity contract.
"""

from repro.server.client import (
    ClientError,
    ClientTimeout,
    ReplicaRouter,
    ReproClient,
    ServerReplyError,
)
from repro.server.protocol import (
    MAX_FRAME,
    FrameError,
    PayloadError,
    ProtocolError,
    ReadOnly,
    ReplicaLagging,
    encode_frame,
    read_frame_async,
    read_frame_sync,
)
from repro.server.server import DEFAULT_MAX_INFLIGHT, ReproServer, ServerThread

__all__ = [
    "ClientError",
    "ClientTimeout",
    "DEFAULT_MAX_INFLIGHT",
    "FrameError",
    "MAX_FRAME",
    "PayloadError",
    "ProtocolError",
    "ReadOnly",
    "ReplicaLagging",
    "ReplicaRouter",
    "ReproClient",
    "ReproServer",
    "ServerReplyError",
    "ServerThread",
    "encode_frame",
    "read_frame_async",
    "read_frame_sync",
]
