"""Blocking client for the serving tier's frame protocol.

:class:`ReproClient` speaks the length-prefixed JSON protocol of
:mod:`repro.server.protocol` over one TCP connection.  Two calling
styles:

* **request/response** — :meth:`call` sends one op and blocks for its
  reply (raising :class:`ServerReplyError` on ``ok: false`` unless
  asked not to);
* **pipelined** — :meth:`send` fires ops without waiting and
  :meth:`wait` collects replies later, keeping ``max_inflight``-deep
  windows full; this is how the throughput benchmark and the
  concurrent-differential tests drive the server.

Watch events pushed by the server (frames with an ``event`` field) are
collected on :attr:`events` as they are read; :meth:`take_events`
hands them over and clears the buffer.

:class:`ReplicaRouter` composes clients into a fault-tolerant session
over one primary and N read replicas: writes go to the primary, reads
round-robin over the replicas carrying the session's last-write ``seq``
as ``min_seq`` (read-your-writes), and every failure mode — a lagging
replica, a dead replica, a dropped connection, a timeout — is absorbed
by bounded waiting, exponential backoff with jitter, and failover to
the next replica or the primary.
"""

from __future__ import annotations

import random
import socket
import time

from repro.core.errors import ReproError
from repro.server.protocol import MAX_FRAME, encode_frame, read_frame_sync


class ClientError(ReproError):
    """The connection died or the reply stream ended unexpectedly."""


class ClientTimeout(ClientError):
    """No reply within the client's ``timeout``.

    The connection is poisoned afterwards — the timeout may have struck
    mid-frame, so frame boundaries are no longer trustworthy.  Callers
    should close and reconnect (:class:`ReplicaRouter` does).
    """


class ServerReplyError(ReproError):
    """An ``ok: false`` reply, surfaced as an exception.

    Carries the server's structured error: :attr:`type` and
    :attr:`reply` (the full frame).
    """

    def __init__(self, reply: dict) -> None:
        error = reply.get("error") or {}
        self.type = error.get("type", "unknown")
        self.reply = reply
        super().__init__(f"{self.type}: {error.get('message', '')}")


class ReproClient:
    """One connection to a :class:`~repro.server.server.ReproServer`.

    ``timeout`` bounds every blocking socket wait (connect aside — see
    ``connect_timeout``): when it elapses mid-:meth:`wait` or
    mid-:meth:`send`, a :class:`ClientTimeout` is raised.  The default
    ``None`` blocks forever on a silent server.  (Behavior change: the
    pre-router client passed its 60s connect timeout to
    ``socket.create_connection``, which left a 60s timeout on every
    subsequent op; callers wanting that bound back pass
    ``timeout=60.0`` — the CLI's ``--connect`` path does.)
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = None,
        max_frame: int = MAX_FRAME,
        connect_timeout: float = 60.0,
    ) -> None:
        self._sock = socket.create_connection(
            (host, port), connect_timeout if timeout is None else timeout
        )
        self._sock.settimeout(timeout)
        self.timeout = timeout
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._max_frame = max_frame
        self._next_id = 0
        self._replies: dict[int, dict] = {}
        #: server-pushed watch events, in arrival order
        self.events: list[dict] = []
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for part in (self._wfile, self._rfile, self._sock):
            try:
                part.close()
            except OSError:
                pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- pipelined sends ----------------------------------------------------

    def send(self, op: str, **fields) -> int:
        """Fire one op without waiting; returns its request id."""
        self._next_id += 1
        rid = self._next_id
        frame = {"op": op, "id": rid, **fields}
        try:
            self._wfile.write(encode_frame(frame, self._max_frame))
            self._wfile.flush()
        except TimeoutError as exc:
            raise ClientTimeout(
                f"send of request {rid} timed out after {self.timeout}s"
            ) from exc
        return rid

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes (protocol-abuse helper for the test suite)."""
        self._wfile.write(data)
        self._wfile.flush()

    def wait(self, rid: int, check: bool = True) -> dict:
        """Block until the reply for ``rid`` arrives; buffer everything else."""
        while rid not in self._replies:
            try:
                frame = read_frame_sync(self._rfile, self._max_frame)
            except TimeoutError as exc:
                # possibly mid-frame: the stream is no longer framed
                raise ClientTimeout(
                    f"no reply for request {rid} within {self.timeout}s"
                ) from exc
            if frame is None:
                raise ClientError(
                    f"connection closed while waiting for reply {rid}"
                )
            if "event" in frame:
                self.events.append(frame)
                continue
            key = frame.get("id")
            if key is None:
                # an unsolicited error frame (bad payload / fatal framing)
                if frame.get("fatal"):
                    raise ServerReplyError(frame)
                self._replies[-len(self._replies) - 1] = frame
                continue
            self._replies[key] = frame
        reply = self._replies.pop(rid)
        if check and not reply.get("ok", False):
            raise ServerReplyError(reply)
        return reply

    def read_frame(self) -> dict | None:
        """Read one raw frame (events included); ``None`` on EOF."""
        try:
            frame = read_frame_sync(self._rfile, self._max_frame)
        except TimeoutError as exc:
            raise ClientTimeout(
                f"no frame within {self.timeout}s"
            ) from exc
        if frame is not None and "event" in frame:
            self.events.append(frame)
        return frame

    def take_events(self) -> list[dict]:
        """Hand over the buffered watch events (clears the buffer)."""
        events, self.events = self.events, []
        return events

    # -- request/response ---------------------------------------------------

    def call(self, op: str, check: bool = True, **fields) -> dict:
        """Send one op and block for its reply."""
        return self.wait(self.send(op, **fields), check=check)

    # -- op conveniences (the CLI --connect surface) ------------------------

    def execute(
        self,
        query: str | None = None,
        *,
        handle: int | None = None,
        semantics: str = "fin",
        method: str = "auto",
        check: bool = True,
    ) -> dict:
        fields: dict = {"semantics": semantics, "method": method}
        if handle is not None:
            fields = {"handle": handle}
        else:
            fields["query"] = query
        return self.call("execute", check=check, **fields)

    def answers(
        self,
        query: str | None = None,
        free_vars: list[str] | None = None,
        *,
        handle: int | None = None,
        semantics: str = "fin",
        check: bool = True,
    ) -> dict:
        if handle is not None:
            return self.call("answers", check=check, handle=handle)
        return self.call(
            "answers",
            check=check,
            query=query,
            free_vars=list(free_vars or []),
            semantics=semantics,
        )

    def prepare(self, query: str, free_vars=None, **fields) -> int:
        reply = self.call(
            "prepare",
            query=query,
            **({"free_vars": list(free_vars)} if free_vars is not None else {}),
            **fields,
        )
        return reply["handle"]

    def assert_facts(self, facts: str, check: bool = True) -> dict:
        return self.call("assert", check=check, facts=facts)

    def retract_facts(self, facts: str, check: bool = True) -> dict:
        return self.call("retract", check=check, facts=facts)

    def batch(self, lines: list[str], check: bool = True) -> dict:
        return self.call("batch", check=check, lines=list(lines))

    def watch(self, query: str, free_vars: list[str], **fields) -> dict:
        return self.call(
            "watch", query=query, free_vars=list(free_vars), **fields
        )

    def stats(self) -> dict:
        return self.call("stats")

    def ping(self) -> dict:
        return self.call("ping")


class ReplicaRouter:
    """Route one client session over a primary and N read replicas.

    Consistency: the router tracks the ``seq`` of the session's last
    acknowledged write and sends it as ``min_seq`` with every
    replica-bound read.  A replica that has not applied that ``seq``
    yet answers ``ReplicaLagging``; the router then backs off
    (exponential + jitter) and retries until ``wait_timeout`` has
    elapsed, after which it falls back to the primary — so every read
    observes the session's own writes, with bounded extra latency.

    Robustness: a replica that times out, drops the connection, or
    refuses service is marked down for ``down_cooldown`` seconds and
    the read fails over to the next replica, then the primary.  Ops on
    the primary retry up to ``retries`` times with the same backoff.
    Writes are fact assertions/retractions — idempotent — so a retry
    after an ambiguous failure (e.g. a timeout after the send) is safe.

    The primary is the session's write side and the home of ``watch``
    subscriptions; ``read_primary=True`` additionally puts it in the
    read rotation (scale-out over *all* processes).  Genuine engine
    error replies (parse errors, unknown handles) are never retried —
    they are the op's real outcome on any server.

    ``rng``/``sleep`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        primary: tuple[str, int],
        replicas: list[tuple[str, int]] | None = None,
        *,
        timeout: float | None = 30.0,
        wait_timeout: float = 2.0,
        retries: int = 4,
        backoff: float = 0.05,
        backoff_max: float = 1.0,
        jitter: float = 0.25,
        down_cooldown: float = 1.0,
        read_primary: bool = False,
        max_frame: int = MAX_FRAME,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ) -> None:
        self._primary_addr = tuple(primary)
        self._replica_addrs = [tuple(a) for a in (replicas or [])]
        self.timeout = timeout
        self.wait_timeout = wait_timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.down_cooldown = down_cooldown
        self.read_primary = read_primary
        self._max_frame = max_frame
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._primary: ReproClient | None = None
        self._replicas: dict[int, ReproClient] = {}
        self._down_until: dict[int, float] = {}
        self._rr = 0
        #: ``seq`` of the last acknowledged write (read-your-writes token)
        self.last_write_seq = 0
        self.counters = {
            "reads": 0,
            "replica_reads": 0,
            "primary_fallbacks": 0,
            "failovers": 0,
            "lag_waits": 0,
            "retries": 0,
        }

    # -- connections --------------------------------------------------------

    def _connect(self, addr: tuple[str, int]) -> ReproClient:
        return ReproClient(
            addr[0], addr[1], timeout=self.timeout, max_frame=self._max_frame
        )

    def _primary_client(self) -> ReproClient:
        if self._primary is None:
            self._primary = self._connect(self._primary_addr)
        return self._primary

    def _replica_client(self, idx: int) -> ReproClient:
        client = self._replicas.get(idx)
        if client is None:
            client = self._connect(self._replica_addrs[idx])
            self._replicas[idx] = client
        return client

    def _drop_primary(self) -> None:
        if self._primary is not None:
            self._primary.close()
            self._primary = None

    def _mark_down(self, idx: int, why) -> None:
        client = self._replicas.pop(idx, None)
        if client is not None:
            client.close()
        self._down_until[idx] = time.monotonic() + self.down_cooldown

    def _read_targets(self) -> list[int]:
        """Replica indices currently worth trying (cooldowns expired)."""
        now = time.monotonic()
        targets = []
        for idx in range(len(self._replica_addrs)):
            until = self._down_until.get(idx)
            if until is not None:
                if now < until:
                    continue
                del self._down_until[idx]
            targets.append(idx)
        return targets

    def _backoff_delay(self, attempt: int) -> float:
        base = min(self.backoff * (2 ** attempt), self.backoff_max)
        return base * (1 + self.jitter * self._rng.random())

    # -- routed calls -------------------------------------------------------

    def _read(self, op: str, fields: dict, check: bool = True) -> dict:
        """One read: replicas first (gated by ``min_seq``), primary last."""
        self.counters["reads"] += 1
        deadline = time.monotonic() + self.wait_timeout
        attempt = 0
        while self._replica_addrs or self.read_primary:
            targets: list = self._read_targets()
            if self.read_primary:
                targets.append(-1)
            if not targets:
                break
            self._rr += 1
            pivot = self._rr % len(targets)
            lagging = False
            for idx in targets[pivot:] + targets[:pivot]:
                if idx == -1:
                    return self._primary_call(op, fields, check)
                try:
                    reply = self._replica_client(idx).call(
                        op, check=False, min_seq=self.last_write_seq, **fields
                    )
                except (ClientError, ConnectionError, OSError) as exc:
                    self.counters["failovers"] += 1
                    self._mark_down(idx, exc)
                    continue
                error_type = (reply.get("error") or {}).get("type")
                if error_type in ("ReadOnly", "Draining"):
                    # a replica that cannot serve reads is down to us
                    self.counters["failovers"] += 1
                    self._mark_down(idx, error_type)
                    continue
                if error_type == "ReplicaLagging" or (
                    reply.get("applied_seq", self.last_write_seq)
                    < self.last_write_seq
                ):
                    lagging = True
                    continue
                self.counters["replica_reads"] += 1
                if check and not reply.get("ok", False):
                    raise ServerReplyError(reply)
                return reply
            if not lagging:
                break  # every replica is down, not merely behind
            if time.monotonic() >= deadline:
                break  # bounded staleness wait exhausted
            self.counters["lag_waits"] += 1
            self._sleep(self._backoff_delay(attempt))
            attempt += 1
        self.counters["primary_fallbacks"] += 1
        return self._primary_call(op, fields, check)

    def _primary_call(
        self, op: str, fields: dict, check: bool = True, is_write: bool = False
    ) -> dict:
        """One op on the primary, with retry + backoff on dead connections."""
        attempt = 0
        while True:
            try:
                reply = self._primary_client().call(op, check=False, **fields)
            except (ClientError, ConnectionError, OSError):
                self._drop_primary()
                if attempt >= self.retries:
                    raise
                self.counters["retries"] += 1
                self._sleep(self._backoff_delay(attempt))
                attempt += 1
                continue
            if is_write and reply.get("ok", False):
                seq = reply.get("seq", 0)
                if seq > self.last_write_seq:
                    self.last_write_seq = seq
            if check and not reply.get("ok", False):
                raise ServerReplyError(reply)
            return reply

    # -- the ReproClient op surface -----------------------------------------

    def execute(
        self,
        query: str | None = None,
        *,
        semantics: str = "fin",
        method: str = "auto",
        check: bool = True,
    ) -> dict:
        return self._read(
            "execute",
            {"query": query, "semantics": semantics, "method": method},
            check=check,
        )

    def answers(
        self,
        query: str | None = None,
        free_vars: list[str] | None = None,
        *,
        semantics: str = "fin",
        check: bool = True,
    ) -> dict:
        return self._read(
            "answers",
            {
                "query": query,
                "free_vars": list(free_vars or []),
                "semantics": semantics,
            },
            check=check,
        )

    def assert_facts(self, facts: str, check: bool = True) -> dict:
        return self._primary_call(
            "assert", {"facts": facts}, check=check, is_write=True
        )

    def retract_facts(self, facts: str, check: bool = True) -> dict:
        return self._primary_call(
            "retract", {"facts": facts}, check=check, is_write=True
        )

    def batch(self, lines: list[str], check: bool = True) -> dict:
        return self._primary_call(
            "batch", {"lines": list(lines)}, check=check, is_write=True
        )

    def watch(self, query: str, free_vars: list[str], **fields) -> dict:
        return self._primary_call(
            "watch", {"query": query, "free_vars": list(free_vars), **fields}
        )

    def take_events(self) -> list[dict]:
        if self._primary is None:
            return []
        return self._primary.take_events()

    def stats(self) -> dict:
        return self._primary_call("stats", {})

    def replica_stats(self) -> list[dict | None]:
        """Best-effort ``stats`` from each replica (``None`` if unreachable)."""
        out: list[dict | None] = []
        for idx in range(len(self._replica_addrs)):
            try:
                out.append(self._replica_client(idx).call("stats"))
            except (ClientError, ConnectionError, OSError) as exc:
                self._mark_down(idx, exc)
                out.append(None)
        return out

    def ping(self) -> dict:
        return self._primary_call("ping", {})

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._primary is not None:
            self._primary.close()
            self._primary = None
        for client in self._replicas.values():
            client.close()
        self._replicas.clear()

    def __enter__(self) -> "ReplicaRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "ClientError",
    "ClientTimeout",
    "ReplicaRouter",
    "ReproClient",
    "ServerReplyError",
]
