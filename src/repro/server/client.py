"""Blocking client for the serving tier's frame protocol.

:class:`ReproClient` speaks the length-prefixed JSON protocol of
:mod:`repro.server.protocol` over one TCP connection.  Two calling
styles:

* **request/response** — :meth:`call` sends one op and blocks for its
  reply (raising :class:`ServerReplyError` on ``ok: false`` unless
  asked not to);
* **pipelined** — :meth:`send` fires ops without waiting and
  :meth:`wait` collects replies later, keeping ``max_inflight``-deep
  windows full; this is how the throughput benchmark and the
  concurrent-differential tests drive the server.

Watch events pushed by the server (frames with an ``event`` field) are
collected on :attr:`events` as they are read; :meth:`take_events`
hands them over and clears the buffer.
"""

from __future__ import annotations

import socket

from repro.core.errors import ReproError
from repro.server.protocol import MAX_FRAME, encode_frame, read_frame_sync


class ClientError(ReproError):
    """The connection died or the reply stream ended unexpectedly."""


class ServerReplyError(ReproError):
    """An ``ok: false`` reply, surfaced as an exception.

    Carries the server's structured error: :attr:`type` and
    :attr:`reply` (the full frame).
    """

    def __init__(self, reply: dict) -> None:
        error = reply.get("error") or {}
        self.type = error.get("type", "unknown")
        self.reply = reply
        super().__init__(f"{self.type}: {error.get('message', '')}")


class ReproClient:
    """One connection to a :class:`~repro.server.server.ReproServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 60.0,
        max_frame: int = MAX_FRAME,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._max_frame = max_frame
        self._next_id = 0
        self._replies: dict[int, dict] = {}
        #: server-pushed watch events, in arrival order
        self.events: list[dict] = []
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for part in (self._wfile, self._rfile, self._sock):
            try:
                part.close()
            except OSError:
                pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- pipelined sends ----------------------------------------------------

    def send(self, op: str, **fields) -> int:
        """Fire one op without waiting; returns its request id."""
        self._next_id += 1
        rid = self._next_id
        frame = {"op": op, "id": rid, **fields}
        self._wfile.write(encode_frame(frame, self._max_frame))
        self._wfile.flush()
        return rid

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes (protocol-abuse helper for the test suite)."""
        self._wfile.write(data)
        self._wfile.flush()

    def wait(self, rid: int, check: bool = True) -> dict:
        """Block until the reply for ``rid`` arrives; buffer everything else."""
        while rid not in self._replies:
            frame = read_frame_sync(self._rfile, self._max_frame)
            if frame is None:
                raise ClientError(
                    f"connection closed while waiting for reply {rid}"
                )
            if "event" in frame:
                self.events.append(frame)
                continue
            key = frame.get("id")
            if key is None:
                # an unsolicited error frame (bad payload / fatal framing)
                if frame.get("fatal"):
                    raise ServerReplyError(frame)
                self._replies[-len(self._replies) - 1] = frame
                continue
            self._replies[key] = frame
        reply = self._replies.pop(rid)
        if check and not reply.get("ok", False):
            raise ServerReplyError(reply)
        return reply

    def read_frame(self) -> dict | None:
        """Read one raw frame (events included); ``None`` on EOF."""
        frame = read_frame_sync(self._rfile, self._max_frame)
        if frame is not None and "event" in frame:
            self.events.append(frame)
        return frame

    def take_events(self) -> list[dict]:
        """Hand over the buffered watch events (clears the buffer)."""
        events, self.events = self.events, []
        return events

    # -- request/response ---------------------------------------------------

    def call(self, op: str, check: bool = True, **fields) -> dict:
        """Send one op and block for its reply."""
        return self.wait(self.send(op, **fields), check=check)

    # -- op conveniences (the CLI --connect surface) ------------------------

    def execute(
        self,
        query: str | None = None,
        *,
        handle: int | None = None,
        semantics: str = "fin",
        method: str = "auto",
        check: bool = True,
    ) -> dict:
        fields: dict = {"semantics": semantics, "method": method}
        if handle is not None:
            fields = {"handle": handle}
        else:
            fields["query"] = query
        return self.call("execute", check=check, **fields)

    def answers(
        self,
        query: str | None = None,
        free_vars: list[str] | None = None,
        *,
        handle: int | None = None,
        semantics: str = "fin",
        check: bool = True,
    ) -> dict:
        if handle is not None:
            return self.call("answers", check=check, handle=handle)
        return self.call(
            "answers",
            check=check,
            query=query,
            free_vars=list(free_vars or []),
            semantics=semantics,
        )

    def prepare(self, query: str, free_vars=None, **fields) -> int:
        reply = self.call(
            "prepare",
            query=query,
            **({"free_vars": list(free_vars)} if free_vars is not None else {}),
            **fields,
        )
        return reply["handle"]

    def assert_facts(self, facts: str, check: bool = True) -> dict:
        return self.call("assert", check=check, facts=facts)

    def retract_facts(self, facts: str, check: bool = True) -> dict:
        return self.call("retract", check=check, facts=facts)

    def batch(self, lines: list[str], check: bool = True) -> dict:
        return self.call("batch", check=check, lines=list(lines))

    def watch(self, query: str, free_vars: list[str], **fields) -> dict:
        return self.call(
            "watch", query=query, free_vars=list(free_vars), **fields
        )

    def stats(self) -> dict:
        return self.call("stats")

    def ping(self) -> dict:
        return self.call("ping")


__all__ = ["ClientError", "ReproClient", "ServerReplyError"]
