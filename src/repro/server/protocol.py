"""Wire protocol for the serving tier: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding a single object.  The JSON bodies
reuse the CLI's ``--json`` wire shapes (``repro.cli._result_payload``,
batch rows, watch steps), so a scripted consumer of ``repro query
--json`` reads server replies with the same code.

Requests are objects with an ``op`` field and an optional caller-chosen
``id`` echoed back on the reply::

    {"op": "execute", "id": 7, "query": "Boot(a) & a < b & Crash(b)"}

Replies carry ``ok`` plus either the op's payload or a structured
``error``, and a server-assigned global ``seq`` — the position of the
op in the server's single serialization order (what makes the
concurrent-equals-sequential differential checkable)::

    {"id": 7, "seq": 42, "ok": true, "entailed": true, "method": "seq"}
    {"id": 7, "seq": 43, "ok": false,
     "error": {"type": "parse", "message": "..."}}

Server-pushed frames (``watch`` deltas) have an ``event`` field instead
of ``id``; clients must tolerate them between any two replies.

Replica extensions (``repro serve --replica-of``) ride the same frames:

* every reply from a replica — ok or error — additionally carries
  ``applied_seq``, the primary ``seq`` of the last WAL record the
  replica's session has applied (its read-your-writes token);
* read requests may carry ``min_seq``: a replica whose ``applied_seq``
  is still below it answers with a structured :class:`ReplicaLagging`
  error instead of serving stale state (primaries ignore the field);
* write/watch/prepare ops sent to a replica get a structured
  :class:`ReadOnly` error — those ops belong to the primary.

Both replica errors keep the connection open: they are routing signals
for :class:`~repro.server.client.ReplicaRouter`, not protocol damage.

Failure taxonomy — the split every handler relies on:

* :class:`PayloadError` — the *frame* was well-formed but its body was
  not (bad JSON, not an object).  The stream is still in sync, so the
  server answers with a structured error reply and keeps the
  connection.
* :class:`FrameError` — the framing itself broke (oversized length
  prefix, truncated frame).  Frame boundaries are now unknowable, so
  the connection must close — after a best-effort error frame.
"""

from __future__ import annotations

import asyncio
import json
import struct

from repro.core.errors import ReproError

#: Frame prefix: payload byte length, big-endian (network order).
_PREFIX = struct.Struct("!I")

#: Default inbound/outbound frame-size cap.  Generous for answer sets,
#: far below anything a framing desync could ask us to allocate.
MAX_FRAME = 4 * 1024 * 1024


class ProtocolError(ReproError):
    """Base class for wire-protocol failures."""


class FrameError(ProtocolError):
    """Framing broke (oversize/truncated): the connection must close."""


class PayloadError(ProtocolError):
    """A well-framed but undecodable body: reply with an error, keep going."""


class ReadOnly(ProtocolError):
    """A write/watch/prepare op reached a read-only replica.

    Surfaced to clients as an ``ok: false`` reply with error type
    ``"ReadOnly"``; the router reacts by sending the op to the primary.
    """


class ReplicaLagging(ProtocolError):
    """A read's ``min_seq`` is ahead of the replica's ``applied_seq``.

    Surfaced as error type ``"ReplicaLagging"``; the router reacts by
    backing off and retrying, or falling back to the primary once its
    bounded wait expires.  Serving the read anyway would break
    read-your-writes.
    """


def encode_frame(payload: dict, max_frame: int = MAX_FRAME) -> bytes:
    """Serialize one JSON object into a length-prefixed frame."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    if len(body) > max_frame:
        raise FrameError(
            f"outbound frame of {len(body)} bytes exceeds the "
            f"{max_frame}-byte cap"
        )
    return _PREFIX.pack(len(body)) + body


def _decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PayloadError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise PayloadError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


async def read_frame_async(reader, max_frame: int = MAX_FRAME) -> dict | None:
    """Read one frame from an :mod:`asyncio` stream reader.

    Returns ``None`` on clean EOF (no bytes mid-frame).  Raises
    :class:`FrameError` on an oversized length or a truncated frame,
    :class:`PayloadError` on an undecodable body.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-frame") from exc
    (length,) = _PREFIX.unpack(prefix)
    if length > max_frame:
        raise FrameError(
            f"inbound frame of {length} bytes exceeds the "
            f"{max_frame}-byte cap"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    return _decode_body(body)


def read_frame_sync(rfile, max_frame: int = MAX_FRAME) -> dict | None:
    """Read one frame from a blocking binary file (client side).

    Same contract as :func:`read_frame_async`.
    """
    prefix = rfile.read(_PREFIX.size)
    if not prefix:
        return None
    if len(prefix) < _PREFIX.size:
        raise FrameError("connection closed mid-frame")
    (length,) = _PREFIX.unpack(prefix)
    if length > max_frame:
        raise FrameError(
            f"inbound frame of {length} bytes exceeds the "
            f"{max_frame}-byte cap"
        )
    body = rfile.read(length)
    if len(body) < length:
        raise FrameError("connection closed mid-frame")
    return _decode_body(body)


__all__ = [
    "FrameError",
    "MAX_FRAME",
    "PayloadError",
    "ProtocolError",
    "ReadOnly",
    "ReplicaLagging",
    "encode_frame",
    "read_frame_async",
    "read_frame_sync",
]
