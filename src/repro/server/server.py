"""The serving tier: many client connections, one engine, one order.

:class:`ReproServer` is an :mod:`asyncio` socket front end that
multiplexes any number of concurrent client connections onto ONE shared
:class:`~repro.api.session.Session`.  The concurrency discipline is the
whole design:

* every parsed request is appended to a single FIFO **op queue**;
* one **engine loop** drains that queue and is the only code that ever
  touches the session — reads, writes, plan compilation, view
  refreshes all happen there, in global arrival order;
* each op is stamped with a global ``seq`` (its position in that
  order), so "N concurrent clients" is *defined* to equal "the one
  sequential stream obtained by sorting all ops by ``seq``" — and the
  test suite checks the equality byte for byte.

Inside one queue drain, maximal runs of consecutive reads execute as a
single :func:`~repro.engine.batch.execute_many` batch (documented
byte-for-byte identical to per-op execution), so concurrent clients get
the plan-group dedup and pooled minimal-model sweeps for free: while
the engine is busy, newly arrived frames buffer and form the next
batch — the same dynamic as WAL group commit, applied to reads.  With
``workers=N`` the batches additionally fan out over a persistent
:class:`~repro.engine.pool.DaemonPool`.

Robustness contract (each part tested in ``tests/test_server.py``):

* **backpressure** — a connection may have at most ``max_inflight``
  requests queued; its reader coroutine stops reading the socket until
  replies drain, so a flooding client throttles itself at the TCP layer
  instead of growing server memory;
* **structured errors** — a bad request (parse error, unknown handle,
  undecodable JSON body) gets an ``ok: false`` reply and the connection
  lives on; only a *framing* break (oversized/truncated frame) closes
  the connection, after a best-effort fatal error frame;
* **graceful drain** — on SIGTERM/SIGINT (or :meth:`ReproServer.drain`)
  the listener closes, every already-queued op is processed and its
  reply flushed, the WAL (if any) is closed — which fsyncs any open
  group-commit window — and only then do the connections close;
* **slow consumers** — replies and watch events are written by a
  per-connection writer coroutine reading from an outbox queue, so the
  engine never blocks on a slow client's socket; an outbox growing past
  its cap aborts that connection rather than the server.

**Replica mode** (``replica_of=path``): instead of owning a writable
session, the server hosts a read-only :class:`~repro.engine.wal.WalFollower`
session tailing a primary's WAL.  The engine loop polls the log before
every run (plus a background tick), so reads see the freshest applied
state; every reply carries ``applied_seq`` — the primary ``seq`` of the
last WAL mark applied — which is the client's read-your-writes token.
Write/watch/prepare ops are rejected with a structured ``ReadOnly``
error, and a read whose ``min_seq`` is ahead of ``applied_seq`` gets
``ReplicaLagging`` instead of stale data.  A primary with a WAL appends
one :class:`~repro.engine.wal.WalMark` after every acknowledged write
and a periodic heartbeat mark, which is also how replicas tell a quiet
primary from a dead one (``stats`` reports ``primary_alive``); on
start it resumes ``seq`` from the log's mark high-water, so the tokens
replicas and routed clients already hold stay meaningful across a
primary restart.

Fault sites (:mod:`repro.engine.faults`): ``server.conn.drop`` severs a
connection at reply time — the harness for client-visible partial
failure; ``server.replica.lag`` skips a replica's WAL poll;
``server.replica.crash`` aborts every connection of a replica before a
reply — a simulated replica crash with instant supervised restart.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import signal
import threading
import time
from contextlib import suppress

from repro.api.session import Session
from repro.cli import _METHODS, _SEMANTICS, _parse_stream_line, _result_payload
from repro.core.sorts import objvar
from repro.engine import faults
from repro.engine.batch import Mutation, QueryRequest, execute_many, execute_stream
from repro.engine.views import MaterializedView
from repro.engine.wal import WalError, WalFollower
from repro.server.protocol import (
    MAX_FRAME,
    FrameError,
    PayloadError,
    ReadOnly,
    ReplicaLagging,
    encode_frame,
    read_frame_async,
)
from repro.substrate.parser import parse_database, parse_query, scan_order_names

#: The serving tier's logger (the ISSUE-specified operator surface).
log = logging.getLogger("repro.server")

#: Per-connection bound on queued-but-unanswered requests.
DEFAULT_MAX_INFLIGHT = 32

#: Most ops the engine loop pulls into one drain (and hence one
#: read-batching opportunity).
_ENGINE_RUN_CAP = 1024

#: Ops a replica cannot serve: anything that writes shared state or
#: subscribes to the primary's write path.  (``prepare`` is also here:
#: its handle would pin a plan on one replica while the router is free
#: to send the next read elsewhere.)
_PRIMARY_ONLY_OPS = frozenset(
    ("prepare", "release", "assert", "retract", "batch", "watch", "unwatch")
)


class _Connection:
    """Per-connection state: framing, flow control, namespaces."""

    def __init__(self, server: "ReproServer", reader, writer, cid: int) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.cid = cid
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.slots = asyncio.Semaphore(server.max_inflight)
        self.inflight = 0
        self.peak_inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        #: per-connection plan-handle namespace over the shared LRU
        self.handles: dict[int, QueryRequest] = {}
        self._handle_ids = itertools.count(1)
        #: per-connection watch subscriptions
        self.watches: dict[int, dict] = {}
        self._watch_ids = itertools.count(1)
        self.writer_task: asyncio.Task | None = None
        self.aborted = False
        # An outbox past this size means the client has stopped reading
        # while events keep flowing; drop it rather than buffer forever.
        self._outbox_cap = max(256, server.max_inflight * 4)

    async def acquire_slot(self) -> None:
        """Backpressure: block the reader until a reply slot frees up."""
        await self.slots.acquire()
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)
        self._idle.clear()

    def release_slot(self) -> None:
        self.slots.release()
        self.inflight -= 1
        if self.inflight <= 0:
            self._idle.set()

    async def wait_idle(self, timeout: float = 30.0) -> None:
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:  # pragma: no cover - engine wedged
            pass

    def push(self, frame: dict) -> None:
        """Enqueue one outbound frame (reply or event)."""
        if self.aborted:
            return
        if self.outbox.qsize() > self._outbox_cap:
            log.warning(
                "conn %d: outbox past %d frames (client not reading); "
                "dropping the connection",
                self.cid,
                self._outbox_cap,
            )
            self.abort()
            return
        self.outbox.put_nowait(frame)

    def abort(self) -> None:
        """Sever the connection immediately (fault path / slow consumer)."""
        if self.aborted:
            return
        self.aborted = True
        self.outbox.put_nowait(None)
        try:
            self.writer.transport.abort()
        except Exception:  # pragma: no cover - transport already gone
            pass

    def close_watches(self) -> None:
        for state in self.watches.values():
            state["view"].close()
        self.watches.clear()


class ReproServer:
    """One shared session behind a length-prefixed-JSON socket protocol.

    Construct with a live session (optionally WAL-attached), call
    :meth:`start` inside a running event loop, and either
    :meth:`run` (installs signal handlers, returns after drain) or
    await :meth:`wait_drained` yourself.  ``workers > 1`` routes read
    batches and ``batch`` streams over a persistent
    :class:`~repro.engine.pool.DaemonPool`.

    ``replica_of=path`` instead makes this a read-only replica: pass
    ``session=None`` — :meth:`start` builds the session from the WAL at
    ``path`` via :class:`~repro.engine.wal.WalFollower` and keeps it
    tailing the primary (see the module docstring for the consistency
    contract).
    """

    def __init__(
        self,
        session: Session | None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        wal=None,
        workers: int = 0,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_frame: int = MAX_FRAME,
        replica_of: str | None = None,
        poll_interval: float = 0.05,
        heartbeat_interval: float | None = 1.0,
        heartbeat_timeout: float = 5.0,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if replica_of is not None and wal is not None:
            raise ValueError("a server is a primary (wal=) or a replica "
                             "(replica_of=), not both")
        if replica_of is None and session is None:
            raise ValueError("a primary server needs a session")
        self.session = session
        self.host = host
        self.port = port
        self.wal = wal
        self.workers = workers
        self.max_inflight = max_inflight
        self.max_frame = max_frame
        self.replica_of = replica_of
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self._pool = None
        self._follower: WalFollower | None = None
        self._poll_task: asyncio.Task | None = None
        self._heartbeat_task: asyncio.Task | None = None
        # monotonic stamp of the last observed primary progress (marks
        # or applied records); replicas compare it to heartbeat_timeout
        self._primary_seen = 0.0
        self._primary_alive = True
        self._server: asyncio.AbstractServer | None = None
        self._engine_task: asyncio.Task | None = None
        self._queue: asyncio.Queue | None = None
        self._conns: set[_Connection] = set()
        self._conn_ids = itertools.count(1)
        self._seq = 0
        self._draining = False
        self._drained: asyncio.Event | None = None
        self.stats = {
            "connections": 0,
            "requests": 0,
            "errors": 0,
            "protocol_errors": 0,
            "read_batches": 0,
            "batched_reads": 0,
            "watch_events": 0,
            "conn_drops": 0,
        }
        if replica_of is not None:
            self.stats.update({"lag_skips": 0, "replica_crashes": 0})

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "ReproServer":
        """Bind the listener and start the engine loop."""
        self._queue = asyncio.Queue()
        self._drained = asyncio.Event()
        if self.replica_of is not None:
            self._follower = WalFollower(self.replica_of)
            self.session = self._follower.session
            self._primary_seen = time.monotonic()
            self._poll_task = asyncio.create_task(self._poll_loop())
        elif self.wal is not None:
            # A restarted primary must not hand out seq numbers the
            # replicas' applied_seq (which only ratchets upward) has
            # already passed — that would let the router's min_seq gate
            # pass trivially and serve pre-write state.  Resume from
            # the log's mark high-water, which attach() recovers and
            # compact() preserves across truncation.
            self._seq = max(self._seq, self.wal.last_mark_seq)
            if self.heartbeat_interval:
                # One mark up front so a replica attaching now already
                # has a liveness stamp, then the periodic heartbeat.
                self.wal.append_mark(self._seq)
                self._heartbeat_task = asyncio.create_task(
                    self._heartbeat_loop()
                )
        if self.workers > 1 and self._pool is None:
            from repro.engine.pool import DaemonPool

            self._pool = DaemonPool(self.session, workers=self.workers)
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._engine_task = asyncio.create_task(self._engine_loop())
        log.info(
            "serving on %s:%d (max_inflight=%d, workers=%d, wal=%s, "
            "replica_of=%s)",
            self.host,
            self.port,
            self.max_inflight,
            self.workers,
            getattr(self.wal, "path", None),
            self.replica_of,
        )
        return self

    async def run(self) -> None:
        """Start, serve until SIGTERM/SIGINT, drain, return."""
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.drain())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await self.wait_drained()

    async def wait_drained(self) -> None:
        assert self._drained is not None, "server not started"
        await self._drained.wait()

    async def drain(self) -> None:
        """Graceful shutdown: finish queued work, flush the WAL, close.

        Idempotent; concurrent callers all return once the drain
        completes.
        """
        if self._draining:
            await self.wait_drained()
            return
        self._draining = True
        log.info("drain: refusing new connections, finishing queued ops")
        assert self._server is not None and self._queue is not None
        self._server.close()
        await self._server.wait_closed()
        # Everything queued before the sentinel still executes and
        # replies; readers see _draining and refuse later frames.
        self._queue.put_nowait(None)
        if self._engine_task is not None:
            await self._engine_task
        # stop the background ticks BEFORE closing the WAL: a heartbeat
        # firing after close would append to a closed file
        for task in (self._poll_task, self._heartbeat_task):
            if task is not None:
                task.cancel()
                with suppress(asyncio.CancelledError):
                    await task
        if self.wal is not None:
            # closes the group-commit window too: every acknowledged
            # write is on disk before the process exits
            self.wal.close()
        if self._pool is not None:
            self._pool.close()
        for conn in list(self._conns):
            await conn.wait_idle()
            conn.close_watches()
            conn.outbox.put_nowait(None)
            if conn.writer_task is not None:
                try:
                    await asyncio.wait_for(conn.writer_task, 30)
                except asyncio.TimeoutError:  # pragma: no cover
                    conn.writer_task.cancel()
            try:
                conn.writer.close()
                # the loop dies right after drain returns: without this
                # wait the close never flushes and clients see a socket
                # that is open but forever silent instead of EOF
                await asyncio.wait_for(conn.writer.wait_closed(), 5)
            except Exception:  # pragma: no cover
                pass
        log.info(
            "drained: %d requests (%d errors) over %d connections",
            self.stats["requests"] + self.stats["errors"],
            self.stats["errors"],
            self.stats["connections"],
        )
        self._drained.set()

    # -- connection handling ------------------------------------------------

    async def _on_connect(self, reader, writer) -> None:
        if self._draining:
            writer.close()
            return
        conn = _Connection(self, reader, writer, next(self._conn_ids))
        self._conns.add(conn)
        self.stats["connections"] += 1
        conn.writer_task = asyncio.create_task(self._writer_loop(conn))
        log.debug("conn %d: opened", conn.cid)
        try:
            await self._reader_loop(conn)
            # client went quiet (EOF or fatal frame): flush what it is
            # still owed before closing our side
            await conn.wait_idle()
        finally:
            if not self._draining:
                conn.close_watches()
                conn.outbox.put_nowait(None)
                if conn.writer_task is not None:
                    try:
                        await asyncio.wait_for(conn.writer_task, 30)
                    except asyncio.TimeoutError:  # pragma: no cover
                        conn.writer_task.cancel()
                try:
                    conn.writer.close()
                except Exception:  # pragma: no cover
                    pass
            self._conns.discard(conn)
            log.debug("conn %d: closed", conn.cid)

    async def _reader_loop(self, conn: _Connection) -> None:
        while True:
            try:
                req = await read_frame_async(conn.reader, self.max_frame)
            except PayloadError as exc:
                # well-framed garbage: structured error, keep reading
                self.stats["protocol_errors"] += 1
                conn.push({
                    "id": None,
                    "ok": False,
                    "error": {"type": "PayloadError", "message": str(exc)},
                })
                continue
            except FrameError as exc:
                # framing is out of sync: fatal error frame, then close
                self.stats["protocol_errors"] += 1
                conn.push({
                    "id": None,
                    "ok": False,
                    "fatal": True,
                    "error": {"type": "FrameError", "message": str(exc)},
                })
                return
            except (ConnectionError, OSError):
                return
            if req is None:
                return
            if self._draining:
                conn.push({
                    "id": req.get("id"),
                    "ok": False,
                    "error": {
                        "type": "Draining",
                        "message": "server is draining; no new requests",
                    },
                })
                continue
            await conn.acquire_slot()
            self._queue.put_nowait((conn, req))

    async def _writer_loop(self, conn: _Connection) -> None:
        try:
            while True:
                frame = await conn.outbox.get()
                if frame is None:
                    return
                conn.writer.write(encode_frame(frame, self.max_frame))
                await conn.writer.drain()
        except (ConnectionError, OSError):
            return

    # -- the engine loop ----------------------------------------------------

    async def _engine_loop(self) -> None:
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            if item is None:
                return
            # One yield lets every reader with buffered frames enqueue
            # them, so the drain below sees the whole burst as one run.
            await asyncio.sleep(0)
            run = [item]
            while len(run) < _ENGINE_RUN_CAP:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:  # drain sentinel: keep FIFO honesty
                    self._process_run(run)
                    return
                run.append(nxt)
            self._process_run(run)

    async def _poll_loop(self) -> None:
        """Replica background tick: tail the primary's WAL while idle."""
        while True:
            await asyncio.sleep(self.poll_interval)
            self._poll_follower()

    async def _heartbeat_loop(self) -> None:
        """Primary background tick: append a liveness/seq mark."""
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            try:
                self.wal.append_mark(self._seq)
            except WalError:  # pragma: no cover - closing race
                return

    def _poll_follower(self) -> None:
        """One replica poll (fault site ``server.replica.lag``)."""
        follower = self._follower
        if follower is None:
            return
        if faults.fire(faults.SITE_REPLICA_LAG) is not None:
            self.stats["lag_skips"] += 1
            return
        seq_before = follower.applied_seq
        wall_before = follower.last_mark_wall
        try:
            applied = follower.poll()
        except WalError as exc:  # keep serving the stale state
            log.warning("replica: poll failed (%s); serving stale state", exc)
            return
        if (
            applied
            or follower.applied_seq != seq_before
            or follower.last_mark_wall != wall_before
        ):
            self._primary_seen = time.monotonic()
        alive = (
            time.monotonic() - self._primary_seen <= self.heartbeat_timeout
        )
        if alive != self._primary_alive:
            self._primary_alive = alive
            if alive:
                log.info("replica: primary is back (heartbeats resumed)")
            else:
                log.warning(
                    "replica: no primary activity for %.1fs "
                    "(heartbeat_timeout=%.1fs); primary presumed dead, "
                    "still serving applied_seq=%d",
                    time.monotonic() - self._primary_seen,
                    self.heartbeat_timeout,
                    follower.applied_seq,
                )

    def _process_run(self, run: list[tuple[_Connection, dict]]) -> None:
        """Execute one drained run of ops, in arrival order.

        Maximal spans of consecutive reads become one
        :func:`execute_many` batch; everything else flushes the span
        first, so reply ``seq`` order equals arrival order exactly.
        """
        if self._follower is not None:
            # serve every run against the freshest applied state; the
            # min_seq gate below then decides per-op
            self._poll_follower()
        pending: list[tuple[_Connection, dict, QueryRequest]] = []
        for conn, req in run:
            op = req.get("op")
            if op in ("execute", "answers"):
                try:
                    request = self._resolve_read(conn, req)
                except Exception as exc:
                    self._flush_reads(pending)
                    pending = []
                    self._reply_error(conn, req, exc)
                else:
                    pending.append((conn, req, request))
                continue
            self._flush_reads(pending)
            pending = []
            self._process_one(conn, req, op)
        self._flush_reads(pending)

    def _flush_reads(self, pending) -> None:
        if not pending:
            return
        requests = [request for _, _, request in pending]
        try:
            if self._pool is not None and len(requests) > 1:
                self._pool.resnapshot(self.session)
                results = self._pool.execute_many(requests)
            else:
                results = execute_many(self.session, requests)
        except Exception:
            # batched execution failed somewhere mid-batch: replay the
            # span per-op so each request gets its own verdict or its
            # own error — exactly the sequential loop's behaviour
            for conn, req, request in pending:
                try:
                    result = request.prepare(self.session).execute()
                except Exception as exc:
                    self._reply_error(conn, req, exc)
                else:
                    self._reply(conn, req, _result_payload(result))
            return
        if len(requests) > 1:
            self.stats["read_batches"] += 1
            self.stats["batched_reads"] += len(requests)
        for (conn, req, _), result in zip(pending, results):
            self._reply(conn, req, _result_payload(result))

    # -- op dispatch --------------------------------------------------------

    def _process_one(self, conn: _Connection, req: dict, op) -> None:
        try:
            if self._follower is not None and op in _PRIMARY_ONLY_OPS:
                raise ReadOnly(
                    f"op {op!r} needs the primary: this server is a "
                    f"read-only replica of {self.replica_of}"
                )
            handler = {
                "prepare": self._op_prepare,
                "release": self._op_release,
                "assert": self._op_mutate,
                "retract": self._op_mutate,
                "batch": self._op_batch,
                "watch": self._op_watch,
                "unwatch": self._op_unwatch,
                "stats": self._op_stats,
                "ping": self._op_ping,
            }.get(op)
            if handler is None:
                raise PayloadError(f"unknown op {op!r}")
            payload = handler(conn, req)
        except Exception as exc:
            self._reply_error(conn, req, exc)
        else:
            self._reply(conn, req, payload)

    def _op_prepare(self, conn: _Connection, req: dict) -> dict:
        request = self._parse_read(req)
        request.prepare(self.session)  # compile now; errors surface here
        handle = next(conn._handle_ids)
        conn.handles[handle] = request
        return {
            "handle": handle,
            "open": request.free_vars is not None,
            "method": request.method,
        }

    def _op_release(self, conn: _Connection, req: dict) -> dict:
        handle = req.get("handle")
        return {"released": conn.handles.pop(handle, None) is not None}

    def _op_mutate(self, conn: _Connection, req: dict) -> dict:
        kind = "assert_facts" if req["op"] == "assert" else "retract_facts"
        text = req.get("facts")
        if not isinstance(text, str):
            raise PayloadError(f"op {req['op']!r} needs a 'facts' string")
        names = scan_order_names(text) | self.session.db.order_constants
        fragment = parse_database(text, extra_order=names)
        mutation = Mutation(kind, tuple(fragment.atoms()))
        mutation.apply(self.session)
        # the write's seq is assigned by _reply below; events about it
        # carry the same number and are pushed first
        self._notify_watches(self._seq + 1)
        return {"kind": kind, "applied": len(mutation.atoms)}

    def _op_batch(self, conn: _Connection, req: dict) -> dict:
        lines = req.get("lines")
        if not isinstance(lines, list) or not all(
            isinstance(l, str) for l in lines
        ):
            raise PayloadError("op 'batch' needs a 'lines' list of strings")
        names = set(self.session.db.order_constants)
        for line in lines:
            stripped = line.strip()
            for verb in ("assert:", "retract:"):
                if stripped.startswith(verb):
                    names |= scan_order_names(stripped[len(verb):])
        vocab = self.session.db
        for line in lines:
            stripped = line.strip()
            for verb in ("assert:", "retract:"):
                if stripped.startswith(verb):
                    vocab = vocab.union(
                        parse_database(stripped[len(verb):], extra_order=names)
                    )
        ops = []
        for line in lines:
            parsed = _parse_stream_line(line, vocab, names)
            if parsed is not None:
                ops.append(parsed)
        results = execute_stream(self.session, ops, pool=self._pool)
        rows = []
        for i, (parsed, result) in enumerate(zip(ops, results)):
            if isinstance(parsed, Mutation):
                rows.append({
                    "op": i,
                    "kind": parsed.kind,
                    "atoms": [str(a) for a in parsed.atoms],
                })
            else:
                rows.append({"op": i, "kind": "query", **_result_payload(result)})
        self._notify_watches(self._seq + 1)
        return {"mode": "stream", "ops": rows}

    def _op_watch(self, conn: _Connection, req: dict) -> dict:
        request = self._parse_read(req)
        if request.free_vars is None:
            raise PayloadError("op 'watch' needs a 'free_vars' list")
        view = MaterializedView(
            self.session,
            request.query,
            request.free_vars,
            semantics=request.semantics,
        )
        watch = next(conn._watch_ids)
        answers = view.answers()
        conn.watches[watch] = {"view": view, "last": answers}
        return {
            "watch": watch,
            "answers": sorted(list(a) for a in answers),
            "count": len(answers),
        }

    def _op_unwatch(self, conn: _Connection, req: dict) -> dict:
        state = conn.watches.pop(req.get("watch"), None)
        if state is not None:
            state["view"].close()
        return {"unwatched": state is not None}

    def _op_stats(self, conn: _Connection, req: dict) -> dict:
        payload = {
            **self.stats,
            "open_connections": len(self._conns),
            "conn_peak_inflight": conn.peak_inflight,
            "seq": self._seq,
            "pool_parallel": bool(self._pool is not None and self._pool.parallel),
            "role": "replica" if self._follower is not None else "primary",
        }
        if self._follower is not None:
            idle = time.monotonic() - self._primary_seen
            payload.update({
                "applied_seq": self._follower.applied_seq,
                "polls": self._follower.polls,
                "rebases": self._follower.rebases,
                "primary_alive": idle <= self.heartbeat_timeout,
                "primary_idle_s": round(idle, 3),
            })
        return payload

    def _op_ping(self, conn: _Connection, req: dict) -> dict:
        return {"pong": True}

    # -- watch fan-out ------------------------------------------------------

    def _notify_watches(self, seq: int) -> None:
        """Push delta events for every view the last write perturbed.

        Ordering contract: events for a write are enqueued *before* the
        write's own reply, both carrying the write's ``seq`` — a client
        that sees the reply has already seen every delta it caused.
        """
        for conn in self._conns:
            for watch, state in conn.watches.items():
                updated = state["view"].answers()
                last = state["last"]
                if updated == last:
                    continue
                state["last"] = updated
                self.stats["watch_events"] += 1
                conn.push({
                    "event": "watch",
                    "watch": watch,
                    "seq": seq,
                    "added": sorted(list(a) for a in updated - last),
                    "removed": sorted(list(a) for a in last - updated),
                    "count": len(updated),
                })

    # -- request parsing ----------------------------------------------------

    def _parse_read(self, req: dict) -> QueryRequest:
        """Build the :class:`QueryRequest` a read/prepare/watch op names."""
        text = req.get("query")
        if not isinstance(text, str):
            raise PayloadError(f"op {req.get('op')!r} needs a 'query' string")
        semantics = req.get("semantics", "fin")
        if semantics not in _SEMANTICS:
            raise PayloadError(f"unknown semantics {semantics!r}")
        method = req.get("method", "auto")
        if method not in _METHODS:
            raise PayloadError(f"unknown method {method!r}")
        free = req.get("free_vars")
        if req.get("op") == "answers" and free is None:
            free = []
        if free is not None:
            if not isinstance(free, list) or not all(
                isinstance(n, str) for n in free
            ):
                raise PayloadError("'free_vars' must be a list of names")
            free_vars = tuple(objvar(n) for n in free)
        else:
            free_vars = None
        query = parse_query(text, self.session.db)
        return QueryRequest(
            query, _SEMANTICS[semantics], method, free_vars=free_vars
        )

    def _resolve_read(self, conn: _Connection, req: dict) -> QueryRequest:
        if self._follower is not None:
            min_seq = req.get("min_seq") or 0
            if min_seq > self._follower.applied_seq:
                # serving now would hand the client state older than its
                # own last write: refuse, let the router wait or fall back
                raise ReplicaLagging(
                    f"replica applied_seq={self._follower.applied_seq} "
                    f"is behind min_seq={min_seq}"
                )
        if "handle" in req:
            handle = req["handle"]
            try:
                request = conn.handles[handle]
            except KeyError:
                raise PayloadError(f"unknown plan handle {handle!r}") from None
        else:
            request = self._parse_read(req)
        # validate now: the batched path must raise (as an error reply)
        # exactly where a sequential per-op loop would
        request.prepare(self.session).validate()
        return request

    # -- replies ------------------------------------------------------------

    def _reply(self, conn: _Connection, req: dict, payload: dict) -> None:
        self._seq += 1
        self.stats["requests"] += 1
        if self.wal is not None and req.get("op") in ("assert", "retract", "batch"):
            # mark AFTER the write's own records: a replica that has
            # applied the mark has applied everything seq covers.  Even
            # if the reply below is lost (conn.drop), the write
            # happened, so the mark must stand.
            try:
                self.wal.append_mark(self._seq)
            except WalError:  # pragma: no cover - closing race
                pass
        rule = faults.fire(faults.SITE_CONN_DROP)
        if rule is not None:
            self.stats["conn_drops"] += 1
            log.warning(
                "fault server.conn.drop: severing conn %d before reply seq=%d",
                conn.cid,
                self._seq,
            )
            conn.release_slot()
            conn.abort()
            return
        if self._replica_crashed(conn):
            return
        frame = {"id": req.get("id"), "seq": self._seq, "ok": True, **payload}
        if self._follower is not None:
            frame["applied_seq"] = self._follower.applied_seq
        conn.push(frame)
        conn.release_slot()

    def _reply_error(self, conn: _Connection, req: dict, exc: Exception) -> None:
        self._seq += 1
        self.stats["errors"] += 1
        log.debug(
            "conn %d: op %r failed: %s", conn.cid, req.get("op"), exc
        )
        if self._replica_crashed(conn):
            return
        frame = {
            "id": req.get("id"),
            "seq": self._seq,
            "ok": False,
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }
        if self._follower is not None:
            frame["applied_seq"] = self._follower.applied_seq
        conn.push(frame)
        conn.release_slot()

    def _replica_crashed(self, conn: _Connection) -> bool:
        """Fault site ``server.replica.crash``: die right before a reply.

        Aborts *every* open connection — clients see the whole replica
        go away mid-stream, exactly like a process crash — while the
        listener stays up, which doubles as an instant supervised
        restart (the follower session, like a real restart's recovery,
        carries on from the WAL).
        """
        if self._follower is None:
            return False
        rule = faults.fire(faults.SITE_REPLICA_CRASH)
        if rule is None:
            return False
        self.stats["replica_crashes"] += 1
        log.warning(
            "fault server.replica.crash: aborting %d connection(s) "
            "before reply seq=%d",
            len(self._conns),
            self._seq,
        )
        conn.release_slot()
        for other in list(self._conns):
            other.abort()
        return True


class ServerThread:
    """A :class:`ReproServer` on a private event loop in a daemon thread.

    The blocking-world adapter used by the CLI tests, the benchmark
    harness and any caller that is not itself async::

        thread = ServerThread(session)
        host, port = thread.start()
        ...ReproClient(host, port)...
        thread.shutdown()          # graceful drain, then join

    The session must not be touched by other threads while the server
    runs — the engine loop is its single writer *and* single reader.
    """

    def __init__(self, session: Session | None, **kwargs) -> None:
        self._session = session
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.server: ReproServer | None = None
        self._thread = threading.Thread(
            target=self._main, name="repro-server", daemon=True
        )

    def start(self) -> tuple[str, int]:
        self._thread.start()
        self._ready.wait(30)
        if self._error is not None:
            raise self._error
        if self.server is None:  # pragma: no cover - startup wedged
            raise RuntimeError("server thread failed to start")
        return self.server.host, self.server.port

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - surfaced in start()
            self._error = exc
        finally:
            self._ready.set()

    async def _amain(self) -> None:
        self.server = ReproServer(self._session, **self._kwargs)
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.wait_drained()

    def shutdown(self, timeout: float = 60.0) -> None:
        """Request a graceful drain and join the thread (idempotent)."""
        if (
            self.server is not None
            and self._loop is not None
            and self._thread.is_alive()
        ):
            self._loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self.server.drain())
            )
        self._thread.join(timeout)


__all__ = [
    "DEFAULT_MAX_INFLIGHT",
    "ReproServer",
    "ServerThread",
]
