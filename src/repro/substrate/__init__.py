"""Dependency-free graph/matching substrate under the order-graph machinery.

Modules:

* :mod:`repro.substrate.digraph` — directed graphs with an interned bitset
  index; reachability, SCC condensation and transitive closure run as
  word-parallel bitmask sweeps (see the module's "Performance notes").
* :mod:`repro.substrate.matching` — Hopcroft–Karp matching and König
  covers, the substrate for Dilworth-style width computation.
* :mod:`repro.substrate.parser` — the textual atom/database/query parser.
* :mod:`repro.substrate.reference` — the retained naive (seed) algorithms
  plus :func:`~repro.substrate.reference.naive_mode`, used by differential
  tests and by ``benchmarks/run_benchmarks.py`` for before/after numbers.
"""
