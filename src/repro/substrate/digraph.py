"""From-scratch directed-graph utilities used by the order-graph machinery.

Deliberately minimal and dependency-free: vertices are arbitrary hashable
objects, edges are stored as adjacency sets.  Provides exactly the
operations the paper's constructions need — reachability, strongly connected
components (for normalization rule N1), topological sorting, and transitive
closure (for fullness and width).

Performance notes
-----------------

All reachability-style queries run on an *interned bitset index*: vertices
are assigned consecutive integer ids and each adjacency row becomes a single
Python ``int`` bitmask, so set unions over vertex rows cost one word-level
``OR`` per 64 vertices instead of per-element hashing.  The index is rebuilt
lazily — every mutating method bumps :attr:`version`, and the next query
re-interns only if the version moved.  On top of the index:

* :meth:`reachable_from` is a frontier BFS over bitmasks;
* :meth:`condensation` is one iterative Tarjan pass over integer ids whose
  output order is reverse-topological, which lets
* :meth:`closure_masks` compute the whole transitive closure with a single
  dynamic-programming sweep over the condensation (no per-vertex DFS).

The public API is unchanged and still set-based; the bitmask layer is an
internal substrate that :class:`repro.core.ordergraph.OrderGraph` also taps
directly (via :meth:`bit_index`, :meth:`closure_masks`, :meth:`condensation`
and :meth:`set_from_mask`) for its cached derived relations.  The naive
set-based algorithms are retained in :mod:`repro.substrate.reference` as a
differential-testing and benchmarking baseline.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

Vertex = Hashable


class Digraph:
    """A simple directed graph over hashable vertices."""

    def __init__(self) -> None:
        self._succ: dict[Vertex, set[Vertex]] = {}
        self._pred: dict[Vertex, set[Vertex]] = {}
        self._version = 0
        # lazily (re)built bitset index — valid while versions match
        self._bits_version = -1
        self._verts: list[Vertex] = []
        self._index: dict[Vertex, int] = {}
        self._succ_masks: list[int] = []
        self._pred_masks: list[int] = []
        # derived caches keyed on _version
        self._closure_version = -1
        self._closure_masks: list[int] = []
        self._cond_version = -1
        self._cond: tuple[list[int], list[list[int]]] = ([], [])

    # -- construction -----------------------------------------------------

    @property
    def version(self) -> int:
        """Generation counter: bumped by every structural mutation."""
        return self._version

    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v`` (idempotent)."""
        if v not in self._succ:
            fresh = self._bits_version == self._version
            self._succ[v] = set()
            self._pred[v] = set()
            self._version += 1
            if fresh:
                # extend the interning in place instead of rebuilding
                self._index[v] = len(self._verts)
                self._verts.append(v)
                self._succ_masks.append(0)
                self._pred_masks.append(0)
                self._bits_version = self._version

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add edge ``u -> v`` (idempotent), adding endpoints as needed."""
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._succ[u]:
            fresh = self._bits_version == self._version
            self._succ[u].add(v)
            self._pred[v].add(u)
            self._version += 1
            if fresh:
                ui, vi = self._index[u], self._index[v]
                self._succ_masks[ui] |= 1 << vi
                self._pred_masks[vi] |= 1 << ui
                self._bits_version = self._version

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete edge ``u -> v`` if present; the endpoints remain."""
        if u in self._succ and v in self._succ[u]:
            fresh = self._bits_version == self._version
            self._succ[u].discard(v)
            self._pred[v].discard(u)
            self._version += 1
            if fresh:
                ui, vi = self._index[u], self._index[v]
                self._succ_masks[ui] &= ~(1 << vi)
                self._pred_masks[vi] &= ~(1 << ui)
                self._bits_version = self._version

    def copy(self) -> "Digraph":
        """An independent copy of this graph."""
        g = Digraph()
        g._succ = {v: set(s) for v, s in self._succ.items()}
        g._pred = {v: set(s) for v, s in self._pred.items()}
        g._version = 1
        return g

    def induced_subgraph(self, keep: "set[Vertex]") -> "Digraph":
        """The subgraph induced by ``keep`` (absent vertices ignored)."""
        g = Digraph()
        g._succ = {v: self._succ[v] & keep for v in self._succ if v in keep}
        g._pred = {v: self._pred[v] & keep for v in self._pred if v in keep}
        g._version = 1
        return g

    def remove_vertex(self, v: Vertex) -> None:
        """Delete ``v`` and all incident edges."""
        if v not in self._succ:
            return
        for u in self._pred.pop(v, set()):
            self._succ[u].discard(v)
        for w in self._succ.pop(v, set()):
            self._pred[w].discard(v)
        self._version += 1

    # -- inspection --------------------------------------------------------

    @property
    def vertices(self) -> set[Vertex]:
        """The vertex set (a fresh set)."""
        return set(self._succ)

    def successors(self, v: Vertex) -> set[Vertex]:
        """Direct successors of ``v``."""
        return set(self._succ.get(v, ()))

    def predecessors(self, v: Vertex) -> set[Vertex]:
        """Direct predecessors of ``v``."""
        return set(self._pred.get(v, ()))

    def edges(self) -> Iterable[tuple[Vertex, Vertex]]:
        """Iterate over all edges ``(u, v)``."""
        for u, vs in self._succ.items():
            for v in vs:
                yield (u, v)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    # -- bitset index -------------------------------------------------------

    def _ensure_bits(self) -> None:
        if self._bits_version == self._version:
            return
        verts = list(self._succ)
        index = {v: i for i, v in enumerate(verts)}
        succ_masks = []
        pred_masks = []
        for v in verts:
            m = 0
            for w in self._succ[v]:
                m |= 1 << index[w]
            succ_masks.append(m)
            m = 0
            for w in self._pred[v]:
                m |= 1 << index[w]
            pred_masks.append(m)
        self._verts = verts
        self._index = index
        self._succ_masks = succ_masks
        self._pred_masks = pred_masks
        self._bits_version = self._version

    def bit_index(self) -> tuple[list[Vertex], dict[Vertex, int]]:
        """The interned vertex list and its inverse (stable per version)."""
        self._ensure_bits()
        return self._verts, self._index

    def set_from_mask(self, mask: int) -> set[Vertex]:
        """Decode a bitmask over the current interning into a vertex set."""
        self._ensure_bits()
        verts = self._verts
        out: set[Vertex] = set()
        while mask:
            low = mask & -mask
            out.add(verts[low.bit_length() - 1])
            mask ^= low
        return out

    def mask_from(self, sources: Iterable[Vertex]) -> int:
        """Encode the present members of ``sources`` as a bitmask."""
        self._ensure_bits()
        index = self._index
        m = 0
        for s in sources:
            i = index.get(s)
            if i is not None:
                m |= 1 << i
        return m

    def reachable_mask(self, src_mask: int, reverse: bool = False) -> int:
        """Bitmask of vertices reachable from ``src_mask`` (sources included).

        With ``reverse=True``, follows edges backwards (co-reachability).
        """
        self._ensure_bits()
        masks = self._pred_masks if reverse else self._succ_masks
        seen = src_mask
        frontier = src_mask
        while frontier:
            nxt = 0
            m = frontier
            while m:
                low = m & -m
                nxt |= masks[low.bit_length() - 1]
                m ^= low
            frontier = nxt & ~seen
            seen |= frontier
        return seen

    # -- algorithms ---------------------------------------------------------

    def reachable_from(self, sources: Iterable[Vertex]) -> set[Vertex]:
        """Vertices reachable from ``sources`` (including the sources)."""
        return self.set_from_mask(self.reachable_mask(self.mask_from(sources)))

    def sources(self) -> set[Vertex]:
        """Vertices with no incoming edge (the paper's *minimal* vertices)."""
        return {v for v, ps in self._pred.items() if not ps}

    def sinks(self) -> set[Vertex]:
        """Vertices with no outgoing edge."""
        return {v for v, ss in self._succ.items() if not ss}

    def condensation(self) -> tuple[list[int], list[list[int]]]:
        """SCC condensation over interned ids: ``(comp_of, comps)``.

        ``comp_of[vid]`` is the component id of vertex id ``vid``;
        ``comps`` lists each component's member ids in Tarjan emission
        order, which is *reverse topological* on the condensation — every
        component appears before all components that can reach it, so a
        single forward sweep over ``comps`` visits successors first.
        """
        if self._cond_version == self._version:
            return self._cond
        self._ensure_bits()
        n = len(self._verts)
        index_of = self._index
        succ_ids = [
            [index_of[w] for w in self._succ[v]] for v in self._verts
        ]
        index = [-1] * n
        low = [0] * n
        on_stack = [False] * n
        stack: list[int] = []
        comps: list[list[int]] = []
        comp_of = [-1] * n
        counter = 0
        for root in range(n):
            if index[root] != -1:
                continue
            work: list[tuple[int, int]] = [(root, 0)]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                v, i = work[-1]
                if i < len(succ_ids[v]):
                    work[-1] = (v, i + 1)
                    w = succ_ids[v][i]
                    if index[w] == -1:
                        index[w] = low[w] = counter
                        counter += 1
                        stack.append(w)
                        on_stack[w] = True
                        work.append((w, 0))
                    elif on_stack[w] and index[w] < low[v]:
                        low[v] = index[w]
                else:
                    work.pop()
                    if low[v] == index[v]:
                        members: list[int] = []
                        while True:
                            w = stack.pop()
                            on_stack[w] = False
                            comp_of[w] = len(comps)
                            members.append(w)
                            if w == v:
                                break
                        comps.append(members)
                    if work:
                        parent = work[-1][0]
                        if low[v] < low[parent]:
                            low[parent] = low[v]
        self._cond = (comp_of, comps)
        self._cond_version = self._version
        return self._cond

    def strongly_connected_components(self) -> list[set[Vertex]]:
        """The SCCs as vertex sets (reverse-topological component order)."""
        _comp_of, comps = self.condensation()
        verts = self._verts
        return [{verts[i] for i in members} for members in comps]

    def topological_order(self) -> list[Vertex]:
        """Kahn's algorithm; raises ``ValueError`` if the graph has a cycle."""
        indeg = {v: len(ps) for v, ps in self._pred.items()}
        queue = deque(sorted((v for v, d in indeg.items() if d == 0), key=repr))
        order: list[Vertex] = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in sorted(self._succ[u], key=repr):
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if len(order) != len(self._succ):
            raise ValueError("graph has a cycle; no topological order exists")
        return order

    def is_acyclic(self) -> bool:
        """True when the graph is a dag."""
        _comp_of, comps = self.condensation()
        if any(len(members) > 1 for members in comps):
            return False
        return all(v not in self._succ[v] for v in self._succ)

    def closure_masks(self) -> list[int]:
        """Per-vertex-id transitive-closure bitmasks (strict reachability).

        ``closure_masks()[vid]`` has bit ``wid`` set iff there is a
        nonempty path from vertex ``vid`` to vertex ``wid``; a vertex sees
        itself only when it lies on a cycle.  Computed by one DP sweep over
        the condensation (successor components first), so the whole closure
        costs O(V·E / wordsize) instead of a DFS per vertex.
        """
        if self._closure_version == self._version:
            return self._closure_masks
        self._ensure_bits()
        masks = self._succ_masks
        comp_of, comps = self.condensation()
        comp_mask = []
        for members in comps:
            m = 0
            for vid in members:
                m |= 1 << vid
            comp_mask.append(m)
        comp_down = [0] * len(comps)  # component + everything below it
        closure = [0] * len(self._verts)
        for cid, members in enumerate(comps):  # successors come first
            out = 0
            cm = comp_mask[cid]
            cyclic = len(members) > 1
            for vid in members:
                bit = 1 << vid
                if not cyclic and masks[vid] & bit:
                    cyclic = True  # self-loop
                ext = masks[vid] & ~cm & ~out
                while ext:
                    low = ext & -ext
                    down = comp_down[comp_of[low.bit_length() - 1]]
                    out |= down
                    ext &= ~out
            comp_down[cid] = cm | out
            member_closure = out | (cm if cyclic else 0)
            for vid in members:
                closure[vid] = member_closure
        self._closure_masks = closure
        self._closure_version = self._version
        return closure

    def transitive_closure(self) -> dict[Vertex, set[Vertex]]:
        """Map each vertex to the set of vertices strictly reachable from it.

        The vertex itself is included only if it lies on a cycle.
        """
        closure = self.closure_masks()
        verts = self._verts
        return {v: self.set_from_mask(closure[i]) for i, v in enumerate(verts)}
