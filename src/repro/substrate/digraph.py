"""From-scratch directed-graph utilities used by the order-graph machinery.

Deliberately minimal and dependency-free: vertices are arbitrary hashable
objects, edges are stored as adjacency sets.  Provides exactly the
operations the paper's constructions need — reachability, strongly connected
components (for normalization rule N1), topological sorting, and transitive
closure (for fullness and width).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

Vertex = Hashable


class Digraph:
    """A simple directed graph over hashable vertices."""

    def __init__(self) -> None:
        self._succ: dict[Vertex, set[Vertex]] = {}
        self._pred: dict[Vertex, set[Vertex]] = {}

    # -- construction -----------------------------------------------------

    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v`` (idempotent)."""
        self._succ.setdefault(v, set())
        self._pred.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add edge ``u -> v`` (idempotent), adding endpoints as needed."""
        self.add_vertex(u)
        self.add_vertex(v)
        self._succ[u].add(v)
        self._pred[v].add(u)

    def copy(self) -> "Digraph":
        """An independent copy of this graph."""
        g = Digraph()
        for v in self._succ:
            g.add_vertex(v)
        for u, vs in self._succ.items():
            for v in vs:
                g.add_edge(u, v)
        return g

    def remove_vertex(self, v: Vertex) -> None:
        """Delete ``v`` and all incident edges."""
        for u in self._pred.pop(v, set()):
            self._succ[u].discard(v)
        for w in self._succ.pop(v, set()):
            self._pred[w].discard(v)

    # -- inspection --------------------------------------------------------

    @property
    def vertices(self) -> set[Vertex]:
        """The vertex set (a fresh set)."""
        return set(self._succ)

    def successors(self, v: Vertex) -> set[Vertex]:
        """Direct successors of ``v``."""
        return set(self._succ.get(v, ()))

    def predecessors(self, v: Vertex) -> set[Vertex]:
        """Direct predecessors of ``v``."""
        return set(self._pred.get(v, ()))

    def edges(self) -> Iterable[tuple[Vertex, Vertex]]:
        """Iterate over all edges ``(u, v)``."""
        for u, vs in self._succ.items():
            for v in vs:
                yield (u, v)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    # -- algorithms ---------------------------------------------------------

    def reachable_from(self, sources: Iterable[Vertex]) -> set[Vertex]:
        """Vertices reachable from ``sources`` (including the sources)."""
        seen: set[Vertex] = set()
        stack = [s for s in sources if s in self._succ]
        seen.update(stack)
        while stack:
            u = stack.pop()
            for v in self._succ[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def sources(self) -> set[Vertex]:
        """Vertices with no incoming edge (the paper's *minimal* vertices)."""
        return {v for v, ps in self._pred.items() if not ps}

    def sinks(self) -> set[Vertex]:
        """Vertices with no outgoing edge."""
        return {v for v, ss in self._succ.items() if not ss}

    def strongly_connected_components(self) -> list[set[Vertex]]:
        """Tarjan's algorithm, iterative (order of components arbitrary)."""
        index: dict[Vertex, int] = {}
        low: dict[Vertex, int] = {}
        on_stack: set[Vertex] = set()
        stack: list[Vertex] = []
        result: list[set[Vertex]] = []
        counter = 0

        for root in self._succ:
            if root in index:
                continue
            # Iterative Tarjan: work items are (vertex, iterator position).
            work: list[tuple[Vertex, list[Vertex], int]] = [
                (root, sorted(self._succ[root], key=repr), 0)
            ]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                v, succs, i = work[-1]
                advanced = False
                while i < len(succs):
                    w = succs[i]
                    i += 1
                    if w not in index:
                        index[w] = low[w] = counter
                        counter += 1
                        stack.append(w)
                        on_stack.add(w)
                        work[-1] = (v, succs, i)
                        work.append((w, sorted(self._succ[w], key=repr), 0))
                        advanced = True
                        break
                    if w in on_stack:
                        low[v] = min(low[v], index[w])
                if advanced:
                    continue
                work.pop()
                if low[v] == index[v]:
                    component: set[Vertex] = set()
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.add(w)
                        if w == v:
                            break
                    result.append(component)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[v])
        return result

    def topological_order(self) -> list[Vertex]:
        """Kahn's algorithm; raises ``ValueError`` if the graph has a cycle."""
        indeg = {v: len(ps) for v, ps in self._pred.items()}
        queue = deque(sorted((v for v, d in indeg.items() if d == 0), key=repr))
        order: list[Vertex] = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in sorted(self._succ[u], key=repr):
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if len(order) != len(self._succ):
            raise ValueError("graph has a cycle; no topological order exists")
        return order

    def is_acyclic(self) -> bool:
        """True when the graph is a dag."""
        try:
            self.topological_order()
        except ValueError:
            return False
        return True

    def transitive_closure(self) -> dict[Vertex, set[Vertex]]:
        """Map each vertex to the set of vertices strictly reachable from it.

        The vertex itself is included only if it lies on a cycle.
        """
        closure: dict[Vertex, set[Vertex]] = {}
        for v in self._succ:
            reach = self.reachable_from(self._succ[v])
            closure[v] = reach
        return closure
