"""Hopcroft–Karp bipartite maximum matching, plus König vertex cover.

This is the substrate for computing database *width* (maximum antichain of
the order dag) via Dilworth's theorem: the width of a dag equals the size of
a maximum antichain, which by Mirsky/Dilworth duality can be computed as
``n - |maximum matching|`` in the bipartite *split graph* of the dag's
transitive closure, and the antichain itself is recovered from a König
minimum vertex cover.

Implemented from scratch (no networkx) per the reproduction ground rules.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping

Node = Hashable

_INF = float("inf")


def hopcroft_karp(
    left: Iterable[Node], adjacency: Mapping[Node, Iterable[Node]]
) -> dict[Node, Node]:
    """Maximum matching of a bipartite graph.

    Args:
        left: the left vertex set.
        adjacency: for each left vertex, its right neighbours.

    Returns:
        A dict mapping matched left vertices to their right partners.
    """
    left = list(left)
    adj = {u: list(adjacency.get(u, ())) for u in left}
    match_l: dict[Node, Node] = {}
    match_r: dict[Node, Node] = {}
    dist: dict[Node, float] = {}

    def bfs() -> bool:
        queue: deque[Node] = deque()
        for u in left:
            if u not in match_l:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                w = match_r.get(v)
                if w is None:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: Node) -> bool:
        for v in adj[u]:
            w = match_r.get(v)
            if w is None or (dist[w] == dist[u] + 1 and dfs(w)):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in left:
            if u not in match_l:
                dfs(u)
    return match_l


def koenig_vertex_cover(
    left: Iterable[Node],
    adjacency: Mapping[Node, Iterable[Node]],
    matching: Mapping[Node, Node],
) -> tuple[set[Node], set[Node]]:
    """Minimum vertex cover from a maximum matching (König's theorem).

    Returns:
        ``(cover_left, cover_right)`` — left/right vertices in the cover.

    The construction: let ``Z`` be the set of vertices reachable from
    unmatched left vertices by alternating paths (non-matching edges
    left-to-right, matching edges right-to-left).  The cover is
    ``(L \\ Z) u (R n Z)``.
    """
    left = list(left)
    adj = {u: list(adjacency.get(u, ())) for u in left}
    match_r = {v: u for u, v in matching.items()}

    z_left: set[Node] = {u for u in left if u not in matching}
    z_right: set[Node] = set()
    queue = deque(z_left)
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if matching.get(u) == v:
                continue  # only non-matching edges go left -> right
            if v not in z_right:
                z_right.add(v)
                w = match_r.get(v)
                if w is not None and w not in z_left:
                    z_left.add(w)
                    queue.append(w)

    cover_left = {u for u in left if u not in z_left}
    cover_right = set(z_right)
    return cover_left, cover_right


def maximum_antichain(
    vertices: Iterable[Node], reach: Mapping[Node, set[Node]]
) -> set[Node]:
    """A maximum antichain of a dag given its strict reachability relation.

    Args:
        vertices: all dag vertices.
        reach: ``reach[v]`` = vertices strictly reachable from ``v``.

    Returns:
        A maximum-cardinality set of pairwise unreachable vertices.

    Uses Dilworth via the split bipartite graph: left copy ``(v, 'L')``
    connects to right copy ``(w, 'R')`` when ``w in reach[v]``.  A maximum
    antichain is the complement of a minimum vertex cover projected back to
    the original vertices (a vertex is excluded if either copy is covered).
    """
    vertices = list(vertices)
    adjacency = {v: [w for w in reach.get(v, ())] for v in vertices}
    matching = hopcroft_karp(vertices, adjacency)
    cover_left, cover_right = koenig_vertex_cover(vertices, adjacency, matching)
    antichain = {
        v for v in vertices if v not in cover_left and v not in cover_right
    }
    return antichain
