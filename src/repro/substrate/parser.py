"""A small text DSL for databases and queries.

Database text is a sequence of atoms separated by ``;`` or newlines, with
optional sort declarations (``#`` starts a comment)::

    order: u1 u2 u3 u4
    object: A B
    IC(u1, u2, A); IC(u3, u4, B)
    u1 < u2; u2 < u3; u3 < u4

Query text is a disjunction (``|``) of conjunctions (``&``) of atoms; all
identifiers not declared as constants of the enclosing database are
variables::

    P(t1) & t1 < t2 & Q(t2) | R(s)

Sort inference: a name on either side of ``<``, ``<=`` or ``!=`` is order-
sorted; anything else defaults to object sort unless declared.  Inference
runs over the whole text first, so ``P(t) & t < s`` types ``t`` correctly
inside ``P(t)`` too.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.core.atoms import Atom, OrderAtom, ProperAtom, Rel
from repro.core.database import IndefiniteDatabase
from repro.core.errors import ParseError
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.core.sorts import Sort, Term

_NAME = r"[A-Za-z_][A-Za-z0-9_.']*"
_ATOM_RE = re.compile(rf"^({_NAME})\s*\(([^()]*)\)$")
_ORDER_RE = re.compile(rf"^({_NAME})\s*(<=|<|!=)\s*({_NAME})$")
_DECL_RE = re.compile(r"^(order|object)\s*:\s*(.*)$")

_REL_OF = {"<": Rel.LT, "<=": Rel.LE, "!=": Rel.NE}


def _statements(text: str) -> Iterable[str]:
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        for part in line.split(";"):
            part = part.strip()
            if part:
                yield part


def _infer_order_names(statements: list[str]) -> set[str]:
    order: set[str] = set()
    for stmt in statements:
        m = _ORDER_RE.match(stmt)
        if m:
            order.add(m.group(1))
            order.add(m.group(3))
    return order


def scan_order_names(text: str) -> set[str]:
    """Names appearing in an order atom anywhere in database text.

    Lets callers who assemble a database from several fragments (an
    initial file plus a stream of ``assert:`` lines, say) run sort
    inference over *all* of them before parsing any one: a constant that
    only a later fragment orders must already be order-sorted in the
    fragments that merely label it.  Pass the union to
    :func:`parse_database` as ``extra_order``.
    """
    return _infer_order_names(
        [s for s in _statements(text) if not _DECL_RE.match(s)]
    )


def parse_database(
    text: str, extra_order: Iterable[str] = ()
) -> IndefiniteDatabase:
    """Parse database text into an :class:`IndefiniteDatabase`.

    ``extra_order`` adds names to sort inference as if an order atom in
    ``text`` mentioned them (explicit ``order:``/``object:`` declarations
    still win); see :func:`scan_order_names`.
    """
    statements = list(_statements(text))
    declared: dict[str, Sort] = {}
    body: list[str] = []
    for stmt in statements:
        decl = _DECL_RE.match(stmt)
        if decl:
            sort = Sort.ORDER if decl.group(1) == "order" else Sort.OBJECT
            for name in decl.group(2).split():
                declared[name] = sort
        else:
            body.append(stmt)
    inferred_order = _infer_order_names(body) | set(extra_order)

    def term(name: str) -> Term:
        name = name.strip()
        if not re.fullmatch(_NAME, name):
            raise ParseError(f"invalid constant name {name!r}")
        sort = declared.get(
            name, Sort.ORDER if name in inferred_order else Sort.OBJECT
        )
        return Term(name, sort, is_var=False)

    atoms: list[Atom] = []
    for stmt in body:
        atoms.append(_parse_atom(stmt, term))
    return IndefiniteDatabase.from_atoms(atoms)


def parse_query(text: str, database: IndefiniteDatabase | None = None) -> DisjunctiveQuery:
    """Parse query text into a :class:`DisjunctiveQuery`.

    Names matching constants of ``database`` (when given) are parsed as
    constants of the corresponding sort; everything else is a variable.
    """
    db_objects = set(database.object_constants) if database else set()
    db_orders = set(database.order_constants) if database else set()
    signatures: dict[str, tuple[Sort, ...]] = {}
    if database is not None:
        for atom in database.proper_atoms:
            signatures[atom.pred] = tuple(t.sort for t in atom.args)

    disjunct_texts = [d.strip() for d in text.split("|")]
    if not any(disjunct_texts):
        raise ParseError("empty query text")

    disjuncts: list[ConjunctiveQuery] = []
    for dtext in disjunct_texts:
        stmts = [s.strip() for s in dtext.split("&") if s.strip()]
        if not stmts:
            raise ParseError(f"empty disjunct in query: {text!r}")
        # Two inference sources for variable sorts: order-atom occurrence,
        # and position in a predicate whose signature the database fixes.
        inferred_order = _infer_order_names(stmts)
        for stmt in stmts:
            m = _ATOM_RE.match(stmt)
            if not m:
                continue
            sig = signatures.get(m.group(1))
            if sig is None:
                continue
            args = [a.strip() for a in m.group(2).split(",") if a.strip()]
            for name, sort in zip(args, sig):
                if sort is Sort.ORDER:
                    inferred_order.add(name)

        def term(name: str) -> Term:
            if name in db_orders:
                return Term(name, Sort.ORDER, is_var=False)
            if name in db_objects:
                return Term(name, Sort.OBJECT, is_var=False)
            sort = Sort.ORDER if name in inferred_order else Sort.OBJECT
            return Term(name, sort, is_var=True)

        atoms = [_parse_atom(s, term) for s in stmts]
        disjuncts.append(ConjunctiveQuery.from_atoms(atoms))
    return DisjunctiveQuery(tuple(disjuncts))


def _parse_atom(stmt: str, term) -> Atom:
    order_match = _ORDER_RE.match(stmt)
    if order_match:
        left, rel, right = order_match.groups()
        lterm, rterm = term(left), term(right)
        if not (lterm.is_order and rterm.is_order):
            raise ParseError(
                f"order atom between non-order terms: {stmt!r} "
                "(declare the names with 'order:' or check the database)"
            )
        return OrderAtom(lterm, _REL_OF[rel], rterm)
    atom_match = _ATOM_RE.match(stmt)
    if atom_match:
        pred, arg_text = atom_match.groups()
        arg_names = [a.strip() for a in arg_text.split(",") if a.strip()]
        if not arg_names:
            raise ParseError(f"predicate with no arguments: {stmt!r}")
        return ProperAtom(pred, tuple(term(a) for a in arg_names))
    raise ParseError(f"cannot parse atom {stmt!r}")
