"""Naive reference algorithms retained for differential testing and benchmarks.

The bitset substrate in :mod:`repro.substrate.digraph` and the cached
derived relations in :mod:`repro.core.ordergraph` replaced the seed's
per-vertex DFS implementations.  Those original set-based algorithms are
kept here, verbatim in behaviour, so that

* the differential test-suite can assert the optimized substrate returns
  *identical* results on randomized graphs (including after mutations), and
* ``benchmarks/run_benchmarks.py`` can measure honest before/after numbers
  by re-running the same pipeline under :func:`naive_mode`.

:func:`naive_mode` flips a module-level switch consulted by
:class:`~repro.core.ordergraph.OrderGraph` and
:class:`~repro.core.regions.RegionCache`: while active, every reachability
and SCC/normalization query recomputes from scratch with the functions
below and the order-graph/region memoization is bypassed, reproducing the
seed's cost model.

This module deliberately imports nothing from :mod:`repro.core` — the
order-graph-level helpers take the underlying :class:`Digraph` plus the
list of '<'-labelled edge pairs, keeping the substrate layer closed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Hashable, Iterable, Iterator

from repro.substrate.digraph import Digraph

Vertex = Hashable

#: When True, OrderGraph and RegionCache route queries through the naive
#: implementations below and skip every cache.  Toggle via :func:`naive_mode`.
NAIVE = False


@contextmanager
def naive_mode() -> Iterator[None]:
    """Run the enclosed block on the naive, cache-free reference substrate."""
    global NAIVE
    previous = NAIVE
    NAIVE = True
    try:
        yield
    finally:
        NAIVE = previous


def naive_reachable_from(
    graph: Digraph, sources: Iterable[Vertex]
) -> set[Vertex]:
    """Vertices reachable from ``sources`` (the seed's stack-based DFS)."""
    seen: set[Vertex] = set()
    stack = [s for s in sources if s in graph]
    seen.update(stack)
    while stack:
        u = stack.pop()
        for v in graph.successors(u):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return seen


def naive_transitive_closure(graph: Digraph) -> dict[Vertex, set[Vertex]]:
    """Strict reachability per vertex, by one DFS per vertex (seed behaviour)."""
    return {
        v: naive_reachable_from(graph, graph.successors(v))
        for v in graph.vertices
    }


def naive_strict_reachability(
    graph: Digraph, lt_edges: Iterable[tuple[Vertex, Vertex]]
) -> dict[Vertex, set[Vertex]]:
    """'<'-tainted reachability via the seed's O(LT-edges × V) product loop.

    ``w`` is strictly reachable from ``v`` iff some edge ``(a, b)`` in
    ``lt_edges`` has ``a`` weakly reachable from ``v`` and ``w`` weakly
    reachable from ``b``.
    """
    reach = naive_transitive_closure(graph)
    weak = {v: reach[v] | {v} for v in reach}
    out: dict[Vertex, set[Vertex]] = {v: set() for v in weak}
    for a, b in lt_edges:
        for v in weak:
            if a in weak[v]:
                out[v].update(weak[b])
    return out


def naive_strongly_connected_components(
    graph: Digraph,
) -> list[set[Vertex]]:
    """The seed's iterative Tarjan over vertex objects (repr-sorted succs)."""
    index: dict[Vertex, int] = {}
    low: dict[Vertex, int] = {}
    on_stack: set[Vertex] = set()
    stack: list[Vertex] = []
    result: list[set[Vertex]] = []
    counter = 0

    for root in graph.vertices:
        if root in index:
            continue
        work: list[tuple[Vertex, list[Vertex], int]] = [
            (root, sorted(graph.successors(root), key=repr), 0)
        ]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, succs, i = work[-1]
            advanced = False
            while i < len(succs):
                w = succs[i]
                i += 1
                if w not in index:
                    index[w] = low[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack.add(w)
                    work[-1] = (v, succs, i)
                    work.append((w, sorted(graph.successors(w), key=repr), 0))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if low[v] == index[v]:
                component: set[Vertex] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == v:
                        break
                result.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
    return result


def naive_minor_vertices(
    graph: Digraph, lt_edges: Iterable[tuple[Vertex, Vertex]]
) -> set[Vertex]:
    """Vertices with no ascending path through a '<' edge ending in them."""
    lt_heads = {b for _a, b in lt_edges}
    tainted = naive_reachable_from(graph, lt_heads)
    return graph.vertices - tainted
