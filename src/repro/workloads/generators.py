"""Synthetic workload generators for tests and benchmarks.

The paper has no empirical section, so workloads are synthesized to
instantiate exactly the constructions it discusses:

* random monadic databases / queries over small predicate sets (the
  brute-force cross-validation harness);
* *k-observer* databases — disjoint unions of k linear chains, the
  paper's motivating example of width-k data (Section 2);
* gene-alignment instances (Example 1.2);
* random propositional workloads (monotone 3SAT, DNF, Pi2-QBF, graphs)
  feeding the lower-bound reductions of Sections 3, 4 and 7.

All generators take a ``random.Random`` so every test and benchmark is
reproducible from a seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.atoms import OrderAtom, ProperAtom, Rel
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.ordergraph import OrderGraph
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.flexiwords.flexiword import FlexiWord

DEFAULT_PREDS = ("P", "Q", "R")


def random_letter(
    rng: random.Random, preds: Sequence[str], empty_ok: bool = True
) -> frozenset[str]:
    """A random subset of ``preds`` (possibly empty unless ``empty_ok`` is False)."""
    while True:
        picked = frozenset(p for p in preds if rng.random() < 0.5)
        if picked or empty_ok:
            return picked


def random_flexiword(
    rng: random.Random,
    length: int,
    preds: Sequence[str] = DEFAULT_PREDS,
    le_prob: float = 0.3,
    empty_ok: bool = True,
) -> FlexiWord:
    """A random flexi-word of ``length`` letters."""
    letters = tuple(random_letter(rng, preds, empty_ok) for _ in range(length))
    rels = tuple(
        Rel.LE if rng.random() < le_prob else Rel.LT
        for _ in range(max(0, length - 1))
    )
    return FlexiWord(letters, rels)


def random_labeled_dag(
    rng: random.Random,
    n_vertices: int,
    preds: Sequence[str] = DEFAULT_PREDS,
    edge_prob: float = 0.3,
    le_prob: float = 0.3,
    empty_ok: bool = True,
    prefix: str = "u",
) -> LabeledDag:
    """A random labelled dag (edges only forward in a random vertex order)."""
    names = [f"{prefix}{i}" for i in range(n_vertices)]
    graph = OrderGraph()
    for name in names:
        graph.add_vertex(name)
    for i in range(n_vertices):
        for j in range(i + 1, n_vertices):
            if rng.random() < edge_prob:
                rel = Rel.LE if rng.random() < le_prob else Rel.LT
                graph.add_edge(names[i], names[j], rel)
    labels = {name: random_letter(rng, preds, empty_ok) for name in names}
    return LabeledDag(graph, labels)


def random_monadic_database(
    rng: random.Random,
    n_vertices: int,
    preds: Sequence[str] = DEFAULT_PREDS,
    edge_prob: float = 0.3,
    le_prob: float = 0.3,
) -> IndefiniteDatabase:
    """A random monadic :class:`IndefiniteDatabase`."""
    return random_labeled_dag(
        rng, n_vertices, preds, edge_prob, le_prob, empty_ok=True
    ).to_database()


def random_observer_dag(
    rng: random.Random,
    observers: int,
    chain_length: int,
    preds: Sequence[str] = DEFAULT_PREDS,
    le_prob: float = 0.2,
) -> LabeledDag:
    """A width-``observers`` database: one linear report per observer."""
    chains = [
        random_flexiword(rng, chain_length, preds, le_prob, empty_ok=False)
        for _ in range(observers)
    ]
    return LabeledDag.from_chains(chains)


def random_conjunctive_monadic_query(
    rng: random.Random,
    n_vars: int,
    preds: Sequence[str] = DEFAULT_PREDS,
    edge_prob: float = 0.4,
    le_prob: float = 0.3,
    empty_ok: bool = True,
) -> ConjunctiveQuery:
    """A random conjunctive monadic query as a random labelled dag."""
    dag = random_labeled_dag(
        rng, n_vars, preds, edge_prob, le_prob, empty_ok, prefix="t"
    )
    atoms: list = []
    for v, label in dag.labels.items():
        for p in sorted(label):
            atoms.append(ProperAtom(p, (ordvar(v),)))
    term_of = {v: ordvar(v) for v in dag.graph.vertices}
    atoms.extend(dag.graph.to_atoms(term_of))
    return ConjunctiveQuery.from_atoms(
        atoms, {ordvar(v) for v in dag.graph.vertices}
    )


def random_sequential_query(
    rng: random.Random,
    n_vars: int,
    preds: Sequence[str] = DEFAULT_PREDS,
    le_prob: float = 0.3,
    empty_ok: bool = True,
) -> ConjunctiveQuery:
    """A random sequential monadic query."""
    word = random_flexiword(rng, n_vars, preds, le_prob, empty_ok)
    return ConjunctiveQuery.from_flexiword(word)


def random_disjunctive_monadic_query(
    rng: random.Random,
    n_disjuncts: int,
    n_vars: int,
    preds: Sequence[str] = DEFAULT_PREDS,
    edge_prob: float = 0.4,
    le_prob: float = 0.3,
) -> DisjunctiveQuery:
    """A random disjunctive monadic query."""
    return DisjunctiveQuery(
        tuple(
            random_conjunctive_monadic_query(
                rng, n_vars, preds, edge_prob, le_prob
            )
            for _ in range(n_disjuncts)
        )
    )


def random_certain_answers_workload(
    rng: random.Random,
    width: int,
    chain_length: int,
    n_objects: int,
    n_disjuncts: int = 2,
    n_free: int = 1,
    n_qvars: int = 3,
    preds: Sequence[str] = DEFAULT_PREDS,
    obj_preds: Sequence[str] = ("Tag", "Big", "Red"),
    edge_prob: float = 0.4,
    le_prob: float = 0.3,
) -> tuple[IndefiniteDatabase, DisjunctiveQuery, tuple]:
    """A repeated-query certain-answers workload for the session API.

    The database mixes a width-``width`` observer order part (so the
    order-sorted decision is genuinely expensive) with unary object
    facts over ``n_objects`` object constants; the open query's
    disjuncts each guard a random monadic order part with object atoms
    over the free variables.  All proper atoms are unary, so the
    Section 4 object/order split applies and a prepared plan shares one
    order-part decision across every candidate tuple that leaves the
    same disjuncts standing.  Returns ``(db, query, free_vars)``.
    """
    dag = random_observer_dag(rng, width, chain_length, preds, le_prob)
    atoms: list = list(dag.to_database().atoms())
    object_names = [f"o{i}" for i in range(n_objects)]
    for name in object_names:
        for pred in obj_preds:
            if rng.random() < 0.5:
                atoms.append(ProperAtom(pred, (obj(name),)))
    db = IndefiniteDatabase.from_atoms(atoms)

    free = tuple(objvar(f"x{i}") for i in range(n_free))
    disjuncts = []
    for _ in range(n_disjuncts):
        order_part = random_conjunctive_monadic_query(
            rng, n_qvars, preds, edge_prob, le_prob, empty_ok=False
        )
        q_atoms: list = list(order_part.atoms)
        for v in free:
            for pred in obj_preds:
                if rng.random() < 0.4:
                    q_atoms.append(ProperAtom(pred, (v,)))
        disjuncts.append(
            ConjunctiveQuery.from_atoms(q_atoms, order_part.extra_order_vars)
        )
    return db, DisjunctiveQuery(tuple(disjuncts)), free


def random_request_stream(
    rng: random.Random,
    width: int = 3,
    chain_length: int = 3,
    n_objects: int = 4,
    n_queries: int = 5,
    n_ops: int = 30,
    write_prob: float = 0.3,
    order_write_prob: float = 0.25,
    n_free: int = 1,
    preds: Sequence[str] = DEFAULT_PREDS,
    obj_preds: Sequence[str] = ("Tag", "Big", "Red"),
):
    """A mixed read/write request stream for the execution engine.

    Builds a certain-answers database (observer order part + unary
    object facts), a pool of ``n_queries`` prepared-plan-sized queries —
    a mix of closed disjunctive queries and open certain-answers
    queries — and a stream of ``n_ops`` operations drawn with
    repetition: reads are :class:`~repro.engine.batch.QueryRequest`\\ s
    over the query pool (so plan groups repeat, the case batching
    exploits), writes are :class:`~repro.engine.batch.Mutation`\\ s
    toggling object facts, facts on order constants, or order atoms.
    Returns ``(db, ops)``; the stream replayed by
    :func:`repro.engine.batch.execute_stream` is differentially testable
    against a sequential per-request loop.
    """
    from repro.engine.batch import Mutation, QueryRequest

    db, open_query, free = random_certain_answers_workload(
        rng,
        width=width,
        chain_length=chain_length,
        n_objects=n_objects,
        n_disjuncts=2,
        n_free=n_free,
        preds=preds,
        obj_preds=obj_preds,
    )
    requests: list = [QueryRequest(open_query, free_vars=free)]
    for _ in range(max(0, n_queries - 1)):
        if rng.random() < 0.4:
            db2, q2, f2 = random_certain_answers_workload(
                rng,
                width=2,
                chain_length=2,
                n_objects=2,
                n_disjuncts=2,
                n_free=n_free,
                preds=preds,
                obj_preds=obj_preds,
            )
            del db2
            requests.append(QueryRequest(q2, free_vars=f2))
        else:
            requests.append(
                QueryRequest(
                    random_disjunctive_monadic_query(rng, 2, 3, preds)
                )
            )

    order_names = sorted(db.order_constants)
    object_names = sorted(db.object_constants) + [
        f"fresh{i}" for i in range(3)
    ]
    toggle_pool: list = [
        ProperAtom(rng.choice(list(obj_preds)), (obj(name),))
        for name in object_names
    ]
    ops: list = []
    for _ in range(n_ops):
        if rng.random() >= write_prob:
            ops.append(rng.choice(requests))
            continue
        if order_names and rng.random() < order_write_prob:
            u, v = rng.choice(order_names), rng.choice(order_names)
            atom = OrderAtom(
                ordc(u), Rel.LE if rng.random() < 0.4 else Rel.LT, ordc(v)
            )
            kind = (
                "assert_order" if rng.random() < 0.6 else "retract_order"
            )
            # cross-chain cycles (vacuous phases) are fair game, but a
            # reflexive '<' can never be retracted back to consistency
            # by the other ops, so soften that one case to '<='
            if kind == "assert_order" and u == v:
                atom = OrderAtom(ordc(u), Rel.LE, ordc(v))
            ops.append(Mutation(kind, (atom,)))
        elif order_names and rng.random() < 0.3:
            fact = ProperAtom(
                rng.choice(list(preds)), (ordc(rng.choice(order_names)),)
            )
            kind = "assert_facts" if rng.random() < 0.6 else "retract_facts"
            ops.append(Mutation(kind, (fact,)))
        else:
            fact = rng.choice(toggle_pool)
            kind = "assert_facts" if rng.random() < 0.6 else "retract_facts"
            ops.append(Mutation(kind, (fact,)))
    return db, ops


def mutation_class_stream(rng: random.Random, n_rounds: int = 1):
    """A writes-only stream covering every mutation class, per round.

    Each round touches, in order: an object-fact assert and retract
    (object generation), a fact on an order constant (label
    generation), an order-atom assert and retract (graph generation), a
    *fresh* object constant, a *fresh* order constant (graph via new
    vertex), and a zero-arity fact.  Deterministic given ``rng``'s
    seed, so two processes replaying the same prefix arrive at the same
    session byte-for-byte — which is what the crash-recovery
    differential tests kill a process at every prefix of.  Returns
    ``(db, ops)`` with ``db`` the seed database the stream assumes.
    """
    from repro.engine.batch import Mutation

    db = IndefiniteDatabase.from_atoms(
        [
            ProperAtom("P", (ordc("u0"),)),
            OrderAtom(ordc("u0"), Rel.LT, ordc("u1")),
            ProperAtom("Tag", (obj("a0"),)),
        ]
    )
    ops: list = []
    for r in range(n_rounds):
        pred = rng.choice(["Tag", "Big", "Red"])
        name = f"a{rng.randrange(2)}"
        ops.append(Mutation("assert_facts", (ProperAtom(pred, (obj(name),)),)))
        ops.append(Mutation("retract_facts", (ProperAtom(pred, (obj(name),)),)))
        label = rng.choice(["P", "Q"])
        ops.append(
            Mutation("assert_facts", (ProperAtom(label, (ordc("u1"),)),))
        )
        rel = Rel.LE if rng.random() < 0.5 else Rel.LT
        ops.append(
            Mutation("assert_order", (OrderAtom(ordc("u0"), rel, ordc("u1")),))
        )
        ops.append(
            Mutation(
                "retract_order", (OrderAtom(ordc("u0"), rel, ordc("u1")),)
            )
        )
        ops.append(
            Mutation(
                "assert_facts", (ProperAtom("Tag", (obj(f"fresh{r}"),)),)
            )
        )
        ops.append(
            Mutation(
                "assert_facts", (ProperAtom("P", (ordc(f"w{r}"),)),)
            )
        )
        ops.append(Mutation("assert_facts", (ProperAtom("Zero", ()),)))
    return db, ops


def random_nary_database(
    rng: random.Random,
    n_order: int,
    n_objects: int,
    n_facts: int,
    preds: Sequence[tuple[str, int]] = (("B", 2),),
    edge_prob: float = 0.3,
    le_prob: float = 0.3,
    neq_prob: float = 0.0,
) -> IndefiniteDatabase:
    """A random database with binary-and-up predicates mixing both sorts.

    Each predicate signature alternates (order, object, order, ...)
    starting with an order argument.  ``neq_prob`` sprinkles Section 7
    '!=' atoms over the order-constant pairs.
    """
    order_names = [f"u{i}" for i in range(n_order)]
    object_names = [f"a{i}" for i in range(n_objects)]
    atoms: list = []
    for _ in range(n_facts):
        pred, arity = preds[rng.randrange(len(preds))]
        args = []
        for pos in range(arity):
            if pos % 2 == 0:
                args.append(ordc(rng.choice(order_names)))
            else:
                args.append(obj(rng.choice(object_names)))
        atoms.append(ProperAtom(pred, tuple(args)))
    for i in range(n_order):
        for j in range(i + 1, n_order):
            if rng.random() < edge_prob:
                rel = Rel.LE if rng.random() < le_prob else Rel.LT
                atoms.append(OrderAtom(ordc(order_names[i]), rel, ordc(order_names[j])))
            if neq_prob and rng.random() < neq_prob:
                atoms.append(
                    OrderAtom(ordc(order_names[i]), Rel.NE, ordc(order_names[j]))
                )
    return IndefiniteDatabase.from_atoms(atoms)


def random_nary_query(
    rng: random.Random,
    n_atoms: int,
    n_order_vars: int,
    n_object_vars: int,
    preds: Sequence[tuple[str, int]] = (("B", 2),),
    order_atom_prob: float = 0.5,
    neq_prob: float = 0.0,
) -> ConjunctiveQuery:
    """A random conjunctive query over the same signature.

    ``neq_prob`` mixes '!=' atoms between order-variable pairs into the
    order part (the Section 7 query-side extension).
    """
    order_vars = [ordvar(f"t{i}") for i in range(n_order_vars)]
    object_vars = [objvar(f"x{i}") for i in range(n_object_vars)]
    atoms: list = []
    for _ in range(n_atoms):
        pred, arity = preds[rng.randrange(len(preds))]
        args = []
        for pos in range(arity):
            if pos % 2 == 0:
                args.append(rng.choice(order_vars))
            else:
                args.append(rng.choice(object_vars))
        atoms.append(ProperAtom(pred, tuple(args)))
    for i in range(n_order_vars):
        for j in range(i + 1, n_order_vars):
            if rng.random() < order_atom_prob:
                rel = Rel.LT if rng.random() < 0.7 else Rel.LE
                atoms.append(OrderAtom(order_vars[i], rel, order_vars[j]))
            if neq_prob and rng.random() < neq_prob:
                atoms.append(OrderAtom(order_vars[i], Rel.NE, order_vars[j]))
    return ConjunctiveQuery.from_atoms(atoms)


# -- propositional workloads for the reductions -------------------------------


def random_monotone_clauses(
    rng: random.Random, n_letters: int, n_clauses: int
) -> tuple[list[tuple[str, str, str]], list[tuple[str, str, str]]]:
    """Random monotone 3SAT instance: (positive clauses, negative clauses).

    Letters are ``p0 .. p{n-1}``; each clause is a triple of letters, used
    positively in the first list and negatively in the second.
    """
    letters = [f"p{i}" for i in range(n_letters)]
    positive = [
        tuple(rng.choice(letters) for _ in range(3)) for _ in range(n_clauses)
    ]
    negative = [
        tuple(rng.choice(letters) for _ in range(3)) for _ in range(n_clauses)
    ]
    return positive, negative


def random_dnf(
    rng: random.Random, n_letters: int, n_disjuncts: int, literals_per: int = 3
) -> list[dict[str, bool]]:
    """A random DNF: each disjunct maps letters to required polarity."""
    out: list[dict[str, bool]] = []
    for _ in range(n_disjuncts):
        conj: dict[str, bool] = {}
        for _ in range(literals_per):
            conj[f"p{rng.randrange(n_letters)}"] = rng.random() < 0.5
        out.append(conj)
    return out


def random_graph(
    rng: random.Random, n_vertices: int, edge_prob: float = 0.4
) -> tuple[list[str], list[tuple[str, str]]]:
    """A random undirected graph for the 3-colorability reductions."""
    vertices = [f"v{i}" for i in range(n_vertices)]
    edges = [
        (vertices[i], vertices[j])
        for i in range(n_vertices)
        for j in range(i + 1, n_vertices)
        if rng.random() < edge_prob
    ]
    return vertices, edges


def gene_sequences(
    rng: random.Random, count: int, length: int
) -> list[str]:
    """Random base sequences over {C, G, A, T} (Example 1.2)."""
    return [
        "".join(rng.choice("CGAT") for _ in range(length)) for _ in range(count)
    ]
