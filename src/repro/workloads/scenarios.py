"""Named scenario builders: the paper's running examples as reusable data.

Each function deterministically constructs one of the scenarios the paper
uses to motivate indefinite order databases, in a form directly consumable
by the entailment API.  The example scripts construct these inline for
exposition; tests and benchmarks import them from here.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.core.atoms import Atom, ProperAtom, lt
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.flexiwords.flexiword import FlexiWord


def espionage_database() -> IndefiniteDatabase:
    """Example 1.1: the guard's log plus agent A's testimony."""
    z = [ordc(f"z{i}") for i in range(1, 5)]
    u = [ordc(f"u{i}") for i in range(1, 5)]
    a, b = obj("A"), obj("B")
    return IndefiniteDatabase.of(
        ProperAtom("IC", (z[0], z[1], a)),
        ProperAtom("IC", (z[2], z[3], b)),
        lt(z[0], z[1]), lt(z[1], z[2]), lt(z[2], z[3]),
        ProperAtom("IC", (u[0], u[2], a)),
        ProperAtom("IC", (u[1], u[3], b)),
        lt(u[0], u[1]), lt(u[1], u[2]), lt(u[2], u[3]),
    )


def espionage_integrity() -> DisjunctiveQuery:
    """Example 1.1's overlap-violation query ``Psi``."""
    from repro.applications.intervals import overlap_violation

    return overlap_violation("IC", extra_args=1)


def espionage_twice(agent: str | None = None) -> ConjunctiveQuery:
    """``Phi(agent)`` (or ``exists x . Phi(x)`` when agent is None)."""
    from repro.applications.intervals import twice_query

    arg = obj(agent) if agent is not None else objvar("x")
    return twice_query("IC", arg)


def alignment_database(sequences: Sequence[str]) -> LabeledDag:
    """Example 1.2: base sequences as a width-k monadic database."""
    chains = [FlexiWord.word([c] for c in seq) for seq in sequences]
    return LabeledDag.from_chains(chains)


def alignment_mismatch_violation(
    alphabet: Sequence[str] = "CGAT",
) -> DisjunctiveQuery:
    """No two distinct symbols may be aligned."""
    t = ordvar("t")
    disjuncts = []
    for a, b in combinations(sorted(alphabet), 2):
        disjuncts.append(
            ConjunctiveQuery.of(ProperAtom(a, (t,)), ProperAtom(b, (t,)))
        )
    return DisjunctiveQuery(tuple(disjuncts))


def seriation_database(
    types: Sequence[str], graves: Sequence[set[str]]
) -> IndefiniteDatabase:
    """Archaeological seriation: interval endpoints + grave overlaps."""
    atoms: list[Atom] = []
    for t in types:
        s, e = ordc(f"{t}.s"), ordc(f"{t}.e")
        atoms.append(ProperAtom(f"Start_{t}", (s,)))
        atoms.append(ProperAtom(f"End_{t}", (e,)))
        atoms.append(lt(s, e))
    for grave in graves:
        for a, b in combinations(sorted(grave), 2):
            atoms.append(lt(ordc(f"{a}.s"), ordc(f"{b}.e")))
            atoms.append(lt(ordc(f"{b}.s"), ordc(f"{a}.e")))
    return IndefiniteDatabase.from_atoms(atoms)


def plan_database(streams: Sequence[Sequence[str]]) -> IndefiniteDatabase:
    """Nonlinear planning: one linear action stream per list."""
    chains = [
        FlexiWord.word([action] for action in stream) for stream in streams
    ]
    return LabeledDag.from_chains(chains, prefix="s").to_database()


def before_query(first: str, second: str) -> ConjunctiveQuery:
    """``exists a b . first(a) & a < b & second(b)``."""
    a, b = ordvar("a"), ordvar("b")
    return ConjunctiveQuery.of(
        ProperAtom(first, (a,)), ProperAtom(second, (b,)), lt(a, b)
    )
