"""Test-local reference implementations, independent of the library code.

Every fast algorithm in the library is validated against these naive,
obviously-correct procedures: satisfaction is decided by exhaustive search
over variable assignments, and entailment by exhaustive enumeration of
minimal models.  Nothing here shares code with the implementations under
test beyond the basic data types.
"""

from __future__ import annotations

from itertools import product

from repro.core.atoms import Rel
from repro.core.database import LabeledDag
from repro.core.models import iter_minimal_words
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery, Query, as_dnf
from repro.flexiwords.flexiword import FlexiWord, Word


def naive_word_satisfies_flexi(word: Word, p: FlexiWord) -> bool:
    """Word model vs sequential query by exhaustive assignment search."""
    m = len(p.letters)
    n = len(word)
    if m == 0:
        return True

    def extend(j: int, prev: int) -> bool:
        if j == m:
            return True
        lo = prev
        if j > 0 and p.rels[j - 1] is Rel.LT:
            lo = prev + 1
        for pos in range(lo, n):
            if p.letters[j] <= word[pos]:
                if extend(j + 1, pos):
                    return True
        return False

    return extend(0, 0)


def naive_word_satisfies_dag(word: Word, qdag: LabeledDag) -> bool:
    """Word model vs conjunctive monadic query by exhaustive assignment."""
    dag = qdag.normalized()
    variables = sorted(dag.graph.vertices)
    n = len(word)
    for assignment in product(range(n), repeat=len(variables)):
        pos = dict(zip(variables, assignment))
        ok = True
        for v in variables:
            if not dag.labels[v] <= word[pos[v]]:
                ok = False
                break
        if not ok:
            continue
        for u, v, rel in dag.graph.edges():
            if rel is Rel.LT and not pos[u] < pos[v]:
                ok = False
                break
            if rel is Rel.LE and not pos[u] <= pos[v]:
                ok = False
                break
        if ok:
            return True
    return False


def naive_entails_flexi(dag: LabeledDag, p: FlexiWord) -> bool:
    """Monadic database vs sequential query: enumerate all minimal models."""
    return all(
        naive_word_satisfies_flexi(word, p) for word in iter_minimal_words(dag)
    )


def naive_entails_query(dag: LabeledDag, query: Query) -> bool:
    """Monadic database vs (disjunctive) monadic query by enumeration."""
    dnf = as_dnf(query).normalized()
    qdags = [d.monadic_dag() for d in dnf.disjuncts]
    for word in iter_minimal_words(dag):
        if not any(naive_word_satisfies_dag(word, q) for q in qdags):
            return False
    return True


def naive_countermodels(dag: LabeledDag, query: Query) -> set[Word]:
    """All minimal-model words falsifying the query."""
    dnf = as_dnf(query).normalized()
    qdags = [d.monadic_dag() for d in dnf.disjuncts]
    out: set[Word] = set()
    for word in iter_minimal_words(dag):
        if not any(naive_word_satisfies_dag(word, q) for q in qdags):
            out.add(word)
    return out
