"""Tests for the Tables 1-2 complexity classifier."""

from __future__ import annotations

from repro.analysis import classify
from repro.core.atoms import ProperAtom, le, lt, ne
from repro.core.database import IndefiniteDatabase
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.core.sorts import obj, objvar, ordc, ordvar

u, v = ordc("u"), ordc("v")
t1, t2, t3 = ordvar("t1"), ordvar("t2"), ordvar("t3")


def P(t):
    return ProperAtom("P", (t,))


def Q(t):
    return ProperAtom("Q", (t,))


class TestClassification:
    def test_sequential_monadic(self):
        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        profile = classify(db, q)
        assert profile.monadic and profile.sequential and profile.conjunctive
        assert "PTIME" in profile.data_complexity
        assert profile.algorithm.startswith("SEQ")
        assert "Corollary 4.3" in profile.references

    def test_nonsequential_monadic(self):
        db = IndefiniteDatabase.of(P(u), Q(v))
        q = ConjunctiveQuery.of(P(t1), Q(t2), P(t3), lt(t1, t2), lt(t1, t3))
        profile = classify(db, q)
        assert profile.monadic and not profile.sequential
        assert "Theorem 4.7" in profile.algorithm
        assert "PTIME" in profile.data_complexity

    def test_disjunctive_monadic(self):
        db = IndefiniteDatabase.of(P(u), Q(v))
        q = DisjunctiveQuery.of(
            ConjunctiveQuery.of(P(t1)), ConjunctiveQuery.of(Q(t1))
        )
        profile = classify(db, q)
        assert profile.monadic and not profile.conjunctive
        assert "wqo" in profile.data_complexity
        assert "Theorem 5.3" in profile.algorithm

    def test_nary(self):
        db = IndefiniteDatabase.of(ProperAtom("R", (u, obj("a"))))
        q = ConjunctiveQuery.of(ProperAtom("R", (t1, objvar("x"))))
        profile = classify(db, q)
        assert not profile.monadic
        assert profile.data_complexity == "co-NP-complete"
        assert profile.combined_complexity == "Pi2p-complete"

    def test_neq(self):
        db = IndefiniteDatabase.of(P(u), P(v), ne(u, v))
        q = ConjunctiveQuery.of(P(t1))
        profile = classify(db, q)
        assert profile.has_neq
        assert "Theorem 7.1" in profile.references

    def test_width_reported(self):
        db = IndefiniteDatabase.of(P(u), P(v), P(ordc("w")))
        q = ConjunctiveQuery.of(P(t1))
        assert classify(db, q).width == 3

    def test_tightness_flag(self):
        db = IndefiniteDatabase.of(P(u))
        tight = ConjunctiveQuery.of(P(t1))
        loose = ConjunctiveQuery.of(P(t1), lt(t1, t2))
        assert classify(db, tight).tight
        assert not classify(db, loose).tight

    def test_summary_renders(self):
        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        text = classify(db, q).summary()
        assert "sequential" in text and "SEQ" in text

    def test_constants_eliminated_before_classification(self):
        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        q = ConjunctiveQuery.of(P(u))  # constant in query
        profile = classify(db, q)
        assert profile.monadic  # Const_u guard is still order-monadic
