"""Differential tests for the session / prepared-plan API.

The load-bearing property: ``Session.prepare(q).execute()`` is
observationally identical to the one-shot ``explain(db, q)`` — verdict,
method tag and countermodel — for every semantics and every explicit
method, and stays identical while the session's database evolves through
interleaved assert/retract mutations (the cache-invalidation surface).
Certain answers are additionally pinned against the naive per-tuple
loop, which shares no code with the prepared strategies.
"""

from __future__ import annotations

import random
from itertools import product

import pytest

from helpers import naive_entails_query
from repro.api import PreparedQuery, Result, Session, render_model
from repro.core.atoms import OrderAtom, ProperAtom, Rel, le, lt, ne
from repro.core.database import IndefiniteDatabase
from repro.core.entailment import certain_answers, entails, explain
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery, as_dnf
from repro.core.semantics import Semantics
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.workloads.generators import (
    random_certain_answers_workload,
    random_conjunctive_monadic_query,
    random_disjunctive_monadic_query,
    random_labeled_dag,
    random_nary_database,
    random_nary_query,
)

t1, t2 = ordvar("t1"), ordvar("t2")
u, v, w = ordc("u"), ordc("v"), ordc("w")


def P(t):
    return ProperAtom("P", (t,))


def Q(t):
    return ProperAtom("Q", (t,))


def _report(result: Result):
    return (result.holds, result.method, result.countermodel)


def _one_shot(db, query, semantics=Semantics.FIN, method="auto"):
    r = explain(db, query, semantics=semantics, method=method)
    return (r.holds, r.method, r.countermodel)


def naive_certain_answers(db, query, free_vars, semantics=Semantics.FIN):
    """The pre-session loop: one full pipeline per candidate tuple."""
    dnf = as_dnf(query)
    domain = sorted(db.object_constants)
    return {
        combo
        for combo in product(domain, repeat=len(free_vars))
        if entails(
            db,
            dnf.substitute(dict(zip(free_vars, map(obj, combo)))),
            semantics=semantics,
        )
    }


class TestClosedEquivalence:
    def test_matches_one_shot_all_semantics(self):
        rng = random.Random(100)
        for _ in range(25):
            dag = random_labeled_dag(rng, rng.randrange(0, 5))
            db = dag.to_database()
            q = random_disjunctive_monadic_query(rng, rng.randrange(1, 3), 2)
            session = Session(db)
            for sem in Semantics:
                plan = session.prepare(q, semantics=sem)
                assert _report(plan.execute()) == _one_shot(db, q, sem)
                # repeated execution returns the identical result
                assert _report(plan.execute()) == _one_shot(db, q, sem)

    def test_matches_one_shot_every_method(self):
        rng = random.Random(101)
        for _ in range(20):
            dag = random_labeled_dag(rng, rng.randrange(0, 5))
            db = dag.to_database()
            session = Session(db)
            cq = random_conjunctive_monadic_query(rng, rng.randrange(0, 4))
            for method in ("auto", "bruteforce", "paths", "bounded_width",
                           "basis", "theorem53"):
                assert (
                    session.prepare(cq, method=method).execute().holds
                    == entails(db, cq, method=method)
                )
            dq = random_disjunctive_monadic_query(rng, 2, 2)
            for method in ("auto", "bruteforce", "theorem53"):
                assert _report(
                    session.prepare(dq, method=method).execute()
                ) == _one_shot(db, dq, method=method)

    def test_matches_naive_oracle(self):
        rng = random.Random(102)
        for _ in range(20):
            dag = random_labeled_dag(rng, rng.randrange(1, 5))
            q = random_disjunctive_monadic_query(rng, 2, 2)
            session = Session(dag.to_database())
            assert session.entails(q) == naive_entails_query(dag, q)

    def test_query_constants_and_neq(self):
        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        session = Session(db)
        assert not session.entails(ConjunctiveQuery.of(Q(u)))
        assert session.entails(ConjunctiveQuery.of(P(u)))
        neq_q = ConjunctiveQuery.of(P(t1), Q(t2), ne(t1, t2))
        assert _report(session.prepare(neq_q).execute()) == _one_shot(db, neq_q)

    def test_neq_database_routes_to_bruteforce(self):
        db = IndefiniteDatabase.of(P(u), P(v), ne(u, v))
        q = ConjunctiveQuery.of(P(t1), P(t2), ne(t1, t2))
        result = Session(db).prepare(q).execute()
        assert result.holds and result.method == "bruteforce"

    def test_vacuous_trivial_unsat(self):
        bad = Session(IndefiniteDatabase.of(lt(u, v), lt(v, u)))
        assert bad.prepare(ConjunctiveQuery.of(P(t1))).execute().method == "vacuous"
        ok = Session(IndefiniteDatabase.of(P(u)))
        assert ok.prepare(ConjunctiveQuery.of()).execute().method == "trivial"
        impossible = ConjunctiveQuery.of(P(t1), lt(t1, t1))
        r = ok.prepare(impossible).execute()
        assert not r.holds and r.method == "unsatisfiable-query"

    def test_method_validation(self):
        session = Session(IndefiniteDatabase.of(P(u)))
        with pytest.raises(ValueError):
            session.prepare(ConjunctiveQuery.of(P(t1)), method="nonsense")
        with pytest.raises(ValueError):
            session.prepare(
                ConjunctiveQuery.of(P(t1)), free_vars=(t1,)
            )


class TestMutationInvalidation:
    def test_interleaved_mutations_match_one_shot(self):
        rng = random.Random(103)
        dag = random_labeled_dag(rng, 4)
        session = Session(dag.to_database())
        queries = [
            random_disjunctive_monadic_query(rng, rng.randrange(1, 3), 2)
            for _ in range(6)
        ]
        plans = [session.prepare(q) for q in queries]
        extra_facts = [P(ordc(f"m{i}")) for i in range(4)]
        for step in range(12):
            kind = step % 4
            if kind == 0:
                session.assert_facts(extra_facts[step % len(extra_facts)])
            elif kind == 1:
                session.assert_order(
                    OrderAtom(
                        ordc(f"m{step % 4}"),
                        Rel.LT if step % 2 else Rel.LE,
                        ordc("u0"),
                    )
                )
            elif kind == 2:
                session.retract_facts(extra_facts[(step - 2) % len(extra_facts)])
            else:
                session.retract_order(
                    OrderAtom(ordc("m1"), Rel.LT, ordc("u0"))
                )
            current = session.db
            for q, plan in zip(queries, plans):
                assert _report(plan.execute()) == _one_shot(current, q), (
                    f"step={step} q={q}"
                )

    def test_object_fact_churn_keeps_order_verdicts(self):
        rng = random.Random(104)
        db, query, free = random_certain_answers_workload(
            rng, width=2, chain_length=2, n_objects=3, n_free=1
        )
        session = Session(db)
        plan = session.prepare(query, free_vars=free)
        assert set(plan.execute().answers) == naive_certain_answers(
            db, query, free
        )
        epoch_ctx = session.context()
        memo_before = dict(plan._order_memo)
        session.assert_facts(ProperAtom("Tag", (obj("newobj"),)))
        assert set(plan.execute().answers) == naive_certain_answers(
            session.db, query, free
        )
        # object-only churn must not have torn down the order-part memo
        assert session.context() is epoch_ctx
        for key, result in memo_before.items():
            assert plan._order_memo.get(key) is result

    def test_order_mutation_resets_order_verdicts(self):
        session = Session(IndefiniteDatabase.of(P(u), Q(v)))
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        plan = session.prepare(q)
        assert not plan.execute().holds
        session.assert_order(lt(u, v))
        assert plan.execute().holds
        assert _report(plan.execute()) == _one_shot(session.db, q)
        session.retract_order(lt(u, v))
        assert not plan.execute().holds

    def test_retract_to_empty(self):
        session = Session(IndefiniteDatabase.of(P(u)))
        plan = session.prepare(ConjunctiveQuery.of(P(t1)))
        assert plan.execute().holds
        session.retract_facts(P(u))
        assert not plan.execute().holds
        assert session.size() == 0

    def test_zero_arity_facts_invalidate_live_session(self):
        # a propositional (zero-arity) fact has neither object nor order
        # arguments; it must still bump a generation (it rides the
        # object one) or live contexts, observers and snapshot deltas
        # would silently miss it
        rain = ProperAtom("Rain", ())
        q = ConjunctiveQuery.of(rain)
        session = Session()
        assert not session.entails(q)
        snap = session.snapshot()
        session.assert_facts(rain)
        assert session.entails(q)  # the live session sees its own write
        assert Session(session.db).entails(q)
        assert session.snapshot_delta(snap) is not None
        session.retract_facts(rain)
        assert not session.entails(q)

    def test_mutators_validate_groundness(self):
        session = Session()
        from repro.core.errors import SortError

        with pytest.raises(SortError):
            session.assert_facts(P(t1))
        with pytest.raises(SortError):
            session.assert_order(lt(t1, t2))


class TestCertainAnswers:
    def test_split_workloads_match_naive(self):
        rng = random.Random(105)
        for _ in range(8):
            db, query, free = random_certain_answers_workload(
                rng, width=2, chain_length=2, n_objects=3,
                n_disjuncts=2, n_free=rng.randrange(1, 3),
            )
            got = Session(db).certain_answers(query, free)
            assert got == naive_certain_answers(db, query, free)
            assert got == certain_answers(db, query, free)

    def test_split_workloads_all_semantics(self):
        rng = random.Random(106)
        for _ in range(4):
            db, query, free = random_certain_answers_workload(
                rng, width=2, chain_length=2, n_objects=2, n_free=1
            )
            for sem in Semantics:
                assert Session(db).certain_answers(
                    query, free, semantics=sem
                ) == naive_certain_answers(db, query, free, semantics=sem)

    def test_nary_workloads_match_naive(self):
        rng = random.Random(107)
        for _ in range(8):
            db = random_nary_database(rng, 3, 3, 4)
            q = random_nary_query(rng, 3, 2, 2)
            free = tuple(sorted(q.object_variables(), key=str)[:1])
            if not free:
                continue
            got = Session(db).certain_answers(q, free)
            assert got == naive_certain_answers(db, q, free)

    def test_neq_database_answers(self):
        db = IndefiniteDatabase.of(
            ProperAtom("On", (u, obj("a"))),
            ProperAtom("On", (v, obj("b"))),
            ne(u, v),
        )
        x = objvar("x")
        q = ConjunctiveQuery.of(ProperAtom("On", (t1, x)))
        assert Session(db).certain_answers(q, (x,)) == naive_certain_answers(
            db, q, (x,)
        )

    def test_answers_after_mutations(self):
        rng = random.Random(108)
        db, query, free = random_certain_answers_workload(
            rng, width=2, chain_length=2, n_objects=3, n_free=1
        )
        session = Session(db)
        plan = session.prepare(query, free_vars=free)
        for i in range(4):
            fact = ProperAtom("Tag", (obj(f"extra{i}"),))
            session.assert_facts(fact)
            assert set(plan.execute().answers) == naive_certain_answers(
                session.db, query, free
            )
            if i % 2:
                session.retract_facts(fact)
                assert set(plan.execute().answers) == naive_certain_answers(
                    session.db, query, free
                )

    def test_zero_free_vars(self):
        db = IndefiniteDatabase.of(P(u))
        q = ConjunctiveQuery.of(P(t1))
        assert Session(db).certain_answers(q, ()) == {()}
        assert Session(db).certain_answers(
            ConjunctiveQuery.of(Q(t1)), ()
        ) == set()

    def test_open_query_with_constants_falls_back(self):
        db = IndefiniteDatabase.of(
            ProperAtom("On", (u, obj("a"))),
            ProperAtom("Tag", (obj("a"),)),
        )
        x = objvar("x")
        q = ConjunctiveQuery.of(
            ProperAtom("On", (t1, x)), ProperAtom("Tag", (obj("a"),))
        )
        result = Session(db).prepare(q, free_vars=(x,)).execute()
        assert result.method == "prepared-fallback"
        assert set(result.answers) == naive_certain_answers(db, q, (x,))

    def test_inconsistent_db_answers_everything(self):
        db = IndefiniteDatabase.of(
            ProperAtom("On", (u, obj("a"))), lt(u, u)
        )
        x = objvar("x")
        q = ConjunctiveQuery.of(ProperAtom("Off", (t1, x)))
        assert Session(db).certain_answers(q, (x,)) == {("a",)}


class TestPlanCacheLRU:
    def _queries(self, n):
        return [ConjunctiveQuery.of(ProperAtom(f"P{i}", (t1,)))
                for i in range(n)]

    def test_eviction_removes_least_recently_used(self):
        session = Session(IndefiniteDatabase.of(P(u)), plan_cache_limit=2)
        q1, q2, q3 = self._queries(3)
        plan1, plan2 = session.prepare(q1), session.prepare(q2)
        # hitting q1 re-inserts it at the most-recent end ...
        assert session.prepare(q1) is plan1
        session.prepare(q3)  # ... so filling the cache evicts q2, not q1
        assert session.prepare(q1) is plan1
        assert session.prepare(q2) is not plan2

    def test_eviction_order_without_hits_is_fifo(self):
        session = Session(IndefiniteDatabase.of(P(u)), plan_cache_limit=2)
        q1, q2, q3 = self._queries(3)
        plan1, plan2 = session.prepare(q1), session.prepare(q2)
        session.prepare(q3)
        assert session.prepare(q2) is plan2  # q2 was newer: retained
        assert session.prepare(q1) is not plan1  # oldest: evicted

    def test_limit_is_respected(self):
        session = Session(IndefiniteDatabase.of(P(u)), plan_cache_limit=3)
        for q in self._queries(10):
            session.prepare(q)
        assert len(session._plans) == 3


class TestInvalidationEdgeCases:
    def test_retract_then_reassert_same_order_atom(self):
        atom = lt(u, v)
        session = Session(IndefiniteDatabase.of(P(u), Q(v), atom))
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        plan = session.prepare(q)
        assert plan.execute().holds
        session.retract_order(atom)
        assert _report(plan.execute()) == _one_shot(session.db, q)
        assert not plan.execute().holds
        session.assert_order(atom)
        # verdict must match a completely fresh session / one-shot call
        assert _report(plan.execute()) == _one_shot(session.db, q)
        assert plan.execute().holds
        assert Session(session.db).entails(q)

    def test_retract_reassert_weaker_duplicate_pair(self):
        # u <= v and u < v on the same pair: retracting the weak atom
        # must not lose the strict edge, and vice versa
        weak, strict = le(u, v), lt(u, v)
        session = Session(IndefiniteDatabase.of(P(u), Q(v), weak, strict))
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        plan = session.prepare(q)
        assert plan.execute().holds
        session.retract_order(weak)
        assert _report(plan.execute()) == _one_shot(session.db, q)
        assert plan.execute().holds  # the strict atom still stands
        session.retract_order(strict)
        assert _report(plan.execute()) == _one_shot(session.db, q)
        assert not plan.execute().holds
        session.assert_order(weak)
        assert _report(plan.execute()) == _one_shot(session.db, q)

    def test_fact_only_constant_later_gains_order_atoms(self):
        # 'w' first exists only through a proper fact (an isolated graph
        # vertex); ordering it later must resurface in prepared verdicts
        session = Session(IndefiniteDatabase.of(P(u), lt(u, v)))
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        plan = session.prepare(q)
        assert not plan.execute().holds
        session.assert_facts(Q(w))  # fresh vertex, facts only
        assert _report(plan.execute()) == _one_shot(session.db, q)
        session.assert_order(lt(u, w))  # the isolated vertex gets ordered
        assert _report(plan.execute()) == _one_shot(session.db, q)
        assert plan.execute().holds
        assert Session(session.db).entails(q)

    def test_object_name_reused_at_order_sort_is_rejected(self):
        # one spelling at two sorts would corrupt the minimal-model
        # constant map; the session mutators refuse it up front, BEFORE
        # mutating anything, so a raising assert leaves the session
        # fully usable (it used to poison the lazily rebuilt database)
        from repro.core.errors import SortError

        session = Session(
            IndefiniteDatabase.of(ProperAtom("Tag", (obj("a"),)))
        )
        with pytest.raises(SortError):
            session.assert_facts(P(ordc("a")))
        assert session.size() == 1
        assert session.db.proper_atoms == frozenset(
            {ProperAtom("Tag", (obj("a"),))}
        )
        # the reverse direction and the order mutator refuse too
        with pytest.raises(SortError):
            session.assert_order(lt(ordc("a"), v))
        session2 = Session(IndefiniteDatabase.of(P(u)))
        with pytest.raises(SortError):
            session2.assert_facts(ProperAtom("Tag", (obj("u"),)))
        # intra-call clash: nothing from the call lands
        session3 = Session()
        with pytest.raises(SortError):
            session3.assert_facts(
                ProperAtom("Tag", (obj("zz"),)), P(ordc("zz"))
            )
        assert session3.size() == 0

    def test_object_constants_appearing_in_order_facts_churn(self):
        # object-gen churn interleaved with an order-constant fact on the
        # same predicate: verdicts keep matching a fresh one-shot call
        rng = random.Random(120)
        db, query, free = random_certain_answers_workload(
            rng, width=2, chain_length=2, n_objects=2, n_free=1
        )
        session = Session(db)
        plan = session.prepare(query, free_vars=free)
        order_name = sorted(db.order_constants)[0]
        for i in range(3):
            session.assert_facts(ProperAtom("Tag", (obj(f"mix{i}"),)))
            assert set(plan.execute().answers) == naive_certain_answers(
                session.db, query, free
            )
            session.assert_facts(
                ProperAtom("Tag", (ordc(order_name),))
            )  # same predicate, order constant: label-gen path
            assert set(plan.execute().answers) == naive_certain_answers(
                session.db, query, free
            )
            session.retract_facts(ProperAtom("Tag", (ordc(order_name),)))
            assert set(plan.execute().answers) == naive_certain_answers(
                session.db, query, free
            )


class TestSessionApi:
    def test_entails_many_matches_individual(self):
        rng = random.Random(109)
        dag = random_labeled_dag(rng, 4)
        db = dag.to_database()
        queries = [
            random_disjunctive_monadic_query(rng, 2, 2) for _ in range(5)
        ]
        session = Session(db)
        assert session.entails_many(queries) == [
            entails(db, q) for q in queries
        ]

    def test_plans_are_memoized(self):
        session = Session(IndefiniteDatabase.of(P(u)))
        q = ConjunctiveQuery.of(P(t1))
        assert session.prepare(q) is session.prepare(q)
        assert session.prepare(q) is not session.prepare(q, method="bruteforce")

    def test_from_atoms_and_str(self):
        session = Session.from_atoms([P(u), lt(u, v)])
        assert session.size() == 2
        assert "2 atoms" in str(session)

    def test_prepared_query_type(self):
        session = Session(IndefiniteDatabase.of(P(u)))
        plan = session.prepare(ConjunctiveQuery.of(P(t1)))
        assert isinstance(plan, PreparedQuery)
        assert plan.execute() is plan.execute()  # cached between mutations


class TestRendering:
    def test_word_countermodel_renders(self):
        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        q = ConjunctiveQuery.of(Q(t1), P(t2), lt(t1, t2))
        result = Session(db).prepare(q).execute()
        assert not result.holds
        assert result.countermodel is not None
        text = result.render_countermodel()
        assert "<" in text and "{" in text

    def test_structure_countermodel_renders(self):
        db = IndefiniteDatabase.of(
            ProperAtom("R", (u, obj("a"))), ProperAtom("R", (v, obj("b")))
        )
        q = ConjunctiveQuery.of(
            ProperAtom("R", (t1, objvar("x"))),
            ProperAtom("R", (t2, objvar("x"))),
            lt(t1, t2),
        )
        result = Session(db).prepare(q, method="bruteforce").execute()
        assert not result.holds
        assert "order" in result.render_countermodel()

    def test_render_model_handles_all_shapes(self):
        assert render_model(None) == "(no countermodel produced)"
        assert render_model(()) == "(empty model)"
        assert render_model(
            (frozenset({"P"}), frozenset())
        ) == "{P} < {}"

    def test_result_str(self):
        db = IndefiniteDatabase.of(P(u))
        r = Session(db).prepare(ConjunctiveQuery.of(P(t1))).execute()
        assert "entailed" in str(r)
        r2 = Session(db).prepare(
            ConjunctiveQuery.of(P(t1)), free_vars=()
        ).execute()
        assert str(r2).startswith("answers")
