"""Tests for the interval application layer (Example 1.1 as a library)."""

from __future__ import annotations

import pytest

from repro.applications.intervals import (
    entails_under_integrity,
    integrity_satisfiable,
    interval_database,
    interval_fact,
    overlap_violation,
    twice_query,
)
from repro.core.atoms import lt
from repro.core.database import IndefiniteDatabase
from repro.core.semantics import Semantics
from repro.core.sorts import obj, objvar, ordc


class TestBuilders:
    def test_interval_fact(self):
        atoms = interval_fact("IC", "a", "b", "agent")
        assert len(atoms) == 2  # fact + endpoint order atom
        db = IndefiniteDatabase.from_atoms(atoms)
        assert db.order_constants == {"a", "b"}
        assert db.object_constants == {"agent"}

    def test_nonstrict(self):
        atoms = interval_fact("IC", "a", "b", strict=False)
        assert len(atoms) == 1

    def test_interval_database(self):
        db = interval_database(
            "Busy", [("a1", "a2", "alice"), ("b1", "b2", "bob")]
        )
        assert db.size() == 4


class TestEspionageViaLibrary:
    """Example 1.1 rebuilt entirely through the application layer."""

    def db(self) -> IndefiniteDatabase:
        guard = interval_database(
            "IC", [("z1", "z2", "A"), ("z3", "z4", "B")]
        )
        testimony = interval_database(
            "IC", [("u1", "u3", "A"), ("u2", "u4", "B")]
        )
        extra = IndefiniteDatabase.of(
            lt(ordc("z2"), ordc("z3")),
            lt(ordc("u1"), ordc("u2")),
            lt(ordc("u2"), ordc("u3")),
            lt(ordc("u3"), ordc("u4")),
        )
        return guard | testimony | extra

    def test_integrity_is_satisfiable(self):
        """The evidence is consistent with the non-overlap constraint."""
        assert integrity_satisfiable(self.db(), overlap_violation("IC"))

    def test_someone_entered_twice(self):
        psi = overlap_violation("IC")
        assert entails_under_integrity(
            self.db(), twice_query("IC", objvar("x")), psi
        )

    def test_no_specific_agent_pinned(self):
        psi = overlap_violation("IC")
        for agent in ("A", "B"):
            assert not entails_under_integrity(
                self.db(), twice_query("IC", obj(agent)), psi
            )

    def test_finite_semantics_differs(self):
        """Under FIN the nontight violation query cannot fire on adjacent
        points, so the deduction fails — the dense default matters."""
        psi = overlap_violation("IC")
        assert not entails_under_integrity(
            self.db(), twice_query("IC", objvar("x")), psi,
            semantics=Semantics.FIN,
        )
