"""Tests for the fixed-signature reductions (remark after Theorem 3.3)."""

from __future__ import annotations

import pytest

from repro.core.atoms import ProperAtom, lt
from repro.core.database import IndefiniteDatabase
from repro.core.entailment import entails
from repro.core.query import ConjunctiveQuery
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.reductions.binarize import (
    eliminate_indexed_family,
    fixed_binary_signature,
    reify,
)
from repro.reductions.pi2 import Pi2Instance

u, v = ordc("u"), ordc("v")
t1, t2 = ordvar("t1"), ordvar("t2")


class TestIndexedFamily:
    def build(self):
        db = IndefiniteDatabase.of(
            ProperAtom("P0", (u, obj("a"))),
            ProperAtom("P1", (v, obj("a"))),
            lt(u, v),
        )
        q_yes = ConjunctiveQuery.of(
            ProperAtom("P0", (t1, objvar("x"))),
            ProperAtom("P1", (t2, objvar("x"))),
            lt(t1, t2),
        )
        q_no = ConjunctiveQuery.of(
            ProperAtom("P1", (t1, objvar("x"))),
            ProperAtom("P0", (t2, objvar("x"))),
            lt(t1, t2),
        )
        return db, q_yes, q_no

    def test_preserves_entailment(self):
        db, q_yes, q_no = self.build()
        for q, expected in ((q_yes, True), (q_no, False)):
            assert entails(db, q) == expected
            db2, q2 = eliminate_indexed_family(db, q, "P")
            assert entails(db2, q2) == expected

    def test_family_predicates_gone(self):
        db, q_yes, _ = self.build()
        db2, q2 = eliminate_indexed_family(db, q_yes, "P")
        assert not any(p.startswith("P0") or p.startswith("P1")
                       for p in db2.predicates)
        assert "P" in db2.predicates

    def test_chain_lengths_distinguish(self):
        """A P1 query pattern must not match a P0 fact."""
        db = IndefiniteDatabase.of(ProperAtom("P0", (u, obj("a"))))
        q = ConjunctiveQuery.of(ProperAtom("P1", (t1, objvar("x"))))
        db2, q2 = eliminate_indexed_family(db, q, "P")
        assert not entails(db2, q2)
        q_same = ConjunctiveQuery.of(ProperAtom("P0", (t1, objvar("x"))))
        db3, q3 = eliminate_indexed_family(db, q_same, "P")
        assert entails(db3, q3)


class TestReify:
    def test_preserves_entailment(self):
        db = IndefiniteDatabase.of(
            ProperAtom("T", (u, obj("a"), obj("b"))),
            ProperAtom("T", (v, obj("b"), obj("c"))),
            lt(u, v),
        )
        q = ConjunctiveQuery.of(
            ProperAtom("T", (t1, objvar("x"), objvar("y"))),
            ProperAtom("T", (t2, objvar("y"), objvar("z"))),
            lt(t1, t2),
        )
        assert entails(db, q)
        db2, q2 = reify(db, q)
        assert entails(db2, q2)
        assert max(db2.predicates.values()) <= 2

    def test_no_cross_fact_mixing(self):
        """Reification must not let a query mix positions of two facts."""
        db = IndefiniteDatabase.of(
            ProperAtom("T", (u, obj("a"), obj("b"))),
            ProperAtom("T", (u, obj("c"), obj("d"))),
        )
        q = ConjunctiveQuery.of(
            ProperAtom("T", (t1, objvar("x"), objvar("y"))),
        )
        q_mixed = ConjunctiveQuery.of(
            ProperAtom("T", (t1, obj("a"), obj("d"))),
        )
        assert not entails(db, q_mixed)
        db2, q2 = reify(db, q_mixed)
        assert not entails(db2, q2)
        db3, q3 = reify(db, q)
        assert entails(db3, q3)


class TestPi2FixedSignature:
    @pytest.mark.parametrize(
        "universals,existentials,formula",
        [
            (("p",), ("q",), ("or", ("var", "p"), ("var", "q"))),
            (("p",), ("q",), ("and", ("var", "p"), ("var", "q"))),
        ],
    )
    def test_theorem33_under_fixed_signature(
        self, universals, existentials, formula
    ):
        """The Theorem 3.3 instance survives the signature reduction."""
        inst = Pi2Instance(tuple(universals), tuple(existentials), formula)
        db, query, expected = inst.reduction()
        db2, q2 = fixed_binary_signature(db, query, family="P")
        assert max(db2.predicates.values()) <= 2
        assert entails(db2, q2) == expected
