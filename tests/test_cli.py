"""Tests for the command-line interface."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main

DB_TEXT = """
# two sensors
Boot(u1); Crash(u2); u1 < u2
Ping(v1); v1 < v2; Timeout(v2)
"""


@pytest.fixture
def db_file(tmp_path: pathlib.Path) -> str:
    path = tmp_path / "db.txt"
    path.write_text(DB_TEXT)
    return str(path)


class TestQueryCommand:
    def test_entailed(self, db_file, capsys):
        code = main(["query", db_file, "Boot(a) & a < b & Crash(b)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "entailed: True" in out

    def test_not_entailed_with_countermodel(self, db_file, capsys):
        code = main(
            ["query", db_file, "Boot(a) & a < b & Ping(b)", "--countermodel"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "entailed: False" in out
        assert "countermodel:" in out

    def test_semantics_flag(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("P(u)\n")
        q = "P(t) & t < s & s < r & P(r)"
        assert main(["query", str(empty), q, "--semantics", "q"]) == 1

    def test_query_from_file(self, db_file, tmp_path, capsys):
        qfile = tmp_path / "q.txt"
        qfile.write_text("Boot(a) & a < b & Crash(b)")
        assert main(["query", db_file, str(qfile)]) == 0

    def test_method_flag(self, db_file, capsys):
        code = main(
            ["query", db_file, "Boot(a) & a < b & Crash(b)",
             "--method", "bruteforce"]
        )
        out = capsys.readouterr().out
        assert code == 0 and "method:   bruteforce" in out

    def test_basis_method(self, db_file, capsys):
        code = main(
            ["query", db_file, "Boot(a) & a < b & Crash(b)",
             "--method", "basis"]
        )
        out = capsys.readouterr().out
        assert code == 0 and "method:   basis" in out


class TestAnswersCommand:
    DB3 = "On(p1, lamp); On(p2, heater); Off(p3, lamp); p1 < p3\n"

    @pytest.fixture
    def db3_file(self, tmp_path: pathlib.Path) -> str:
        path = tmp_path / "db3.txt"
        path.write_text(self.DB3)
        return str(path)

    def test_answers(self, db3_file, capsys):
        code = main(
            ["answers", db3_file, "On(s, x) & Off(t, x) & s < t",
             "--free-vars", "x"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lamp" in out and "certain answers: 1" in out

    def test_answers_empty(self, db3_file, capsys):
        code = main(
            ["answers", db3_file, "Off(s, x) & On(t, x) & s < t",
             "--free-vars", "x"]
        )
        out = capsys.readouterr().out
        assert code == 1 and "certain answers: 0" in out


class TestJsonOutput:
    def test_query_json_entailed(self, db_file, capsys):
        code = main(["query", db_file, "Boot(a) & a < b & Crash(b)", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload == {"entailed": True, "method": "seq"}

    def test_query_json_countermodel(self, db_file, capsys):
        code = main(["query", db_file, "Boot(a) & a < b & Ping(b)",
                     "--json", "--countermodel"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["entailed"] is False
        assert "<" in payload["countermodel"]

    def test_answers_json(self, tmp_path, capsys):
        path = tmp_path / "db3.txt"
        path.write_text(TestAnswersCommand.DB3)
        code = main(["answers", str(path), "On(s, x) & Off(t, x) & s < t",
                     "--free-vars", "x", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["answers"] == [["lamp"]]
        assert payload["count"] == 1
        assert payload["method"]


class TestBatchCommand:
    STREAM = """
# mixed read/write stream
Boot(a) & a < b & Crash(b)
answers(): Boot(a) & a < b & Crash(b)
assert: Reset(u3); u2 < u3
Boot(a) & a < b & Reset(b)
retract: Reset(u3); u2 < u3
Boot(a) & a < b & Reset(b)
"""

    @pytest.fixture
    def stream_file(self, tmp_path: pathlib.Path) -> str:
        path = tmp_path / "stream.txt"
        path.write_text(self.STREAM)
        return str(path)

    def test_batch_stream(self, db_file, stream_file, capsys):
        code = main(["batch", db_file, stream_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "executed 6 ops (stream)" in out
        assert "entailed=True" in out and "entailed=False" in out

    def test_batch_json_results_track_writes(self, db_file, stream_file,
                                             capsys):
        code = main(["batch", db_file, stream_file, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        ops = payload["ops"]
        assert [op["kind"] for op in ops] == [
            "query", "query", "assert_facts", "query",
            "retract_facts", "query",
        ]
        assert ops[0]["entailed"] is True
        assert ops[1]["count"] == 1  # answers(): entailed -> {()}
        assert ops[3]["entailed"] is True   # after the assert
        assert ops[5]["entailed"] is False  # after the retract

    def test_batch_pool_read_only(self, db_file, tmp_path, capsys):
        path = tmp_path / "reads.txt"
        path.write_text("Boot(a) & a < b & Crash(b)\n"
                        "Boot(a) & a < b & Ping(b)\n"
                        "Boot(a) & a < b & Crash(b)\n")
        code = main(["batch", db_file, str(path), "--workers", "2",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["mode"].startswith(("pool[2]", "sequential"))
        assert [op["entailed"] for op in payload["ops"]] == [
            True, False, True,
        ]

    def test_stream_introduced_constants_parse_as_constants(self, db_file,
                                                            tmp_path, capsys):
        # 'u9' exists only through a stream write; the query line naming
        # it must treat it as that order constant, not a fresh variable
        stream = tmp_path / "stream.txt"
        stream.write_text(
            "Reset(u9)\n"
            "assert: Reset(u9); u2 < u9\n"
            "Reset(u9)\n"
            "Boot(a) & a < b & Reset(b)\n"
        )
        code = main(["batch", db_file, str(stream), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ops"][0]["entailed"] is False  # not asserted yet
        assert payload["ops"][2]["entailed"] is True
        assert payload["ops"][3]["entailed"] is True

    def test_batch_stream_orders_late_constants(self, tmp_path, capsys):
        # 'p2' is only labelled in the base file but ordered by a later
        # write: cross-fragment sort inference must type it order-sorted
        db = tmp_path / "db.txt"
        db.write_text("On(p1, lamp); On(p2, heater); Off(p3, lamp); p1 < p3\n")
        stream = tmp_path / "stream.txt"
        stream.write_text(
            "answers(x): On(s, x) & Off(t, x) & s < t\n"
            "assert: Off(p4, heater); p2 < p4\n"
            "answers(x): On(s, x) & Off(t, x) & s < t\n"
        )
        code = main(["batch", str(db), str(stream), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ops"][0]["answers"] == [["lamp"]]
        assert payload["ops"][2]["answers"] == [["heater"], ["lamp"]]


class TestWatchCommand:
    def test_watch_reports_deltas(self, tmp_path, capsys):
        db = tmp_path / "db.txt"
        db.write_text(TestAnswersCommand.DB3)
        stream = tmp_path / "stream.txt"
        stream.write_text(
            "# toggle heater observations\n"
            "assert: Off(p4, heater); p2 < p4\n"
            "retract: Off(p3, lamp)\n"
        )
        code = main(["watch", str(db), "On(s, x) & Off(t, x) & s < t",
                     str(stream), "--free-vars", "x", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        steps = payload["steps"]
        assert steps[0]["answers"] == [["lamp"]]
        assert steps[1]["added"] == [["heater"]]
        assert steps[2]["removed"] == [["lamp"]]
        assert payload["delta_capable"] is True

    def test_watch_object_churn_uses_delta(self, tmp_path, capsys):
        db = tmp_path / "db.txt"
        db.write_text("Tag(apple); Tag(pear)\n")
        stream = tmp_path / "stream.txt"
        stream.write_text("assert: Tag(plum)\nretract: Tag(pear)\n")
        code = main(["watch", str(db), "Tag(x)", str(stream),
                     "--free-vars", "x", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["full_refreshes"] == 1
        assert payload["delta_refreshes"] == 2
        assert payload["steps"][-1]["count"] == 2

    def test_watch_rejects_reads_in_stream(self, tmp_path, capsys):
        db = tmp_path / "db.txt"
        db.write_text("Tag(apple)\n")
        stream = tmp_path / "stream.txt"
        stream.write_text("Tag(x)\n")
        code = main(["watch", str(db), "Tag(x)", str(stream),
                     "--free-vars", "x"])
        assert code == 2


class TestBenchSessionCommand:
    def test_bench_session_entailment(self, db_file, capsys):
        code = main(
            ["bench-session", db_file, "Boot(a) & a < b & Crash(b)",
             "--repeat", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "prepared:" in out and "results:   match" in out

    def test_bench_session_answers(self, tmp_path, capsys):
        path = tmp_path / "db3.txt"
        path.write_text(TestAnswersCommand.DB3)
        code = main(
            ["bench-session", str(path), "On(s, x) & Off(t, x) & s < t",
             "--free-vars", "x", "--repeat", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0 and "results:   match" in out


class TestOtherCommands:
    def test_models_count(self, db_file, capsys):
        assert main(["models", db_file]) == 0
        assert "minimal models: 13" in capsys.readouterr().out

    def test_models_list(self, db_file, capsys):
        assert main(["models", db_file, "--list", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "listed 3 minimal models" in out

    def test_classify(self, db_file, capsys):
        assert main(["classify", db_file, "Boot(a) & a < b & Crash(b)"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out and "SEQ" in out

    def test_width(self, db_file, capsys):
        assert main(["width", db_file]) == 0
        assert "width: 2" in capsys.readouterr().out

    def test_inconsistent_database(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("u < v; v < u\n")
        assert main(["models", str(bad)]) == 1
