"""Tests for the command-line interface."""

from __future__ import annotations

import pathlib

import pytest

from repro.cli import main

DB_TEXT = """
# two sensors
Boot(u1); Crash(u2); u1 < u2
Ping(v1); v1 < v2; Timeout(v2)
"""


@pytest.fixture
def db_file(tmp_path: pathlib.Path) -> str:
    path = tmp_path / "db.txt"
    path.write_text(DB_TEXT)
    return str(path)


class TestQueryCommand:
    def test_entailed(self, db_file, capsys):
        code = main(["query", db_file, "Boot(a) & a < b & Crash(b)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "entailed: True" in out

    def test_not_entailed_with_countermodel(self, db_file, capsys):
        code = main(
            ["query", db_file, "Boot(a) & a < b & Ping(b)", "--countermodel"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "entailed: False" in out
        assert "countermodel:" in out

    def test_semantics_flag(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("P(u)\n")
        q = "P(t) & t < s & s < r & P(r)"
        assert main(["query", str(empty), q, "--semantics", "q"]) == 1

    def test_query_from_file(self, db_file, tmp_path, capsys):
        qfile = tmp_path / "q.txt"
        qfile.write_text("Boot(a) & a < b & Crash(b)")
        assert main(["query", db_file, str(qfile)]) == 0

    def test_method_flag(self, db_file, capsys):
        code = main(
            ["query", db_file, "Boot(a) & a < b & Crash(b)",
             "--method", "bruteforce"]
        )
        out = capsys.readouterr().out
        assert code == 0 and "method:   bruteforce" in out

    def test_basis_method(self, db_file, capsys):
        code = main(
            ["query", db_file, "Boot(a) & a < b & Crash(b)",
             "--method", "basis"]
        )
        out = capsys.readouterr().out
        assert code == 0 and "method:   basis" in out


class TestAnswersCommand:
    DB3 = "On(p1, lamp); On(p2, heater); Off(p3, lamp); p1 < p3\n"

    @pytest.fixture
    def db3_file(self, tmp_path: pathlib.Path) -> str:
        path = tmp_path / "db3.txt"
        path.write_text(self.DB3)
        return str(path)

    def test_answers(self, db3_file, capsys):
        code = main(
            ["answers", db3_file, "On(s, x) & Off(t, x) & s < t",
             "--free-vars", "x"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lamp" in out and "certain answers: 1" in out

    def test_answers_empty(self, db3_file, capsys):
        code = main(
            ["answers", db3_file, "Off(s, x) & On(t, x) & s < t",
             "--free-vars", "x"]
        )
        out = capsys.readouterr().out
        assert code == 1 and "certain answers: 0" in out


class TestBenchSessionCommand:
    def test_bench_session_entailment(self, db_file, capsys):
        code = main(
            ["bench-session", db_file, "Boot(a) & a < b & Crash(b)",
             "--repeat", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "prepared:" in out and "results:   match" in out

    def test_bench_session_answers(self, tmp_path, capsys):
        path = tmp_path / "db3.txt"
        path.write_text(TestAnswersCommand.DB3)
        code = main(
            ["bench-session", str(path), "On(s, x) & Off(t, x) & s < t",
             "--free-vars", "x", "--repeat", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0 and "results:   match" in out


class TestOtherCommands:
    def test_models_count(self, db_file, capsys):
        assert main(["models", db_file]) == 0
        assert "minimal models: 13" in capsys.readouterr().out

    def test_models_list(self, db_file, capsys):
        assert main(["models", db_file, "--list", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "listed 3 minimal models" in out

    def test_classify(self, db_file, capsys):
        assert main(["classify", db_file, "Boot(a) & a < b & Crash(b)"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out and "SEQ" in out

    def test_width(self, db_file, capsys):
        assert main(["width", db_file]) == 0
        assert "width: 2" in capsys.readouterr().out

    def test_inconsistent_database(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("u < v; v < u\n")
        assert main(["models", str(bad)]) == 1
