"""Tests for conjunctive monadic evaluation (Lemma 4.1, Theorem 4.7)."""

from __future__ import annotations

import random

import pytest

from helpers import naive_entails_query
from repro.algorithms.conjunctive import (
    bounded_width_entails,
    bounded_width_entails_dag,
    paths_entails,
    paths_entails_dag,
)
from repro.core.database import LabeledDag
from repro.core.query import ConjunctiveQuery
from repro.flexiwords.flexiword import FlexiWord
from repro.workloads.generators import (
    random_conjunctive_monadic_query,
    random_labeled_dag,
    random_observer_dag,
)


def dag_of(word: str) -> LabeledDag:
    return LabeledDag.from_flexiword(FlexiWord.parse(word))


class TestPathDecomposition:
    def test_fig5_query_paths(self):
        """The query of Figure 5 has exactly the two paths the paper lists."""
        q = ConjunctiveQuery.parse_atoms = None  # placeholder removed below
        from repro.core.atoms import le, lt
        from repro.core.atoms import ProperAtom
        from repro.core.sorts import ordvar

        t1, t2, t3, t4 = (ordvar(f"t{i}") for i in range(1, 5))
        q = ConjunctiveQuery.of(
            ProperAtom("P", (t1,)),
            ProperAtom("Q", (t1,)),
            ProperAtom("P", (t2,)),
            ProperAtom("R", (t3,)),
            ProperAtom("S", (t4,)),
            lt(t1, t2),
            lt(t2, t3),
            le(t2, t4),
        )
        paths = {str(p) for p in q.paths()}
        assert paths == {
            "{P,Q} < {P} < {R}",
            "{P,Q} < {P} <= {S}",
        }

    def test_branching_query_needs_both_paths(self):
        # Query: t1 < t2, t1 < t3 with labels P, Q, R.
        from repro.core.atoms import lt
        from repro.core.atoms import ProperAtom
        from repro.core.sorts import ordvar

        t1, t2, t3 = ordvar("t1"), ordvar("t2"), ordvar("t3")
        q = ConjunctiveQuery.of(
            ProperAtom("P", (t1,)),
            ProperAtom("Q", (t2,)),
            ProperAtom("R", (t3,)),
            lt(t1, t2),
            lt(t1, t3),
        )
        # Database satisfying both paths on separate chains: entailed,
        # because paths are checked independently (Lemma 4.1).
        d = LabeledDag.from_chains(
            [FlexiWord.parse("{P} < {Q}"), FlexiWord.parse("{P} < {R}")]
        )
        assert paths_entails(d, q) == naive_entails_query(d, q)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_agreement_with_bruteforce(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            dag = random_labeled_dag(rng, rng.randrange(0, 5))
            q = random_conjunctive_monadic_query(rng, rng.randrange(0, 4))
            expected = naive_entails_query(dag, q)
            assert paths_entails(dag, q) == expected, (
                f"dag={dag.to_database()} q={q}"
            )


class TestBoundedWidth:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_agreement_with_bruteforce(self, seed):
        rng = random.Random(1000 + seed)
        for _ in range(40):
            dag = random_labeled_dag(rng, rng.randrange(0, 5))
            q = random_conjunctive_monadic_query(rng, rng.randrange(0, 4))
            expected = naive_entails_query(dag, q)
            assert bounded_width_entails(dag, q) == expected, (
                f"dag={dag.to_database()} q={q}"
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_on_observer_databases(self, seed):
        rng = random.Random(2000 + seed)
        for _ in range(20):
            dag = random_observer_dag(rng, observers=2, chain_length=2)
            q = random_conjunctive_monadic_query(rng, 3)
            a = paths_entails(dag, q)
            b = bounded_width_entails(dag, q)
            assert a == b, f"dag={dag.to_database()} q={q}"

    def test_empty_query_entailed_by_empty_db(self):
        empty_dag = LabeledDag.from_flexiword(FlexiWord.empty())
        q = ConjunctiveQuery.of()
        assert bounded_width_entails(empty_dag, q)
        assert paths_entails(empty_dag, q)

    def test_nonempty_query_fails_on_empty_db(self):
        empty_dag = LabeledDag.from_flexiword(FlexiWord.empty())
        q = ConjunctiveQuery.from_flexiword(FlexiWord.parse("{}"))
        assert not bounded_width_entails(empty_dag, q)
        assert not paths_entails(empty_dag, q)
