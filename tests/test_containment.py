"""Tests for query containment (Proposition 2.10 / Klug's problem)."""

from __future__ import annotations

import random

import pytest

from repro.containment.containment import (
    boolean_containment_equals_entailment,
    containment_to_entailment,
    contained,
    counterexample,
    entailment_to_containment,
    homomorphism_contained,
)
from repro.containment.relational import RelationalQuery, answer_set
from repro.core.atoms import ProperAtom, le, lt
from repro.core.entailment import entails
from repro.core.models import iter_minimal_models
from repro.core.semantics import Semantics
from repro.core.sorts import objvar, ordvar

x, y, z, u = ordvar("x"), ordvar("y"), ordvar("z"), ordvar("u")
d = objvar("d")


def emp(s, dept):
    return ProperAtom("Emp", (s, dept))


class TestContainmentBasics:
    def test_adding_atoms_shrinks(self):
        q1 = RelationalQuery((d,), (emp(x, d), emp(y, d), lt(x, y)))
        q2 = RelationalQuery((d,), (emp(x, d),))
        assert contained(q1, q2)
        assert not contained(q2, q1)

    def test_le_vs_lt(self):
        q_le = RelationalQuery((d,), (emp(x, d), emp(y, d), le(x, y)))
        q_lt = RelationalQuery((d,), (emp(x, d), emp(y, d), lt(x, y)))
        assert contained(q_lt, q_le)
        assert not contained(q_le, q_lt)

    def test_self_containment(self):
        q = RelationalQuery((d,), (emp(x, d), emp(y, d), lt(x, y)))
        assert contained(q, q)

    def test_unsatisfiable_q1(self):
        q1 = RelationalQuery((), (emp(x, d), lt(x, x)))
        q2 = RelationalQuery((), (emp(y, d),))
        assert contained(q1, q2)

    def test_head_arity_mismatch(self):
        q1 = RelationalQuery((d,), (emp(x, d),))
        q2 = RelationalQuery((), (emp(x, d),))
        with pytest.raises(ValueError):
            contained(q1, q2)


class TestCounterexamples:
    def test_counterexample_is_checked(self):
        q_le = RelationalQuery((d,), (emp(x, d), emp(y, d), le(x, y)))
        q_lt = RelationalQuery((d,), (emp(x, d), emp(y, d), lt(x, y)))
        witness = counterexample(q_le, q_lt)
        assert witness is not None
        assert witness.tuple_ in answer_set(q_le, witness.model)
        assert witness.tuple_ not in answer_set(q_lt, witness.model)

    def test_no_counterexample_when_contained(self):
        q1 = RelationalQuery((d,), (emp(x, d), lt(x, y), emp(y, d)))
        q2 = RelationalQuery((d,), (emp(x, d),))
        assert counterexample(q1, q2) is None


class TestProposition210:
    @pytest.mark.parametrize("seed", range(6))
    def test_round_trip_equivalence(self, seed):
        """Entailment == containment of the translated queries."""
        rng = random.Random(seed)
        from repro.workloads.generators import (
            random_conjunctive_monadic_query,
            random_monadic_database,
        )

        for _ in range(10):
            db = random_monadic_database(rng, rng.randrange(1, 4))
            q = random_conjunctive_monadic_query(
                rng, rng.randrange(1, 3), empty_ok=False
            )
            normalized = q.normalized()
            if normalized is None:
                continue
            direct, via = boolean_containment_equals_entailment(db, normalized)
            assert direct == via

    def test_entailment_to_containment_shape(self):
        from repro.core.atoms import ProperAtom
        from repro.core.database import IndefiniteDatabase
        from repro.core.sorts import ordc

        db = IndefiniteDatabase.of(
            ProperAtom("P", (ordc("u"),)), lt(ordc("u"), ordc("v"))
        )
        q1, q2 = entailment_to_containment(
            db, ConjunctiveQuery_of_P()
        )
        assert q1.head == () and q2.head == ()
        assert len(q1.atoms) == db.size()


def ConjunctiveQuery_of_P():
    from repro.core.query import ConjunctiveQuery

    return ConjunctiveQuery.of(ProperAtom("P", (ordvar("t"),)))


class TestHomomorphismTest:
    def test_sound_on_random_instances(self):
        """homomorphism_contained -> contained (soundness)."""
        rng = random.Random(42)
        preds = [("R", 2)]
        from repro.workloads.generators import random_nary_query

        for _ in range(25):
            q1 = RelationalQuery(
                (), random_nary_query(rng, 2, 2, 1, preds).atoms
            )
            q2 = RelationalQuery(
                (), random_nary_query(rng, 2, 2, 1, preds).atoms
            )
            if homomorphism_contained(q1, q2):
                assert contained(q1, q2)

    def test_complete_without_inequalities(self):
        """For inequality-free queries the two tests agree (Chandra-Merlin)."""
        rng = random.Random(7)
        from repro.core.sorts import objvar

        def rand_query():
            n_obj = rng.randrange(1, 3)
            variables = [objvar(f"o{i}") for i in range(3)]
            atoms = []
            for _ in range(rng.randrange(1, 4)):
                a, b = rng.choice(variables), rng.choice(variables)
                atoms.append(ProperAtom("E", (a, b)))
            return RelationalQuery((), tuple(atoms))

        for _ in range(40):
            q1, q2 = rand_query(), rand_query()
            assert homomorphism_contained(q1, q2) == contained(q1, q2)

    def test_incomplete_with_totality_case_split(self):
        qa = RelationalQuery(
            (), (ProperAtom("A", (x,)), ProperAtom("C", (u,)))
        )
        # "u <= x or x <= u" is valid, so QA is contained in neither
        # single query but the homomorphism test and containment agree
        # on each separately; the disjunction needs the entailment view.
        qb = RelationalQuery(
            (), (ProperAtom("A", (x,)), ProperAtom("C", (u,)), le(x, u))
        )
        assert contained(qa, qb) == homomorphism_contained(qa, qb) == False


class TestSemanticsParameter:
    def test_dense_vs_finite_containment(self):
        """Over Q, 'strictly between' can always be realized by a fresh
        point, so a nontight middle variable changes the verdict."""
        # Q1: two employees x < y.  Q2: additionally some point strictly
        # between them (not required to be an employee!).
        q1 = RelationalQuery((), (emp(x, d), emp(y, d), lt(x, y)))
        q2 = RelationalQuery(
            (), (emp(x, d), emp(y, d), lt(x, z), lt(z, y))
        )
        assert not contained(q1, q2, semantics=Semantics.FIN)
        assert not contained(q1, q2, semantics=Semantics.Z)
        assert contained(q1, q2, semantics=Semantics.Q)
