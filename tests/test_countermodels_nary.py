"""Tests for n-ary countermodel enumeration and its monadic agreement."""

from __future__ import annotations

import random

import pytest

from helpers import naive_countermodels
from repro.algorithms.bruteforce import (
    count_countermodels,
    iter_countermodels_nary,
)
from repro.core.atoms import ProperAtom, lt, ne
from repro.core.database import IndefiniteDatabase
from repro.core.query import ConjunctiveQuery
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.workloads.generators import (
    random_disjunctive_monadic_query,
    random_labeled_dag,
)

u, v = ordc("u"), ordc("v")
t1, t2 = ordvar("t1"), ordvar("t2")


class TestNaryCountermodels:
    def test_agrees_with_monadic_enumeration(self):
        rng = random.Random(0)
        for _ in range(25):
            db = random_labeled_dag(rng, rng.randrange(0, 5)).to_database()
            # Round-trip through the database so both sides see the same
            # constants (an unlabeled isolated dag vertex has no atom to
            # live in, so it cannot occur in a database).
            dag = db.monadic()
            q = random_disjunctive_monadic_query(rng, 2, 2)
            expected = naive_countermodels(dag, q)
            got = {m.word() for m in iter_countermodels_nary(db, q)}
            assert got == expected

    def test_count_matches_iteration(self):
        db = IndefiniteDatabase.of(
            ProperAtom("R", (u, obj("a"))),
            ProperAtom("R", (v, obj("b"))),
        )
        q = ConjunctiveQuery.of(
            ProperAtom("R", (t1, objvar("x"))),
            ProperAtom("R", (t2, objvar("y"))),
            lt(t1, t2),
        )
        assert count_countermodels(db, q) == sum(
            1 for _ in iter_countermodels_nary(db, q)
        )

    def test_neq_database_countermodels(self):
        db = IndefiniteDatabase.of(
            ProperAtom("P", (u,)), ProperAtom("P", (v,)), ne(u, v)
        )
        # both orderings of the two distinct points are countermodels of
        # "P at two <=-comparable points with Q somewhere"
        q = ConjunctiveQuery.of(ProperAtom("Q", (t1,)))
        models = list(iter_countermodels_nary(db, q))
        assert len(models) == 2
        assert all(m.order_size == 2 for m in models)

    def test_entailed_query_has_no_countermodels(self):
        db = IndefiniteDatabase.of(ProperAtom("P", (u,)))
        q = ConjunctiveQuery.of(ProperAtom("P", (t1,)))
        assert list(iter_countermodels_nary(db, q)) == []
