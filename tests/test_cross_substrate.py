"""Cross-substrate validation: two independent implementations must agree.

The library contains two ways to derive entailed order relations — the
order-graph reachability of Section 2 and the point-algebra path
consistency of the related-work substrate — and two ways to state gadget
families (strict and ``[<=]``-only).  These tests pit them against each
other on random inputs.
"""

from __future__ import annotations

import random

import pytest

from repro.core.atoms import OrderAtom, Rel
from repro.core.models import count_minimal_models
from repro.core.ordergraph import OrderGraph
from repro.core.sorts import ordc
from repro.pointalgebra.pa import (
    EMPTY,
    PointNetwork,
    entailed_relation,
    from_rel,
    to_order_rel,
)


def random_atoms(rng: random.Random, names, count, rels) -> list[OrderAtom]:
    atoms = []
    for _ in range(count):
        x, y = rng.sample(names, 2)
        atoms.append(OrderAtom(ordc(x), rng.choice(rels), ordc(y)))
    return atoms


class TestGraphVsPointAlgebra:
    @pytest.mark.parametrize("seed", range(10))
    def test_entailed_relations_agree(self, seed):
        """OrderGraph.entails_atom == path-consistency minimal relation,
        on consistent [<, <=] constraint sets."""
        rng = random.Random(seed)
        names = ["a", "b", "c", "d"]
        for _ in range(30):
            atoms = random_atoms(
                rng, names, rng.randrange(1, 6), [Rel.LT, Rel.LE]
            )
            graph = OrderGraph.from_atoms(atoms)
            if not graph.is_consistent():
                net = PointNetwork()
                for atom in atoms:
                    net.add_atom(atom)
                assert not net.is_consistent()
                continue
            norm = graph.normalize()
            for x in names:
                for y in names:
                    if x == y or x not in graph or y not in graph:
                        continue
                    pa_rel = entailed_relation(atoms, x, y)
                    cx, cy = norm.canon.get(x, x), norm.canon.get(y, y)
                    for rel in (Rel.LT, Rel.LE):
                        graph_says = norm.graph.entails_atom(cx, cy, rel)
                        # the graph entails x rel y iff the PA minimal
                        # relation is at least as strong as rel
                        pa_says = pa_rel <= from_rel(rel) and (
                            cx != cy or rel is Rel.LE
                        )
                        if cx == cy:
                            pa_says = rel is Rel.LE
                        assert graph_says == pa_says, (
                            f"{x} {rel} {y}: graph={graph_says} pa={pa_rel}"
                            f" atoms={atoms}"
                        )

    @pytest.mark.parametrize("seed", range(10))
    def test_consistency_agrees_with_model_count(self, seed):
        """PA consistency == existence of a minimal model, with '!='."""
        rng = random.Random(100 + seed)
        names = ["a", "b", "c"]
        for _ in range(30):
            atoms = random_atoms(
                rng, names, rng.randrange(1, 5), [Rel.LT, Rel.LE, Rel.NE]
            )
            net = PointNetwork()
            for atom in atoms:
                net.add_atom(atom)
            graph = OrderGraph.from_atoms(atoms)
            has_model = count_minimal_models(graph) > 0
            assert net.is_consistent() == has_model, atoms


class TestToOrderRel:
    def test_roundtrip(self):
        for rel in (Rel.LT, Rel.LE, Rel.NE):
            assert to_order_rel(from_rel(rel)) == rel

    def test_unexpressible(self):
        from repro.pointalgebra.pa import ANY, GE

        assert to_order_rel(ANY) is None
        assert to_order_rel(GE) is None


class TestStrictVsLeGadgets:
    @pytest.mark.parametrize("seed", range(4))
    def test_theorem32_variants_agree(self, seed):
        """The strict and [<=] Theorem 3.2 reductions give the same verdict."""
        from repro.core.entailment import entails
        from repro.reductions.le_variants import reduction_claim_le
        from repro.reductions.monotone3sat import (
            MonotoneSatInstance,
            reduction_claim,
        )

        rng = random.Random(200 + seed)
        letters = ["p", "q"]
        instance = MonotoneSatInstance(
            positive=(tuple(rng.choice(letters) for _ in range(3)),),
            negative=(tuple(rng.choice(letters) for _ in range(3)),),
        )
        db1, q1, expected = reduction_claim(instance, bounded_width=True)
        db2, q2, expected2 = reduction_claim_le(instance)
        assert expected == expected2
        assert entails(db1, q1) == expected
        assert entails(db2, q2) == expected
