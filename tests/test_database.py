"""Tests for IndefiniteDatabase and the LabeledDag view."""

from __future__ import annotations

import pytest

from repro.core.atoms import ProperAtom, le, lt, ne
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.errors import InconsistentError, NotMonadicError, SortError
from repro.core.sorts import obj, objvar, ordc
from repro.flexiwords.flexiword import FlexiWord

u, v, w = ordc("u"), ordc("v"), ordc("w")


def P(t):
    return ProperAtom("P", (t,))


class TestDatabaseBasics:
    def test_groundness_enforced(self):
        with pytest.raises(SortError):
            IndefiniteDatabase.of(ProperAtom("P", (objvar("x"),)))

    def test_constant_partition(self):
        db = IndefiniteDatabase.of(
            ProperAtom("R", (u, obj("a"))), lt(u, v)
        )
        assert db.order_constants == {"u", "v"}
        assert db.object_constants == {"a"}
        assert db.predicates == {"R": 2}

    def test_union_and_renaming(self):
        d1 = IndefiniteDatabase.of(P(u))
        d2 = IndefiniteDatabase.of(P(v), lt(u, v))
        combined = d1 | d2
        assert combined.size() == 3
        renamed = combined.renamed("_x")
        assert renamed.order_constants == {"u_x", "v_x"}

    def test_normalization_rewrites_proper_atoms(self):
        db = IndefiniteDatabase.of(P(u), P(v), le(u, v), le(v, u))
        norm, canon = db.normalized()
        assert len(norm.order_constants) == 1
        assert canon["v"] == canon["u"]

    def test_normalization_raises_on_inconsistency(self):
        db = IndefiniteDatabase.of(lt(u, v), lt(v, u))
        with pytest.raises(InconsistentError):
            db.normalized()

    def test_width(self):
        db = IndefiniteDatabase.of(P(u), P(v), P(w), lt(u, v))
        assert db.width() == 2


class TestMonadicView:
    def test_monadic_conversion(self):
        db = IndefiniteDatabase.of(P(u), ProperAtom("Q", (u,)), lt(u, v))
        dag = db.monadic()
        assert dag.labels["u"] == {"P", "Q"}
        assert dag.labels["v"] == frozenset()

    def test_non_monadic_rejected(self):
        db = IndefiniteDatabase.of(ProperAtom("R", (u, obj("a"))))
        with pytest.raises(NotMonadicError):
            db.monadic()
        db2 = IndefiniteDatabase.of(ProperAtom("P", (obj("a"),)))
        with pytest.raises(NotMonadicError):
            db2.monadic()

    def test_roundtrip(self):
        dag = LabeledDag.from_flexiword(FlexiWord.parse("{P} < {Q,R} <= {}"))
        again = dag.to_database().monadic()
        assert {str(p) for p in again.iter_paths()} == {
            str(p) for p in dag.iter_paths()
        }

    def test_from_chains_width(self):
        dag = LabeledDag.from_chains(
            [FlexiWord.parse("{P} < {Q}"), FlexiWord.parse("{R}")]
        )
        assert dag.width() == 2
        assert len(dag.vertices) == 3

    def test_paths_of_branching_dag(self):
        from repro.core.ordergraph import OrderGraph
        from repro.core.atoms import Rel

        g = OrderGraph()
        g.add_edge("a", "b", Rel.LT)
        g.add_edge("a", "c", Rel.LE)
        dag = LabeledDag(
            g, {"a": frozenset("P"), "b": frozenset("Q"), "c": frozenset("R")}
        )
        paths = {str(p) for p in dag.iter_paths()}
        assert paths == {"{P} < {Q}", "{P} <= {R}"}

    def test_normalized_merges_labels(self):
        from repro.core.ordergraph import OrderGraph
        from repro.core.atoms import Rel

        g = OrderGraph()
        g.add_edge("a", "b", Rel.LE)
        g.add_edge("b", "a", Rel.LE)
        dag = LabeledDag(g, {"a": frozenset("P"), "b": frozenset("Q")})
        norm = dag.normalized()
        assert len(norm.vertices) == 1
        assert norm.labels["a"] == {"P", "Q"}

    def test_restrict(self):
        dag = LabeledDag.from_flexiword(FlexiWord.parse("{P} < {Q} < {R}"))
        sub = dag.restrict({"w0", "w2"})
        assert len(sub.vertices) == 2
        assert sub.graph.edge_label("w0", "w2") is None
