"""Differential tests: bitset/cached substrate vs the naive reference.

The optimized reachability substrate (interned bitsets, condensation DP,
generation-counter caches, region memoization) must return results
*identical* to the seed's naive implementations, which are retained in
``repro.substrate.reference``.  These tests compare the two on randomized
graphs — acyclic and cyclic, with and without '!=' pairs — and on
mutation-after-query sequences designed to catch stale-cache bugs.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.conjunctive import (
    bounded_width_entails_dag,
    paths_entails_dag,
)
from repro.algorithms.disjunctive import theorem53
from repro.core.atoms import Rel
from repro.core.models import count_minimal_models, iter_block_sequences
from repro.core.ordergraph import OrderGraph
from repro.substrate import reference
from repro.substrate.digraph import Digraph
from repro.workloads.generators import (
    random_conjunctive_monadic_query,
    random_disjunctive_monadic_query,
    random_labeled_dag,
    random_observer_dag,
)

RELS = (Rel.LT, Rel.LE)


def random_order_graph(
    rng: random.Random,
    n: int,
    edge_prob: float = 0.3,
    le_prob: float = 0.5,
    cyclic: bool = False,
    neq_prob: float = 0.0,
) -> OrderGraph:
    g = OrderGraph()
    names = [f"v{i}" for i in range(n)]
    for v in names:
        g.add_vertex(v)
    for i in range(n):
        for j in range(n):
            if i == j or (not cyclic and i > j):
                continue
            if rng.random() < edge_prob:
                rel = Rel.LE if rng.random() < le_prob else Rel.LT
                g.add_edge(names[i], names[j], rel)
    if neq_prob:
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < neq_prob:
                    g.add_edge(names[i], names[j], Rel.NE)
    return g


def naive_views(g: OrderGraph):
    """All derived relations recomputed on the naive reference substrate."""
    with reference.naive_mode():
        norm = g.normalize()
        return {
            "reach": {v: set(s) for v, s in g.reachability().items()},
            "strict": {v: set(s) for v, s in g.strict_reachability().items()},
            "minors": set(g.minor_vertices()),
            "minimal": set(g.minimal_vertices()),
            "consistent": norm.consistent,
            "canon": dict(norm.canon),
            "norm_edges": dict(norm.graph._edges),
            "norm_neq": set(norm.graph.neq_pairs),
        }


def optimized_views(g: OrderGraph):
    norm = g.normalize()
    return {
        "reach": {v: set(s) for v, s in g.reachability().items()},
        "strict": {v: set(s) for v, s in g.strict_reachability().items()},
        "minors": set(g.minor_vertices()),
        "minimal": set(g.minimal_vertices()),
        "consistent": norm.consistent,
        "canon": dict(norm.canon),
        "norm_edges": dict(norm.graph._edges),
        "norm_neq": set(norm.graph.neq_pairs),
    }


class TestDigraphDifferential:
    def test_closure_and_reachability_match_naive(self):
        rng = random.Random(11)
        for _ in range(60):
            n = rng.randrange(0, 12)
            g = Digraph()
            for i in range(n):
                g.add_vertex(i)
            for i in range(n):
                for j in range(n):
                    if rng.random() < 0.25:
                        g.add_edge(i, j)  # self-loops and cycles included
            assert g.transitive_closure() == reference.naive_transitive_closure(g)
            sources = {i for i in range(n) if rng.random() < 0.3}
            sources.add(n + 99)  # absent vertices must be ignored
            assert g.reachable_from(sources) == reference.naive_reachable_from(
                g, sources
            )

    def test_remove_edge(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.remove_edge("a", "b")
        assert g.successors("a") == set()
        assert g.predecessors("b") == set()
        assert g.vertices == {"a", "b", "c"}
        g.remove_edge("a", "b")  # idempotent no-op
        assert g.reachable_from(["a"]) == {"a"}
        assert g.reachable_from(["b"]) == {"b", "c"}


class TestOrderGraphDifferential:
    @pytest.mark.parametrize("cyclic", [False, True])
    @pytest.mark.parametrize("neq_prob", [0.0, 0.15])
    def test_derived_relations_match_naive(self, cyclic, neq_prob):
        rng = random.Random(7 + int(cyclic) + int(neq_prob * 100))
        for _ in range(40):
            n = rng.randrange(0, 10)
            g = random_order_graph(
                rng, n, edge_prob=0.3, cyclic=cyclic, neq_prob=neq_prob
            )
            assert optimized_views(g) == naive_views(g)

    def test_full_output_unchanged(self):
        """Property test for the `full()` cleanup: the dropped second loop
        over strict reachability was redundant (strict is a subset of
        reachability), so `full()` must equal the seed's double-loop
        construction exactly — labels, edge set and '!=' pairs."""
        rng = random.Random(23)
        for _ in range(40):
            n = rng.randrange(0, 9)
            g = random_order_graph(
                rng, n, cyclic=bool(rng.randrange(2)), neq_prob=0.1
            )
            full = g.full()
            with reference.naive_mode():
                reach = g.reachability()
                strict = g.strict_reachability()
                expect = OrderGraph()
                for v in g.vertices:
                    expect.add_vertex(v)
                for u in g.vertices:
                    for v in reach[u]:
                        if u == v:
                            continue
                        expect.add_edge(
                            u, v, Rel.LT if v in strict[u] else Rel.LE
                        )
                for u in g.vertices:  # the seed's second loop
                    for v in strict[u]:
                        if u != v:
                            expect.add_edge(u, v, Rel.LT)
                for pair in g.neq_pairs:
                    names = sorted(pair)
                    if len(names) == 1:
                        expect.add_edge(names[0], names[0], Rel.NE)
                    else:
                        expect.add_edge(names[0], names[1], Rel.NE)
            assert full._edges == expect._edges
            assert full.vertices == expect.vertices
            assert full.neq_pairs == expect.neq_pairs

    def test_reduced_matches_naive(self):
        rng = random.Random(31)
        for _ in range(25):
            n = rng.randrange(0, 9)
            g = random_order_graph(rng, n, edge_prob=0.5)
            fast = g.full().reduced()
            with reference.naive_mode():
                slow = g.full().reduced()
            assert fast._edges == slow._edges
            assert fast.vertices == slow.vertices

    def test_mutation_after_query_sequences(self):
        """Interleave queries with mutations; cached views must always equal
        a from-scratch rebuild (stale-cache detector)."""
        rng = random.Random(47)
        for _ in range(25):
            g = random_order_graph(rng, rng.randrange(2, 8), cyclic=True)
            edges = dict(g._edges)
            vertices = set(g.vertices)
            for _step in range(12):
                # populate the caches before mutating
                optimized_views(g)
                op = rng.randrange(4)
                names = sorted(vertices)
                if op == 0 or not names:
                    v = f"n{rng.randrange(100)}"
                    g.add_vertex(v)
                    vertices.add(v)
                elif op == 1:
                    u, v = rng.choice(names), rng.choice(names)
                    rel = RELS[rng.randrange(2)]
                    g.add_edge(u, v, rel)
                    old = edges.get((u, v))
                    if old is None or (old is Rel.LE and rel is Rel.LT):
                        edges[(u, v)] = rel
                    vertices.update((u, v))
                elif op == 2 and edges:
                    u, v = rng.choice(sorted(edges))
                    g.remove_edge(u, v)
                    del edges[(u, v)]
                else:
                    v = rng.choice(names)
                    g.remove_vertices({v})
                    vertices.discard(v)
                    edges = {
                        e: r for e, r in edges.items() if v not in e
                    }
                fresh = OrderGraph()
                for v in vertices:
                    fresh.add_vertex(v)
                for (u, v), rel in edges.items():
                    fresh.add_edge(u, v, rel)
                assert optimized_views(g) == optimized_views(fresh)
                assert optimized_views(g) == naive_views(fresh)


class TestPipelineDifferential:
    """End-to-end: each decision procedure agrees with itself run naively."""

    def test_theorem53_matches_naive(self):
        rng = random.Random(5)
        for _ in range(12):
            dag = random_observer_dag(rng, 2, 2)
            query = random_disjunctive_monadic_query(rng, 2, 2)
            fast = theorem53(dag, query)
            with reference.naive_mode():
                slow = theorem53(dag, query)
            assert fast.holds == slow.holds
            assert fast.countermodel == slow.countermodel

    def test_bounded_width_matches_naive(self):
        rng = random.Random(6)
        for _ in range(15):
            dag = random_labeled_dag(rng, 5)
            qdag = random_conjunctive_monadic_query(rng, 3).monadic_dag()
            fast = bounded_width_entails_dag(dag, qdag)
            with reference.naive_mode():
                slow = bounded_width_entails_dag(dag, qdag)
            assert fast == slow

    def test_paths_entails_matches_naive(self):
        rng = random.Random(8)
        for _ in range(15):
            dag = random_labeled_dag(rng, 5)
            qdag = random_conjunctive_monadic_query(rng, 3).monadic_dag()
            fast = paths_entails_dag(dag, qdag)
            with reference.naive_mode():
                slow = paths_entails_dag(dag, qdag)
            assert fast == slow

    def test_model_enumeration_matches_naive(self):
        rng = random.Random(9)
        for _ in range(15):
            g = random_order_graph(rng, rng.randrange(0, 6), neq_prob=0.1)
            norm = g.normalize().graph if g.is_consistent() else g
            fast_seqs = list(iter_block_sequences(norm))
            fast_count = count_minimal_models(norm)
            with reference.naive_mode():
                slow_seqs = list(iter_block_sequences(norm))
                slow_count = count_minimal_models(norm)
            assert fast_seqs == slow_seqs
            assert fast_count == slow_count
