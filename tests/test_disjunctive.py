"""Tests for the Theorem 5.3 search and countermodel enumeration."""

from __future__ import annotations

import random

import pytest

from helpers import naive_countermodels, naive_entails_query
from repro.algorithms.disjunctive import (
    iter_countermodels,
    theorem53,
    theorem53_entails,
)
from repro.core.database import LabeledDag
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.flexiwords.flexiword import FlexiWord
from repro.workloads.generators import (
    random_disjunctive_monadic_query,
    random_labeled_dag,
    random_observer_dag,
)


def dag_of(word: str) -> LabeledDag:
    return LabeledDag.from_flexiword(FlexiWord.parse(word))


def seq_query(word: str) -> ConjunctiveQuery:
    return ConjunctiveQuery.from_flexiword(FlexiWord.parse(word))


class TestTheorem53Basics:
    def test_single_disjunct_simple(self):
        d = dag_of("{P} < {Q}")
        assert theorem53_entails(d, seq_query("{P} < {Q}"))
        assert not theorem53_entails(d, seq_query("{Q} < {P}"))

    def test_true_disjunction_from_incomparable(self):
        # P and Q incomparable: "P <= Q or Q <= P" holds in every model
        # (either order, or both at one point).
        d = LabeledDag.from_chains([FlexiWord.parse("{P}"), FlexiWord.parse("{Q}")])
        q = DisjunctiveQuery.of(seq_query("{P} <= {Q}"), seq_query("{Q} <= {P}"))
        assert theorem53_entails(d, q)
        # Neither disjunct is entailed on its own.
        assert not theorem53_entails(d, seq_query("{P} <= {Q}"))
        assert not theorem53_entails(d, seq_query("{Q} <= {P}"))

    def test_strict_disjunction_fails_on_merge(self):
        # "P < Q or Q < P" fails in the model that merges the two points.
        d = LabeledDag.from_chains([FlexiWord.parse("{P}"), FlexiWord.parse("{Q}")])
        q = DisjunctiveQuery.of(seq_query("{P} < {Q}"), seq_query("{Q} < {P}"))
        result = theorem53(d, q)
        assert not result.holds
        assert result.countermodel == (frozenset({"P", "Q"}),)

    def test_empty_database(self):
        empty = LabeledDag.from_flexiword(FlexiWord.empty())
        assert not theorem53_entails(empty, seq_query("{}"))
        assert theorem53_entails(empty, ConjunctiveQuery.of())

    def test_countermodel_word_is_valid(self):
        rng = random.Random(5)
        from repro.core.models import iter_minimal_words

        for _ in range(150):
            dag = random_labeled_dag(rng, rng.randrange(0, 5))
            q = random_disjunctive_monadic_query(
                rng, rng.randrange(1, 3), rng.randrange(0, 3)
            )
            result = theorem53(dag, q)
            if result.holds:
                continue
            assert result.countermodel in set(iter_minimal_words(dag))
            assert result.countermodel in naive_countermodels(dag, q)


class TestTheorem53AgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_agreement(self, seed):
        rng = random.Random(3000 + seed)
        for _ in range(40):
            dag = random_labeled_dag(rng, rng.randrange(0, 5))
            q = random_disjunctive_monadic_query(
                rng, rng.randrange(1, 4), rng.randrange(0, 3)
            )
            expected = naive_entails_query(dag, q)
            assert theorem53_entails(dag, q) == expected, (
                f"dag={dag.to_database()} q={q}"
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_observer_databases(self, seed):
        rng = random.Random(4000 + seed)
        for _ in range(15):
            dag = random_observer_dag(rng, observers=2, chain_length=2)
            q = random_disjunctive_monadic_query(rng, 2, 2)
            expected = naive_entails_query(dag, q)
            assert theorem53_entails(dag, q) == expected


class TestCountermodelEnumeration:
    @pytest.mark.parametrize("seed", range(8))
    def test_enumerates_exactly_the_countermodels(self, seed):
        rng = random.Random(5000 + seed)
        for _ in range(25):
            dag = random_labeled_dag(rng, rng.randrange(0, 5))
            q = random_disjunctive_monadic_query(
                rng, rng.randrange(1, 3), rng.randrange(0, 3)
            )
            expected = naive_countermodels(dag, q)
            got = set(iter_countermodels(dag, q))
            assert got == expected, f"dag={dag.to_database()} q={q}"

    def test_scheduling_style_enumeration(self):
        # Two observers; enumerate every model violating "P strictly
        # before R" — i.e. the schedules satisfying the negated constraint.
        dag = LabeledDag.from_chains(
            [FlexiWord.parse("{P} < {Q}"), FlexiWord.parse("{R}")]
        )
        bad = set(iter_countermodels(dag, seq_query("{P} < {R}")))
        assert bad == naive_countermodels(dag, seq_query("{P} < {R}"))
        assert bad  # R can come first, so violations exist
