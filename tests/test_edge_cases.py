"""Edge-case and API-surface coverage across modules."""

from __future__ import annotations

import random

import pytest

from repro.algorithms.bruteforce import (
    EntailmentWitness,
    count_countermodels,
    entails_bruteforce,
)
from repro.algorithms.disjunctive import iter_countermodels
from repro.algorithms.seq import seq_entails_disjunctive
from repro.core.atoms import ProperAtom, atom_constants, atom_variables, chain, le, lt, ne
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.errors import NotSequentialError
from repro.core.models import iter_minimal_models
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.core.sorts import Sort, Term, fresh_names, obj, objvar, ordc, ordvar
from repro.flexiwords.flexiword import FlexiWord

u, v = ordc("u"), ordc("v")
t1, t2 = ordvar("t1"), ordvar("t2")


def P(t):
    return ProperAtom("P", (t,))


def Q(t):
    return ProperAtom("Q", (t,))


class TestSorts:
    def test_term_predicates(self):
        assert obj("a").is_object and obj("a").is_const
        assert ordvar("t").is_order and ordvar("t").is_var
        assert str(ordc("u")) == "u"
        assert "order" in repr(ordc("u"))

    def test_fresh_names_avoid_taken(self):
        taken = {"x0", "x1"}
        names = fresh_names("x", 2, taken)
        assert names == ["x2", "x3"]
        assert {"x2", "x3"} <= taken


class TestAtoms:
    def test_chain_builder(self):
        atoms = chain([u, v, ordc("w")])
        assert len(atoms) == 2
        assert all(a.rel.value == "<" for a in atoms)

    def test_atom_helpers(self):
        atoms = [P(t1), lt(t1, t2), ne(u, v)]
        assert atom_variables(atoms) == {t1, t2}
        assert atom_constants(atoms) == {u, v}

    def test_sort_error_on_object_order_atom(self):
        from repro.core.errors import SortError

        with pytest.raises(SortError):
            lt(obj("a"), u)

    def test_empty_predicate_name_rejected(self):
        with pytest.raises(ValueError):
            ProperAtom("", (u,))

    def test_substitution(self):
        atom = ProperAtom("R", (t1, objvar("x")))
        subst = atom.substitute({t1: u})
        assert subst.args[0] == u

    def test_atom_str(self):
        assert str(lt(u, v)) == "u < v"
        assert str(le(u, v)) == "u <= v"
        assert str(ne(u, v)) == "u != v"
        assert str(P(u)) == "P(u)"


class TestBruteForceAPI:
    def test_witness_truthiness(self):
        db = IndefiniteDatabase.of(P(u))
        good = entails_bruteforce(db, ConjunctiveQuery.of(P(t1)))
        bad = entails_bruteforce(db, ConjunctiveQuery.of(Q(t1)))
        assert good and not bad
        assert bad.countermodel is not None

    def test_count_countermodels(self):
        db = IndefiniteDatabase.of(P(u), Q(v))  # 3 minimal models
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        # satisfied only in the model with u strictly before v
        assert count_countermodels(db, q) == 2

    def test_inconsistent_db_entailment(self):
        db = IndefiniteDatabase.of(lt(u, v), lt(v, u))
        assert entails_bruteforce(db, ConjunctiveQuery.of(Q(t1))).holds


class TestSeqDisjunctiveHelper:
    def test_single_disjunct(self):
        dag = LabeledDag.from_flexiword(FlexiWord.parse("{P} < {Q}"))
        q = ConjunctiveQuery.from_flexiword(FlexiWord.parse("{P} < {Q}"))
        assert seq_entails_disjunctive(dag, q)

    def test_sound_direction(self):
        dag = LabeledDag.from_flexiword(FlexiWord.parse("{P} < {Q}"))
        yes = ConjunctiveQuery.from_flexiword(FlexiWord.parse("{P}"))
        no = ConjunctiveQuery.from_flexiword(FlexiWord.parse("{R}"))
        assert seq_entails_disjunctive(dag, DisjunctiveQuery.of(yes, no))

    def test_raises_when_disjunction_needed(self):
        dag = LabeledDag.from_chains(
            [FlexiWord.parse("{P}"), FlexiWord.parse("{Q}")]
        )
        q = DisjunctiveQuery.of(
            ConjunctiveQuery.from_flexiword(FlexiWord.parse("{P} <= {Q}")),
            ConjunctiveQuery.from_flexiword(FlexiWord.parse("{Q} <= {P}")),
        )
        with pytest.raises(NotSequentialError):
            seq_entails_disjunctive(dag, q)


class TestCountermodelEnumeratorLimits:
    def test_max_states_cap(self):
        rng = random.Random(0)
        from repro.workloads.generators import (
            random_disjunctive_monadic_query,
            random_observer_dag,
        )

        dag = random_observer_dag(rng, 3, 3)
        q = random_disjunctive_monadic_query(rng, 3, 3)
        with pytest.raises(MemoryError):
            list(iter_countermodels(dag, q, max_states=5))

    def test_empty_query_false_everywhere(self):
        dag = LabeledDag.from_flexiword(FlexiWord.parse("{P} < {Q}"))
        false_query = DisjunctiveQuery(())
        models = list(iter_countermodels(dag, false_query))
        assert models == [
            (frozenset({"P"}), frozenset({"Q"})),
        ]


class TestStructureAPI:
    def test_word_view(self):
        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        (model,) = [m for m in iter_minimal_models(db)]
        assert model.word() == (frozenset({"P"}), frozenset({"Q"}))

    def test_str(self):
        db = IndefiniteDatabase.of(P(u))
        (model,) = list(iter_minimal_models(db))
        assert "P(0)" in str(model)


class TestFlexiWordMisc:
    def test_strictest_model(self):
        w = FlexiWord.parse("{P} <= {Q}")
        assert w.strictest_model() == (frozenset({"P"}), frozenset({"Q"}))

    def test_from_pairs(self):
        from repro.core.atoms import Rel

        w = FlexiWord.from_pairs({"P"}, (Rel.LT, {"Q"}), (Rel.LE, set()))
        assert str(w) == "{P} < {Q} <= {}"

    def test_bool_and_len(self):
        assert not FlexiWord.empty()
        assert len(FlexiWord.parse("{P} < {Q}")) == 2


class TestDatabaseMisc:
    def test_str_roundtrip_through_parser(self):
        from repro.substrate.parser import parse_database

        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v), ne(u, v))
        again = parse_database(str(db).replace(";", "\n"))
        assert again == db

    def test_labeled_dag_size(self):
        dag = LabeledDag.from_flexiword(FlexiWord.parse("{P,Q} < {R}"))
        assert dag.size() == 2 + 1 + 3  # vertices + edges + labels

    def test_empty_database(self):
        db = IndefiniteDatabase.empty()
        assert db.size() == 0
        assert db.width() == 0
        assert list(iter_minimal_models(db)) == [
            next(iter(iter_minimal_models(db)))
        ]
