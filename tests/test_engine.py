"""Differential tests for the execution engine subsystem.

The load-bearing properties:

* batched (``execute_many``), streamed (``execute_stream``), pooled
  (``WorkerPool``) and view-maintained (``MaterializedView``) answers
  are identical to sequential per-request Session execution — which the
  PR 2 suite already pins to the one-shot API — across randomized mixed
  read/write request streams;
* snapshots are frozen forever (every mutation class on the live
  session leaves them untouched) while the live session stays exact;
* the view's object-fact delta path is actually taken (not silently
  falling back to full refreshes) and still always equals a
  from-scratch ``certain_answers``.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Session
from repro.core.atoms import OrderAtom, ProperAtom, Rel, lt
from repro.core.database import IndefiniteDatabase
from repro.core.entailment import certain_answers, explain
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.core.query import ConjunctiveQuery
from repro.engine import (
    MaterializedView,
    Mutation,
    QueryRequest,
    SessionSnapshot,
    SnapshotMutationError,
    WorkerPool,
    execute_many,
    execute_parallel,
    execute_stream,
)
from repro.workloads.generators import (
    random_certain_answers_workload,
    random_nary_database,
    random_nary_query,
    random_request_stream,
)

t1, t2 = ordvar("t1"), ordvar("t2")
u, v, w = ordc("u"), ordc("v"), ordc("w")


def P(t):
    return ProperAtom("P", (t,))

def Q(t):
    return ProperAtom("Q", (t,))


def observe(request: QueryRequest, result) -> object:
    """The observable of a result: verdict, or the certain answers."""
    if request.free_vars is None:
        return result.holds
    assert result.answers is not None
    return frozenset(result.answers)


def one_shot_observe(db: IndefiniteDatabase, request: QueryRequest) -> object:
    """The same observable computed by the stateless one-shot API."""
    if request.free_vars is None:
        return explain(
            db, request.query,
            semantics=request.semantics, method=request.method,
        ).holds
    return frozenset(certain_answers(
        db, request.query, request.free_vars, semantics=request.semantics
    ))


class TestExecuteMany:
    def test_matches_one_shot_per_request(self):
        rng = random.Random(200)
        for _ in range(4):
            db, ops = random_request_stream(
                rng, n_objects=3, n_queries=4, n_ops=12, write_prob=0.0
            )
            requests = [op for op in ops if isinstance(op, QueryRequest)]
            results = execute_many(Session(db), requests)
            for request, result in zip(requests, results):
                assert observe(request, result) == one_shot_observe(
                    db, request
                )

    def test_duplicate_requests_share_one_result(self):
        rng = random.Random(201)
        db, ops = random_request_stream(
            rng, n_objects=3, n_queries=2, n_ops=8, write_prob=0.0
        )
        requests = [op for op in ops if isinstance(op, QueryRequest)]
        results = execute_many(Session(db), requests)
        by_key: dict = {}
        for request, result in zip(requests, results):
            assert by_key.setdefault(request.plan_key, result) is result

    def test_combined_model_sweep_matches_individual_exactly(self):
        # the combined sweep is invisible in the results: each request's
        # Result — verdict, method tag, countermodel, answers — is
        # byte-for-byte what its plan's own execution produces
        rng = random.Random(202)
        for _ in range(6):
            db = random_nary_database(rng, 3, 3, 4)
            requests = []
            for _ in range(3):
                q = random_nary_query(rng, 3, 2, 2)
                free = tuple(sorted(q.object_variables(), key=str)[:1])
                if free:
                    requests.append(QueryRequest(q, free_vars=free))
            if not requests:
                continue
            results = execute_many(Session(db), requests)
            solo_session = Session(db)
            for request, result in zip(requests, results):
                assert observe(request, result) == one_shot_observe(
                    db, request
                )
                solo = request.prepare(solo_session).execute()
                assert result == solo

    def test_empty_batch(self):
        assert execute_many(Session(), []) == []


class TestExecuteStream:
    def test_mixed_stream_matches_sequential_loop(self):
        rng = random.Random(203)
        for _ in range(4):
            db, ops = random_request_stream(
                rng, n_objects=3, n_queries=3, n_ops=20, write_prob=0.4
            )
            got = execute_stream(Session(db), ops)
            # the oracle: replay writes on a fresh database, answer each
            # read with the stateless one-shot API at that exact state
            state = Session(db)
            for op, result in zip(ops, got):
                if isinstance(op, Mutation):
                    assert result is None
                    op.apply(state)
                else:
                    assert observe(op, result) == one_shot_observe(
                        state.db, op
                    )

    def test_mutation_validation(self):
        with pytest.raises(ValueError):
            Mutation("frobnicate", ())
        with pytest.raises(TypeError):
            execute_stream(Session(), ["not an op"])


class TestSnapshot:
    def _workload(self):
        rng = random.Random(204)
        return random_certain_answers_workload(
            rng, width=2, chain_length=2, n_objects=3, n_free=1
        )

    def test_snapshot_frozen_across_every_mutation_kind(self):
        db, query, free = self._workload()
        session = Session(db)
        snap = session.snapshot()
        frozen = frozenset(snap.certain_answers(query, free))
        assert frozen == frozenset(certain_answers(db, query, free))
        closed = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        frozen_verdict = snap.entails(closed)
        mutations = [
            lambda: session.assert_facts(ProperAtom("Tag", (obj("zz"),))),
            lambda: session.assert_facts(P(ordc("brandnew"))),
            lambda: session.assert_order(
                OrderAtom(ordc("brandnew"), Rel.LT, ordc("brandnew2"))
            ),
            lambda: session.retract_order(
                OrderAtom(ordc("brandnew"), Rel.LT, ordc("brandnew2"))
            ),
            lambda: session.retract_facts(P(ordc("brandnew"))),
        ]
        for mutate in mutations:
            mutate()
            # live session stays exact ...
            assert frozenset(
                session.certain_answers(query, free)
            ) == frozenset(certain_answers(session.db, query, free))
            # ... and the snapshot still answers from its frozen state
            assert frozenset(snap.certain_answers(query, free)) == frozen
            assert snap.entails(closed) == frozen_verdict

    def test_snapshot_shares_warm_state(self):
        db, query, free = self._workload()
        session = Session(db)
        session.certain_answers(query, free)  # warm the caches
        snap = session.snapshot()
        assert isinstance(snap, SessionSnapshot)
        assert snap.context() is not session.context()
        # the graph instance (and its closure caches) is shared
        assert snap.context().graph is session.context().graph
        # an in-place graph edit on the live session must copy first
        session.assert_order(OrderAtom(ordc("cow1"), Rel.LT, ordc("cow2")))
        assert snap.context().graph is not session.context().graph
        assert "cow1" not in snap.context().graph.vertices

    def test_snapshot_rejects_mutation(self):
        snap = Session(IndefiniteDatabase.of(P(u))).snapshot()
        for attempt in (
            lambda: snap.assert_facts(P(v)),
            lambda: snap.retract_facts(P(u)),
            lambda: snap.assert_order(lt(u, v)),
            lambda: snap.retract_order(lt(u, v)),
        ):
            with pytest.raises(SnapshotMutationError):
                attempt()
        assert snap.size() == 1

    def test_snapshot_of_snapshot(self):
        session = Session(IndefiniteDatabase.of(P(u), Q(v), lt(u, v)))
        snap2 = session.snapshot().snapshot()
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        assert snap2.entails(q)


class TestWorkerPool:
    def _requests(self, rng):
        db, ops = random_request_stream(
            rng, n_objects=3, n_queries=4, n_ops=10, write_prob=0.0
        )
        return db, [op for op in ops if isinstance(op, QueryRequest)]

    def test_pool_matches_sequential_exactly(self):
        # byte-for-byte: verdicts, method tags, countermodels, answers
        rng = random.Random(205)
        db, requests = self._requests(rng)
        sequential = execute_many(Session(db), requests)
        with WorkerPool(Session(db), workers=2) as pool:
            pooled = pool.execute_many(requests)
        assert pooled == sequential

    def test_sequential_fallback_matches_exactly(self):
        rng = random.Random(206)
        db, requests = self._requests(rng)
        with WorkerPool(Session(db), workers=1) as pool:
            assert not pool.parallel
            fallback = pool.execute_many(requests)
        expected = execute_many(Session(db), requests)
        assert fallback == expected

    def test_execute_parallel_and_staleness_semantics(self):
        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        session = Session(db)
        results = execute_parallel(session, [QueryRequest(q)] * 3, workers=2)
        assert [r.holds for r in results] == [True] * 3
        # the pool answers against its construction-time snapshot
        with WorkerPool(session, workers=1) as pool:
            session.retract_order(lt(u, v))
            assert pool.execute_many([QueryRequest(q)])[0].holds
            pool.resnapshot(session)
            assert not pool.execute_many([QueryRequest(q)])[0].holds


class TestMaterializedView:
    def test_tracks_randomized_mutation_streams(self):
        rng = random.Random(207)
        x = objvar("x")
        # an open query over the stream generator's vocabulary: one object
        # guard (delta-reactive) plus an ordered monadic pattern
        query = ConjunctiveQuery.of(
            ProperAtom("Tag", (x,)),
            P(t1), Q(t2), lt(t1, t2),
        )
        for round_ in range(3):
            db, ops = random_request_stream(
                rng, n_objects=3, n_queries=2, n_ops=14, write_prob=0.8
            )
            session = Session(db)
            view = MaterializedView(session, query, (x,))
            for op in ops:
                if not isinstance(op, Mutation):
                    continue
                op.apply(session)
                assert view.answers() == frozenset(certain_answers(
                    session.db, query, (x,)
                )), f"round={round_} op={op}"

    def test_object_churn_takes_delta_path(self):
        rng = random.Random(208)
        db, query, free = random_certain_answers_workload(
            rng, width=2, chain_length=2, n_objects=3, n_free=1
        )
        session = Session(db)
        view = MaterializedView(session, query, free)
        assert view.delta_capable
        assert view.full_refreshes == 1
        for i in range(4):
            fact = ProperAtom("Tag", (obj(f"delta{i}"),))
            session.assert_facts(fact)
            assert view.answers() == frozenset(certain_answers(
                session.db, query, free
            ))
            session.retract_facts(fact)
            assert view.answers() == frozenset(certain_answers(
                session.db, query, free
            ))
        # object-only churn never triggered a second full evaluation
        assert view.full_refreshes == 1
        assert view.delta_refreshes == 8

    def test_order_mutation_forces_full_refresh(self):
        session = Session(IndefiniteDatabase.of(
            ProperAtom("On", (u, obj("a"))), ProperAtom("Off", (v, obj("a")))
        ))
        x = objvar("x")
        q = ConjunctiveQuery.of(
            ProperAtom("On", (t1, x)), ProperAtom("Off", (t2, x)), lt(t1, t2)
        )
        view = MaterializedView(session, q, (x,))
        assert view.answers() == frozenset()
        session.assert_order(lt(u, v))
        assert view.answers() == {("a",)}
        assert view.full_refreshes == 2
        session.retract_order(lt(u, v))
        assert view.answers() == frozenset()

    def test_existential_object_vars_disable_delta_but_stay_exact(self):
        # On(t, x) & Match(t2, y): y existential -> a fact on any object
        # can flip any tuple, so the view must not claim delta capability
        x, y = objvar("x"), objvar("y")
        session = Session(IndefiniteDatabase.of(
            ProperAtom("On", (u, obj("a"))),
            ProperAtom("Match", (v, obj("b"))),
        ))
        q = ConjunctiveQuery.of(
            ProperAtom("On", (t1, x)), ProperAtom("Match", (t2, y))
        )
        view = MaterializedView(session, q, (x,))
        assert not view.delta_capable
        for fact in (
            ProperAtom("Match", (obj("c"), obj("d"))),
            ProperAtom("On", (w, obj("e"))),
        ):
            session.assert_facts(fact)
            assert view.answers() == frozenset(certain_answers(
                session.db, q, (x,)
            ))

    def test_new_and_vanishing_constants_in_delta(self):
        session = Session(IndefiniteDatabase.of(
            ProperAtom("Tag", (obj("a"),)), ProperAtom("Tag", (obj("b"),))
        ))
        x = objvar("x")
        q = ConjunctiveQuery.of(ProperAtom("Tag", (x,)))
        view = MaterializedView(session, q, (x,))
        assert view.delta_capable
        assert view.answers() == {("a",), ("b",)}
        session.assert_facts(ProperAtom("Tag", (obj("c"),)))
        assert view.answers() == {("a",), ("b",), ("c",)}
        session.retract_facts(ProperAtom("Tag", (obj("c"),)))
        # 'c' vanished from the domain entirely
        assert view.answers() == {("a",), ("b",)}
        assert view.full_refreshes == 1

    def test_closed_view_stops_tracking_but_recomputes_on_demand(self):
        session = Session(IndefiniteDatabase.of(
            ProperAtom("Tag", (obj("a"),))
        ))
        x = objvar("x")
        view = MaterializedView(
            session, ConjunctiveQuery.of(ProperAtom("Tag", (x,))), (x,)
        )
        view.close()
        session.assert_facts(ProperAtom("Tag", (obj("b"),)))
        assert not view._touched and not view._stale  # no events delivered
        assert view.answers() == {("a",), ("b",)}  # still exact (full path)

    def test_view_against_stream_generator_with_order_writes(self):
        rng = random.Random(209)
        db, query, free = random_certain_answers_workload(
            rng, width=2, chain_length=2, n_objects=2, n_free=1
        )
        session = Session(db)
        view = MaterializedView(session, query, free)
        order_names = sorted(db.order_constants)
        for step in range(8):
            if step % 3 == 2:
                a, b = rng.choice(order_names), rng.choice(order_names)
                session.assert_order(
                    OrderAtom(ordc(a), Rel.LE, ordc(b))
                )
            elif step % 3 == 1:
                session.assert_facts(
                    ProperAtom("P", (ordc(rng.choice(order_names)),))
                )
            else:
                session.assert_facts(
                    ProperAtom("Tag", (obj(f"s{step}"),))
                )
            assert view.answers() == frozenset(certain_answers(
                session.db, query, free
            )), f"step={step}"
