"""Differential tests for the persistent daemon pool and the pipelined
(write-boundary epoch) ``execute_stream`` mode.

The load-bearing properties:

* ``DaemonPool`` results are byte-for-byte — verdict, method tag,
  countermodel, answers — those of sequential ``execute_many`` (and of
  ``WorkerPool``), across incremental resyncs after *every* mutation
  class (object / label / graph generation);
* pipelined ``execute_stream`` equals sequential ``execute_stream``
  equals a one-op-at-a-time replay on randomized mixed streams,
  including streams that raise mid-way: the exception and the session
  state at the raise match the sequential one-at-a-time loop exactly
  (the coalesced-write fallback);
* snapshots stay frozen while concurrent epochs execute against them;
* restricted environments (``RuntimeError`` during pool bootstrap)
  degrade to sequential execution without leaking processes, and the
  worker cap is configurable via ``REPRO_POOL_MAX_WORKERS``.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Session
from repro.core.atoms import OrderAtom, ProperAtom, Rel, lt
from repro.core.database import IndefiniteDatabase
from repro.core.entailment import certain_answers, explain
from repro.core.errors import SortError
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.core.sorts import obj, ordc, ordvar
from repro.engine import (
    DaemonPool,
    Mutation,
    QueryRequest,
    WorkerPool,
    execute_many,
    execute_stream,
)
from repro.engine.pool import _default_workers
from repro.workloads.generators import (
    random_certain_answers_workload,
    random_request_stream,
)

t1, t2 = ordvar("t1"), ordvar("t2")
u, v = ordc("u"), ordc("v")


def P(t):
    return ProperAtom("P", (t,))


def Q(t):
    return ProperAtom("Q", (t,))


def observe(request: QueryRequest, result) -> object:
    if request.free_vars is None:
        return result.holds
    return frozenset(result.answers)


def one_shot_observe(db: IndefiniteDatabase, request: QueryRequest) -> object:
    if request.free_vars is None:
        return explain(
            db, request.query,
            semantics=request.semantics, method=request.method,
        ).holds
    return frozenset(certain_answers(
        db, request.query, request.free_vars, semantics=request.semantics
    ))


def outcome_of(fn):
    """(tag, payload): a comparable summary of a call that may raise."""
    try:
        return ("ok", fn())
    except Exception as exc:  # noqa: BLE001 - parity is the point
        return ("raise", type(exc), str(exc))


class TestDaemonPool:
    def _requests(self, rng):
        db, ops = random_request_stream(
            rng, n_objects=3, n_queries=4, n_ops=10, write_prob=0.0
        )
        return db, [op for op in ops if isinstance(op, QueryRequest)]

    def test_matches_sequential_and_worker_pool_exactly(self):
        rng = random.Random(300)
        db, requests = self._requests(rng)
        sequential = execute_many(Session(db), requests)
        with DaemonPool(Session(db), workers=2) as pool:
            daemon = pool.execute_many(requests)
        with WorkerPool(Session(db), workers=2) as pool:
            worker = pool.execute_many(requests)
        assert daemon == sequential
        assert worker == sequential

    def test_sequential_fallback_matches_exactly(self):
        rng = random.Random(301)
        db, requests = self._requests(rng)
        with DaemonPool(Session(db), workers=1) as pool:
            assert not pool.parallel
            fallback = pool.execute_many(requests)
        assert fallback == execute_many(Session(db), requests)

    def test_workers_survive_across_batches_and_resyncs(self):
        rng = random.Random(302)
        db, requests = self._requests(rng)
        session = Session(db)
        with DaemonPool(session, workers=2) as pool:
            if not pool.parallel:
                pytest.skip("no process pool in this environment")
            pids = [proc.pid for proc in pool._procs]
            for i in range(3):
                session.assert_facts(ProperAtom("Tag", (obj(f"b{i}"),)))
                pool.resnapshot(session)
                got = pool.execute_many(requests)
                assert got == execute_many(Session(session.db), requests)
            # the SAME worker processes served every batch — no re-fork
            assert [proc.pid for proc in pool._procs] == pids
            assert all(proc.is_alive() for proc in pool._procs)

    def test_resync_after_every_mutation_class(self):
        rng = random.Random(303)
        db, query, free = random_certain_answers_workload(
            rng, width=2, chain_length=2, n_objects=3, n_free=1
        )
        requests = [
            QueryRequest(query, free_vars=free),
            QueryRequest(ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))),
        ]
        session = Session(db)
        order_name = sorted(db.order_constants)[0]
        mutations = [
            # object generation only
            lambda: session.assert_facts(ProperAtom("Tag", (obj("nw"),))),
            # label generation (fact over an existing order constant)
            lambda: session.assert_facts(P(ordc(order_name))),
            # graph generation via a fact naming a fresh order constant
            lambda: session.assert_facts(P(ordc("brandnew"))),
            # graph generation via an order atom
            lambda: session.assert_order(
                OrderAtom(ordc("brandnew"), Rel.LT, ordc(order_name))
            ),
            # graph generation via retraction
            lambda: session.retract_order(
                OrderAtom(ordc("brandnew"), Rel.LT, ordc(order_name))
            ),
            lambda: session.retract_facts(P(ordc("brandnew"))),
            lambda: session.retract_facts(ProperAtom("Tag", (obj("nw"),))),
        ]
        with DaemonPool(session, workers=2) as pool:
            for i, mutate in enumerate(mutations):
                mutate()
                pool.resnapshot(session)
                got = pool.execute_many(requests)
                want = execute_many(Session(session.db), requests)
                assert got == want, f"mutation #{i}"

    def test_resync_covers_zero_arity_facts(self):
        # propositional facts bump the object generation, so the delta
        # resync must carry them to the workers like any other write
        rain = ProperAtom("Rain", ())
        request = QueryRequest(ConjunctiveQuery.of(rain))
        session = Session(IndefiniteDatabase.of(P(u)))
        with DaemonPool(session, workers=2) as pool:
            assert not pool.execute_many([request])[0].holds
            session.assert_facts(rain)
            pool.resnapshot(session)
            assert pool.execute_many([request])[0].holds
            session.retract_facts(rain)
            pool.resnapshot(session)
            assert not pool.execute_many([request])[0].holds

    def test_resnapshot_is_noop_when_unchanged(self):
        session = Session(IndefiniteDatabase.of(P(u), Q(v), lt(u, v)))
        with DaemonPool(session, workers=1) as pool:
            snap = pool.snapshot
            pool.resnapshot(session)
            assert pool.snapshot is snap  # no churn without mutations
            session.assert_facts(ProperAtom("Tag", (obj("x"),)))
            pool.resnapshot(session)
            assert pool.snapshot is not snap

    def test_submit_collect_pins_submission_state(self):
        # a submitted batch answers from its submission-time snapshot
        # even when the live session mutates before collect()
        session = Session(IndefiniteDatabase.of(P(u), Q(v), lt(u, v)))
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        with DaemonPool(session, workers=2) as pool:
            pending = pool.submit([QueryRequest(q)])
            session.retract_order(lt(u, v))
            assert pool.collect(pending)[0].holds
            pool.resnapshot(session)
            assert not pool.execute_many([QueryRequest(q)])[0].holds

    def test_single_batch_in_flight_enforced(self):
        # per-worker pipes are bounded: a second uncollected batch could
        # deadlock both pipe directions, so submit() refuses it loudly
        session = Session(IndefiniteDatabase.of(P(u), Q(v), lt(u, v)))
        request = QueryRequest(ConjunctiveQuery.of(P(t1)))
        with DaemonPool(session, workers=2) as pool:
            if not pool.parallel:
                pytest.skip("no process pool in this environment")
            pending = pool.submit([request])
            with pytest.raises(RuntimeError):
                pool.submit([request])
            with pytest.raises(RuntimeError):
                # resnapshot writes on the same bounded pipes
                session.assert_facts(ProperAtom("Tag", (obj("t0"),)))
                pool.resnapshot(session)
            assert pool.collect(pending)[0].holds
            pool.resnapshot(session)  # fine once collected
            # collect released the slot ...
            assert pool.execute_many([request])[0].holds
            # ... and abandon() releases it too
            pool.abandon(pool.submit([request]))
            assert pool.execute_many([request])[0].holds

    def test_external_pool_synced_after_trailing_writes(self):
        # a stream ending in writes leaves the caller's pool resynced to
        # the final state, exactly as execute_stream documents
        session = Session(IndefiniteDatabase.of(P(u), Q(v), lt(u, v)))
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        with DaemonPool(session, workers=2) as pool:
            out = execute_stream(session, [
                QueryRequest(q),
                Mutation("retract_order", (lt(u, v),)),
            ], pool=pool)
            assert out[0].holds
            # no manual resnapshot: the pool already has the final state
            assert not pool.execute_many([QueryRequest(q)])[0].holds

    def test_worker_exception_propagates_and_pool_survives(self):
        session = Session(IndefiniteDatabase.of(P(u), Q(v), lt(u, v)))
        good = QueryRequest(ConjunctiveQuery.of(P(t1)))
        bad = QueryRequest(
            DisjunctiveQuery((
                ConjunctiveQuery.of(P(t1)), ConjunctiveQuery.of(Q(t1)),
            )),
            method="paths",  # needs a single conjunctive disjunct
        )
        with DaemonPool(session, workers=2) as pool:
            with pytest.raises(ValueError):
                pool.execute_many([good, bad])
            # the pool drained the batch and keeps serving
            assert pool.execute_many([good])[0].holds

    def test_close_is_idempotent(self):
        pool = DaemonPool(Session(IndefiniteDatabase.of(P(u))), workers=2)
        pool.close()
        pool.close()
        assert not pool.parallel


class TestPipelinedStream:
    def test_randomized_mixed_streams_match_sequential_exactly(self):
        rng = random.Random(310)
        for round_ in range(4):
            db, ops = random_request_stream(
                rng, n_objects=3, n_queries=3, n_ops=20, write_prob=0.4
            )
            sequential = execute_stream(Session(db), list(ops))
            session = Session(db)
            pipelined = execute_stream(session, list(ops), workers=2)
            # byte-for-byte result parity with the sequential mode ...
            assert pipelined == sequential, f"round={round_}"
            # ... and observable parity with a one-op-at-a-time replay
            state = Session(db)
            for op, result in zip(ops, pipelined):
                if isinstance(op, Mutation):
                    assert result is None
                    op.apply(state)
                else:
                    assert observe(op, result) == one_shot_observe(
                        state.db, op
                    ), f"round={round_}"
            assert session.db == state.db

    def test_external_pool_reused_across_streams(self):
        rng = random.Random(311)
        db, ops = random_request_stream(
            rng, n_objects=3, n_queries=3, n_ops=14, write_prob=0.4
        )
        session = Session(db)
        oracle = Session(db)
        with DaemonPool(session, workers=2) as pool:
            first = execute_stream(session, list(ops), pool=pool)
            second = execute_stream(session, list(ops), pool=pool)
        assert first == execute_stream(oracle, list(ops))
        assert second == execute_stream(oracle, list(ops))
        assert session.db == oracle.db

    def test_snapshot_immutable_under_concurrent_epochs(self):
        rng = random.Random(312)
        db, query, free = random_certain_answers_workload(
            rng, width=2, chain_length=2, n_objects=3, n_free=1
        )
        session = Session(db)
        snap = session.snapshot()
        frozen = frozenset(snap.certain_answers(query, free))
        order_name = sorted(db.order_constants)[0]
        ops = [
            QueryRequest(query, free_vars=free),
            Mutation("assert_facts", (ProperAtom("Tag", (obj("zz"),)),)),
            QueryRequest(query, free_vars=free),
            Mutation("assert_facts", (P(ordc(order_name)),)),
            Mutation("assert_order", (
                OrderAtom(ordc(order_name), Rel.LE, ordc(order_name)),
            )),
            QueryRequest(query, free_vars=free),
        ]
        execute_stream(session, ops, workers=2)
        assert frozenset(snap.certain_answers(query, free)) == frozen
        assert frozenset(
            session.certain_answers(query, free)
        ) == frozenset(certain_answers(session.db, query, free))

    def test_midstream_write_exception_parity(self):
        # a clash inside a coalesced write run: the exception and the
        # session state must match the sequential one-at-a-time replay
        base = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        ops = [
            QueryRequest(ConjunctiveQuery.of(P(t1))),
            Mutation("assert_facts", (ProperAtom("Tag", (obj("zz"),)),)),
            Mutation("assert_facts", (P(ordc("zz")),)),  # clash with ^
            Mutation("assert_facts", (ProperAtom("Tag", (obj("ww"),)),)),
            QueryRequest(ConjunctiveQuery.of(P(t1))),
        ]
        oracle = Session(base)
        want = outcome_of(lambda: [
            op.apply(oracle) for op in ops if isinstance(op, Mutation)
        ])
        assert want[0] == "raise" and want[1] is SortError

        seq_session = Session(base)
        got_seq = outcome_of(
            lambda: execute_stream(seq_session, list(ops))
        )
        piped_session = Session(base)
        got_piped = outcome_of(
            lambda: execute_stream(piped_session, list(ops), workers=2)
        )
        assert got_seq[:2] == want[:2] and got_piped[:2] == want[:2]
        # the valid prefix (Tag(zz)) landed; the clash and its suffix did not
        assert seq_session.db == oracle.db
        assert piped_session.db == oracle.db
        assert ProperAtom("Tag", (obj("zz"),)) in oracle.db.proper_atoms
        assert ProperAtom("Tag", (obj("ww"),)) not in oracle.db.proper_atoms

    def test_randomized_streams_with_clash_injection(self):
        rng = random.Random(313)
        for round_ in range(6):
            db, ops = random_request_stream(
                rng, n_objects=3, n_queries=3, n_ops=16, write_prob=0.5
            )
            clash_name = sorted(db.object_constants)[0]
            ops = list(ops)
            ops.insert(
                rng.randrange(len(ops)),
                Mutation("assert_facts", (P(ordc(clash_name)),)),
            )
            # oracle: one op at a time (the exact sequential semantics)
            oracle = Session(db)

            def replay(oracle=oracle, ops=ops):
                out = []
                for op in ops:
                    if isinstance(op, Mutation):
                        op.apply(oracle)
                        out.append(None)
                    else:
                        out.append(None)  # reads compared elsewhere
                return out

            want = outcome_of(replay)
            seq_session = Session(db)
            got_seq = outcome_of(
                lambda s=seq_session: execute_stream(s, list(ops))
            )
            piped_session = Session(db)
            got_piped = outcome_of(
                lambda s=piped_session: execute_stream(
                    s, list(ops), workers=2
                )
            )
            assert got_seq[:2] == want[:2], f"round={round_}"
            assert got_piped[:2] == want[:2], f"round={round_}"
            assert seq_session.db == oracle.db, f"round={round_}"
            assert piped_session.db == oracle.db, f"round={round_}"


class TestPoolHardening:
    def _db_requests(self):
        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        return db, [QueryRequest(q), QueryRequest(ConjunctiveQuery.of(Q(t1)))]

    def test_runtime_error_degrades_worker_pool(self, monkeypatch):
        import multiprocessing

        def boom(*args, **kwargs):
            raise RuntimeError("spawn bootstrap failed")

        monkeypatch.setattr(multiprocessing, "get_context", boom)
        db, requests = self._db_requests()
        with WorkerPool(Session(db), workers=2) as pool:
            assert not pool.parallel
            got = pool.execute_many(requests)
        assert got == execute_many(Session(db), requests)

    def test_runtime_error_degrades_daemon_pool(self, monkeypatch):
        import multiprocessing

        def boom(*args, **kwargs):
            raise RuntimeError("spawn bootstrap failed")

        monkeypatch.setattr(multiprocessing, "get_context", boom)
        db, requests = self._db_requests()
        session = Session(db)
        with DaemonPool(session, workers=2) as pool:
            assert not pool.parallel
            got = pool.execute_many(requests)
            # pipelined streams keep working on the degraded pool too
            streamed = execute_stream(
                session,
                [requests[0], Mutation("assert_facts", (P(ordc("w2")),)),
                 requests[0]],
                pool=pool,
            )
        assert got == execute_many(Session(db), requests)
        assert streamed[0] is not None and streamed[2] is not None

    def test_worker_cap_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_MAX_WORKERS", "1")
        assert _default_workers() == 1
        monkeypatch.setenv("REPRO_POOL_MAX_WORKERS", "not-a-number")
        assert 1 <= _default_workers() <= 4  # falls back to the default cap
        monkeypatch.setenv("REPRO_POOL_MAX_WORKERS", "0")
        assert 1 <= _default_workers() <= 4  # must be >= 1


class TestCleanShutdown:
    """close() drains in-flight replies: no degrade noise, no broken pipes."""

    def _pool(self):
        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        return Session(db), DaemonPool(Session(db), workers=2)

    def test_idle_close_logs_nothing(self, caplog):
        import logging

        _, pool = self._pool()
        assert pool.parallel
        with caplog.at_level(logging.WARNING, logger="repro.engine.pool"):
            pool.close()
        assert caplog.records == []

    def test_close_with_inflight_batch_logs_nothing(self, caplog):
        import logging

        # the shutdown race this guards: workers mid-reply when close()
        # tears the pool down must exit cleanly (replies drained before
        # the pipes close), not surface as structured-degrade warnings
        for _ in range(5):
            _, pool = self._pool()
            if not pool.parallel:  # pragma: no cover - restricted env
                pool.close()
                return
            requests = [QueryRequest(ConjunctiveQuery.of(P(t1)))] * 8
            pool.submit(requests)
            with caplog.at_level(logging.WARNING, logger="repro.engine.pool"):
                pool.close()
            assert caplog.records == []
            assert not pool.parallel
