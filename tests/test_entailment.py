"""Tests for the top-level entailment dispatcher and certain answers."""

from __future__ import annotations

import random

import pytest

from helpers import naive_entails_query
from repro.core.atoms import ProperAtom, le, lt, ne
from repro.core.database import IndefiniteDatabase
from repro.core.entailment import certain_answers, entails, explain
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.workloads.generators import (
    random_disjunctive_monadic_query,
    random_labeled_dag,
)

t1, t2 = ordvar("t1"), ordvar("t2")
u, v = ordc("u"), ordc("v")


def P(t):
    return ProperAtom("P", (t,))


def Q(t):
    return ProperAtom("Q", (t,))


class TestDispatch:
    def test_vacuous_for_inconsistent_db(self):
        db = IndefiniteDatabase.of(lt(u, v), lt(v, u))
        anything = ConjunctiveQuery.of(P(t1))
        report = explain(db, anything)
        assert report.holds and report.method == "vacuous"

    def test_unsatisfiable_query(self):
        db = IndefiniteDatabase.of(P(u))
        impossible = ConjunctiveQuery.of(P(t1), lt(t1, t1))
        report = explain(db, impossible)
        assert not report.holds
        assert report.method == "unsatisfiable-query"

    def test_trivial_empty_query(self):
        db = IndefiniteDatabase.of(P(u))
        assert explain(db, ConjunctiveQuery.of()).method == "trivial"

    def test_methods_agree(self):
        rng = random.Random(0)
        for _ in range(30):
            dag = random_labeled_dag(rng, rng.randrange(0, 5))
            db = dag.to_database()
            q = random_disjunctive_monadic_query(rng, rng.randrange(1, 3), 2)
            expected = entails(db, q, method="bruteforce")
            assert entails(db, q, method="auto") == expected
            assert entails(db, q, method="theorem53") == expected

    def test_conjunctive_methods_agree(self):
        rng = random.Random(1)
        from repro.workloads.generators import random_conjunctive_monadic_query

        for _ in range(30):
            dag = random_labeled_dag(rng, rng.randrange(0, 5))
            db = dag.to_database()
            q = random_conjunctive_monadic_query(rng, rng.randrange(0, 4))
            expected = entails(db, q, method="bruteforce")
            for method in ("auto", "paths", "bounded_width", "basis"):
                assert entails(db, q, method=method) == expected, (
                    f"method={method} db={db} q={q}"
                )

    def test_method_choice_reported(self):
        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        seq_q = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        assert explain(db, seq_q).method == "seq"
        branching = ConjunctiveQuery.of(
            P(t1), Q(t2), Q(ordvar("t3")), lt(t1, t2), lt(t1, ordvar("t3"))
        )
        assert explain(db, branching).method == "bounded_width"
        disj = DisjunctiveQuery.of(seq_q, branching)
        assert explain(db, disj).method == "theorem53"

    def test_nary_routes_to_bruteforce(self):
        db = IndefiniteDatabase.of(ProperAtom("R", (u, obj("a"))))
        q = ConjunctiveQuery.of(ProperAtom("R", (t1, objvar("x"))))
        assert explain(db, q).method == "bruteforce"
        assert entails(db, q)

    def test_invalid_method_rejected(self):
        db = IndefiniteDatabase.of(P(u))
        with pytest.raises(ValueError):
            entails(db, ConjunctiveQuery.of(P(t1)), method="nonsense")


class TestConstantsInQueries:
    def test_query_constant_present_in_db(self):
        db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
        q = ConjunctiveQuery.of(Q(u))  # is Q true at the point named u?
        assert not entails(db, q)  # u's point need not satisfy Q
        q2 = ConjunctiveQuery.of(P(u))
        assert entails(db, q2)

    def test_query_constant_foreign_to_db(self):
        db = IndefiniteDatabase.of(P(u))
        q = ConjunctiveQuery.of(P(ordc("fresh")))
        assert not entails(db, q)

    def test_object_constants(self):
        db = IndefiniteDatabase.of(
            ProperAtom("R", (u, obj("a"))),
            ProperAtom("R", (v, obj("b"))),
            lt(u, v),
        )
        q = ConjunctiveQuery.of(
            ProperAtom("R", (t1, obj("a"))),
            ProperAtom("R", (t2, obj("b"))),
            lt(t1, t2),
        )
        assert entails(db, q)
        q_rev = ConjunctiveQuery.of(
            ProperAtom("R", (t1, obj("b"))),
            ProperAtom("R", (t2, obj("a"))),
            lt(t1, t2),
        )
        assert not entails(db, q_rev)


class TestMonadicSplit:
    def test_object_part_filters_disjuncts(self):
        db = IndefiniteDatabase.of(
            P(u),
            ProperAtom("Tag", (obj("a"),)),
        )
        good = ConjunctiveQuery.of(ProperAtom("Tag", (objvar("x"),)), P(t1))
        bad = ConjunctiveQuery.of(ProperAtom("Missing", (objvar("x"),)), P(t1))
        assert entails(db, good)
        assert not entails(db, bad)
        report = explain(db, bad)
        assert report.method == "object-part"

    def test_shared_object_variable(self):
        db = IndefiniteDatabase.of(
            ProperAtom("Red", (obj("a"),)),
            ProperAtom("Big", (obj("b"),)),
            P(u),
        )
        # No single object is both Red and Big.
        q = ConjunctiveQuery.of(
            ProperAtom("Red", (objvar("x"),)),
            ProperAtom("Big", (objvar("x"),)),
            P(t1),
        )
        assert not entails(db, q)


class TestNeqQueries:
    def test_neq_query_expansion(self):
        db = IndefiniteDatabase.of(P(u), P(v))
        q = ConjunctiveQuery.of(P(t1), P(t2), ne(t1, t2))
        # u and v may denote the same point.
        assert not entails(db, q)
        db2 = IndefiniteDatabase.of(P(u), P(v), lt(u, v))
        assert entails(db2, q)

    def test_neq_database_bruteforce(self):
        db = IndefiniteDatabase.of(P(u), P(v), ne(u, v))
        q = ConjunctiveQuery.of(P(t1), P(t2), ne(t1, t2))
        assert entails(db, q)
        report = explain(db, q)
        assert report.method == "bruteforce"


class TestCertainAnswers:
    def test_certain_answers(self):
        db = IndefiniteDatabase.of(
            ProperAtom("On", (u, obj("lamp"))),
            ProperAtom("Off", (v, obj("lamp"))),
            ProperAtom("On", (ordc("w"), obj("tv"))),
            lt(u, v),
        )
        x = objvar("x")
        q = ConjunctiveQuery.of(
            ProperAtom("On", (t1, x)),
            ProperAtom("Off", (t2, x)),
            lt(t1, t2),
        )
        assert certain_answers(db, q, (x,)) == {("lamp",)}

    def test_order_free_vars_rejected(self):
        db = IndefiniteDatabase.of(P(u))
        with pytest.raises(ValueError):
            certain_answers(db, ConjunctiveQuery.of(P(t1)), (t1,))
