"""Integration tests: every example script runs clean and asserts the
paper's stated answers internally."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: pathlib.Path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_example_count():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLES) >= 3
